"""Deterministic per-step decision records (the ``decision_trace`` channel).

Unlike :mod:`repro.obs.trace`, nothing here carries a timestamp: a
decision record is a pure function of the control loop's state at one
step, so scalar, ``--batch``, and streamed-service executions of the
same ``(spec, repeat)`` must produce byte-identical traces (canonical
JSON).  That property is what the trace-determinism tests and the obs
gate assert, and it is why every numeric field is coerced through
``float()``/``int()`` — numpy scalars are not JSON-serializable and
would also render differently across code paths.

Record schema (one per control step)::

    {"step": int, "workload": float, "response": float, "slo": float,
     "violated": bool, "total_cpu": float, "next_total_cpu": float,
     "decision": <autoscaler-specific dict or None>}

``decision`` is whatever the autoscaler's ``last_decision()`` hook
returned — :func:`pema_decision_info` for the PEMA controller family,
a manager summary for :class:`WorkloadAwarePEMA`, ``None`` for
autoscalers without a hook (rule/static/optimum).
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["capture_decision_info", "decision_record", "pema_decision_info"]


def decision_record(
    *,
    step: int,
    workload: float,
    response: float,
    slo: float,
    violated: bool,
    total_cpu: float,
    next_total_cpu: float,
    decision: dict[str, Any] | None,
) -> dict[str, Any]:
    """One causal record: observation in, allocation decision out."""
    return {
        "step": int(step),
        "workload": float(workload),
        "response": float(response),
        "slo": float(slo),
        "violated": bool(violated),
        "total_cpu": float(total_cpu),
        "next_total_cpu": float(next_total_cpu),
        "decision": decision,
    }


def capture_decision_info(autoscaler: Any) -> dict[str, Any] | None:
    """Ask an autoscaler for its last decision, if it has the hook."""
    hook = getattr(autoscaler, "last_decision", None)
    if callable(hook):
        return hook()
    return None


def pema_decision_info(
    *,
    action: str,
    violated: bool = False,
    targets: Iterable[str] = (),
    n_targets: int = 0,
    delta: float = 0.0,
    signal: float = 0.0,
    p_explore: float = 0.0,
    probabilities: Iterable[tuple[str, float]] = (),
) -> dict[str, Any]:
    """The PEMA controller's causal record for one step.

    ``probabilities`` carries the Eqn-5 inclusion probabilities that fed
    target selection, as ``[service, p]`` pairs in the order the
    controller built them (service declaration order — identical in the
    scalar and batched engines, which is part of the byte-identity
    contract).
    """
    return {
        "kind": "pema",
        "action": str(action),
        "violated": bool(violated),
        "targets": [str(name) for name in targets],
        "n_targets": int(n_targets),
        "delta": float(delta),
        "signal": float(signal),
        "p_explore": float(p_explore),
        "probabilities": [[str(name), float(p)] for name, p in probabilities],
    }
