"""TrainTicket — 41-microservice train-booking system (paper Fig. 3).

The largest of the three prototypes: a gateway, 24 business-logic services
arranged in five dependency layers (upper layers call lower ones, with some
intra-layer calls), and 16 MySQL/MongoDB stores.  Implemented in the
original system with Java/NodeJS/Python/Go; covers synchronous and
asynchronous invocation and message queues.  SLO: p95 end-to-end response
of **900 ms** (paper §2.1).

``seat``, ``basic`` and ``ticketinfo`` are the services the paper probes in
Fig. 8 and Table 1; their burstiness values are set so their bottleneck
utilizations spread over ≈15 %–25 % as measured there.
"""

from __future__ import annotations

from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage

__all__ = ["trainticket"]

SLO_SECONDS = 0.900

# (name, cpu_demand_ms, floor_ms, burstiness, tier, language)
_SERVICES: tuple[tuple[str, float, float, float, str, str], ...] = (
    ("gateway", 2.8, 40.0, 5.0, "frontend", "nodejs"),
    # --- single sign-on layer
    ("sso", 1.2, 30.0, 3.5, "logic", "java"),
    ("login", 1.0, 28.0, 3.0, "logic", "java"),
    ("verify-code", 0.8, 22.0, 3.0, "logic", "python"),
    ("register", 0.6, 24.0, 2.5, "logic", "java"),
    # --- travel / search layer
    ("travel", 2.4, 90.0, 4.5, "logic", "java"),
    ("travel2", 1.8, 80.0, 4.0, "logic", "java"),
    # seat/basic/ticketinfo burstiness chosen so their bottleneck
    # utilizations land near the paper's Fig. 8(a): ~15% / ~20% / ~25%.
    ("ticketinfo", 4.0, 70.0, 0.40, "logic", "java"),
    ("basic", 2.0, 60.0, 0.48, "logic", "java"),
    ("seat", 1.6, 70.0, 1.07, "logic", "java"),
    # --- supporting info layer
    ("station", 0.9, 20.0, 2.5, "logic", "java"),
    ("train", 0.8, 18.0, 2.5, "logic", "java"),
    ("config", 0.6, 15.0, 2.0, "logic", "java"),
    ("price", 0.8, 18.0, 2.5, "logic", "java"),
    ("contacts", 0.7, 20.0, 2.5, "logic", "java"),
    # --- ordering layer
    ("order", 2.2, 55.0, 4.5, "logic", "java"),
    ("order-other", 1.4, 45.0, 3.5, "logic", "java"),
    ("preserve", 2.0, 65.0, 4.5, "logic", "java"),
    ("cancel", 1.0, 40.0, 3.0, "logic", "java"),
    ("rebook", 1.0, 42.0, 3.0, "logic", "java"),
    ("execute", 0.9, 35.0, 3.0, "logic", "java"),
    # --- payment & misc layer
    ("pay", 1.2, 38.0, 3.5, "logic", "java"),
    ("inside-pay", 1.1, 36.0, 3.5, "logic", "java"),
    ("security", 0.9, 30.0, 3.0, "logic", "java"),
    ("notify", 0.6, 25.0, 2.5, "logic", "go"),
    # --- data stores
    ("auth-db", 0.8, 16.0, 3.5, "db", "mysql"),
    ("user-db", 0.8, 16.0, 3.5, "db", "mongodb"),
    ("verify-db", 0.4, 10.0, 2.5, "db", "redis"),
    ("station-db", 0.6, 14.0, 3.0, "db", "mongodb"),
    ("train-db", 0.5, 13.0, 3.0, "db", "mongodb"),
    ("config-db", 0.4, 12.0, 2.5, "db", "mongodb"),
    ("price-db", 0.5, 13.0, 3.0, "db", "mongodb"),
    ("contacts-db", 0.5, 13.0, 3.0, "db", "mongodb"),
    ("travel-db", 1.0, 18.0, 3.5, "db", "mongodb"),
    ("travel2-db", 0.8, 16.0, 3.5, "db", "mongodb"),
    ("order-db", 1.1, 18.0, 4.0, "db", "mysql"),
    ("order-other-db", 0.7, 15.0, 3.0, "db", "mysql"),
    ("security-db", 0.4, 12.0, 2.5, "db", "mysql"),
    ("payment-db", 0.6, 14.0, 3.0, "db", "mysql"),
    ("inside-payment-db", 0.6, 14.0, 3.0, "db", "mysql"),
    ("rebook-db", 0.4, 12.0, 2.5, "db", "mysql"),
)


def _classes() -> tuple[RequestClass, ...]:
    search = RequestClass(
        name="search",
        weight=0.40,
        stages=(
            Stage.seq("gateway"),
            Stage.fanout("travel", ("travel2", 0.6)),
            Stage.fanout("travel-db", ("travel2-db", 0.6)),
            Stage.seq("ticketinfo"),
            Stage.seq("basic"),
            Stage.fanout("station", "train", "config", "price"),
            Stage.fanout("station-db", "train-db", ("config-db", 0.5), "price-db"),
            Stage.seq("seat", 2.0),
            Stage.fanout("order-db", ("config-db", 0.5)),
        ),
    )
    book = RequestClass(
        name="book",
        weight=0.25,
        stages=(
            Stage.seq("gateway"),
            Stage.seq("preserve"),
            Stage.fanout("sso", "contacts", "security"),
            Stage.fanout("auth-db", "contacts-db", "security-db"),
            Stage.seq("ticketinfo"),
            Stage.seq("basic"),
            Stage.fanout("station", ("price", 0.5)),
            Stage.seq("station-db"),
            Stage.seq("seat", 1.0),
            Stage.seq("order"),
            Stage.seq("order-db"),
            Stage.seq("notify"),
        ),
    )
    pay = RequestClass(
        name="pay",
        weight=0.15,
        stages=(
            Stage.seq("gateway"),
            Stage.seq("inside-pay"),
            Stage.fanout("pay", ("order", 0.8)),
            Stage.fanout("payment-db", "inside-payment-db", ("order-db", 0.8)),
        ),
    )
    manage = RequestClass(
        name="manage",
        weight=0.10,
        stages=(
            Stage.seq("gateway"),
            Stage.fanout(("cancel", 0.4), ("rebook", 0.3), ("execute", 0.3)),
            Stage.fanout("order", ("order-other", 0.5)),
            Stage.fanout("order-db", ("order-other-db", 0.5), ("rebook-db", 0.3)),
            Stage.fanout(("inside-pay", 0.4), ("notify", 0.8)),
            Stage.seq("inside-payment-db", 0.4),
        ),
    )
    login = RequestClass(
        name="login",
        weight=0.10,
        stages=(
            Stage.seq("gateway"),
            Stage.seq("sso"),
            Stage.fanout("login", ("verify-code", 0.7), ("register", 0.1)),
            Stage.fanout("auth-db", "user-db", ("verify-db", 0.7)),
        ),
    )
    return (search, book, pay, manage, login)


# Workload-independent CPU demand by runtime (JVM-heavy stack): this fixed
# load is why TrainTicket's optimum barely grows with workload (Fig. 5).
_BASELINE_BY_LANGUAGE = {
    "java": 0.126,
    "nodejs": 0.090,
    "python": 0.045,
    "go": 0.030,
    "mysql": 0.054,
    "mongodb": 0.048,
    "redis": 0.024,
}


def trainticket(demand_scale: float = 1.0, floor_scale: float = 1.0) -> AppSpec:
    """Build the TrainTicket application spec."""
    services = tuple(
        ServiceSpec(
            name=name,
            cpu_demand=demand_ms * 1e-3 * demand_scale,
            latency_floor=floor_ms * 1e-3 * floor_scale,
            burstiness=burst,
            baseline_cores=_BASELINE_BY_LANGUAGE[lang],
            tier=tier,
            language=lang,
        )
        for name, demand_ms, floor_ms, burst, tier, lang in _SERVICES
    )
    return AppSpec(
        name="trainticket",
        services=services,
        request_classes=_classes(),
        slo=SLO_SECONDS,
        hop_latency=0.002,
        reference_workload=200.0,
        description="Train-ticket booking: search, book, pay, manage, login.",
    )
