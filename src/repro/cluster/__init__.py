"""Kubernetes-like cluster substrate: nodes, pods, scheduler, resizes."""

from repro.cluster.cluster import NOMINAL_FREQUENCY_GHZ, Cluster
from repro.cluster.errors import CapacityError, ClusterError, SchedulingError
from repro.cluster.horizontal import HorizontalRuleAutoscaler, ReplicaAllocator
from repro.cluster.node import Node, paper_testbed_nodes
from repro.cluster.pod import Pod
from repro.cluster.scheduler import Scheduler

__all__ = [
    "Cluster",
    "Node",
    "Pod",
    "Scheduler",
    "ReplicaAllocator",
    "HorizontalRuleAutoscaler",
    "paper_testbed_nodes",
    "NOMINAL_FREQUENCY_GHZ",
    "ClusterError",
    "SchedulingError",
    "CapacityError",
]
