"""Fig. 14 — 36-hour SockShop run under a Wikipedia-like diurnal workload.

Paper: workload swings between 200 and 1100 rps following the Wikipedia
trace; PEMA's total CPU tracks the workload (it is not a simple
proportional scaling — distribution matters), and the normalized response
stays at or below the SLO almost everywhere, with the moving average
smoothing transient dips.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core import ControlLoop, WorkloadAwarePEMA
from repro.sim import AnalyticalEngine
from repro.workload import WikipediaTrace

HOURS = 36
STEPS = HOURS * 30  # 2-minute control intervals


def run_fig14():
    app = build_app("sockshop")
    manager = WorkloadAwarePEMA(
        app.service_names,
        app.slo,
        app.generous_allocation(1100.0),
        workload_low=200.0,
        workload_high=1100.0,
        min_range_width=112.5,
        split_after=10,
        slope_samples=6,
        seed=41,
    )
    trace = WikipediaTrace(low_rps=200.0, high_rps=1100.0, seed=42)
    engine = AnalyticalEngine(app, seed=43)
    result = ControlLoop(engine, manager, trace, slo=app.slo).run(STEPS)
    return manager, result


def test_fig14_extended(benchmark):
    manager, result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    rows = []
    for hour in range(0, HOURS, 2):
        idx = hour * 30
        window = slice(idx, idx + 30)
        rows.append(
            [
                hour,
                round(float(result.workloads[window].mean()), 0),
                round(float(result.total_cpu[window].mean()), 2),
                round(float(result.responses[window].mean() / 0.250), 3),
            ]
        )
    corr = float(
        np.corrcoef(result.workloads[60:], result.total_cpu[60:])[0, 1]
    )
    emit(
        "fig14_extended",
        format_table(
            ["hour", "workload_rps", "total_cpu", "response/SLO"],
            rows,
            title="Fig. 14 — 36-hour SockShop run, Wikipedia-like workload "
            f"(CPU-vs-workload correlation {corr:.2f}; "
            f"violations {result.violation_count()}/{len(result)})",
        )
        + f"\n\nfinal ranges: {', '.join(manager.range_labels())}",
    )
    # CPU tracks the diurnal workload.
    assert corr > 0.6
    # QoS: response below SLO almost everywhere.
    assert result.violation_rate() < 0.10
    # The workload range tree was actually refined.
    assert len(manager.tree.splits) >= 3
