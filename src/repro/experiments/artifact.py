"""Experiment artifacts: structured, serializable results of a spec run.

An :class:`ExperimentArtifact` pairs the spec that produced it with the
per-seed :class:`~repro.core.LoopResult` histories and derives the
summary statistics the paper's figures report (settled total CPU across
seeds, violation rates).  Artifacts round-trip through JSON via the
:mod:`repro.metrics.export` record codec, so a figure cell can be
archived, diffed, and re-plotted without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.loop import LoopResult
from repro.experiments.spec import ExperimentSpec
from repro.metrics.export import loop_result_from_dict, loop_result_to_dict

__all__ = ["ExperimentArtifact"]


@dataclass(frozen=True)
class ExperimentArtifact:
    """The outcome of ``run_experiment``: one ``LoopResult`` per repeat."""

    spec: ExperimentSpec
    results: tuple[LoopResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        if len(self.results) != self.spec.repeats:
            raise ValueError(
                f"expected {self.spec.repeats} results, got {len(self.results)}"
            )

    # -- summary statistics ------------------------------------------------------
    def settled_totals(self, tail: int = 5) -> np.ndarray:
        """Per-seed settled total CPU (mean of the last SLO-good intervals)."""
        return np.asarray([r.settled_total(tail) for r in self.results])

    def mean_settled_total(self, tail: int = 5) -> float:
        return float(np.mean(self.settled_totals(tail)))

    def violation_rates(self) -> np.ndarray:
        return np.asarray([r.violation_rate() for r in self.results])

    def summary(self) -> dict[str, Any]:
        """The figures' headline numbers, as plain JSON-ready data."""
        settled = self.settled_totals()
        return {
            "name": self.spec.name,
            "app": self.spec.app,
            "autoscaler": self.spec.autoscaler.kind,
            "engine": self.spec.engine.kind,
            "workload": self.spec.workload.to_dict(),
            "n_steps": self.spec.n_steps,
            "repeats": self.spec.repeats,
            "seed": self.spec.seed,
            "settled_total_per_seed": [float(t) for t in settled],
            "settled_total_mean": float(np.mean(settled)),
            "settled_total_std": float(np.std(settled)),
            "violation_rate_per_seed": [
                float(v) for v in self.violation_rates()
            ],
            "final_total_cpu": [
                float(r.final_allocation().total()) for r in self.results
            ],
        }

    def summary_json(self) -> str:
        """Canonical summary encoding (stable key order — diffable)."""
        return json.dumps(self.summary(), sort_keys=True)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "results": [loop_result_to_dict(r) for r in self.results],
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentArtifact":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            results=tuple(
                loop_result_from_dict(r) for r in data["results"]
            ),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentArtifact":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        """Persist the artifact (spec + histories + summary) as JSON."""
        path = Path(path)
        path.write_text(self.to_json(indent=2))
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ExperimentArtifact":
        return cls.from_json(Path(path).read_text())
