"""Batched sweep execution: bit-exact equivalence with the scalar path.

The whole value of ``repro.sweeps.batched`` rests on one property: a
batched unit is *byte-identical* to the same unit run through the scalar
worker — same JSON payload, same cache entry, same aggregates.  These
tests enforce that property at every layer (engine observation, full
unit runs, the scheduler's ``batch=True`` path, mixed grids with
un-batchable cells) plus the grouping/fallback/progress mechanics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app
from repro.experiments import ExperimentSpec
from repro.experiments.runner import _run_unit_worker
from repro.sim import AnalyticalEngine, Allocation, BatchedAnalyticalEngine
from repro.sim.latency import end_to_end_latency, end_to_end_latency_batch
from repro.sweeps import (
    SweepGrid,
    SweepStore,
    batch_fallback_reason,
    batch_key,
    classify_unit,
    grid_summary_json,
    run_grid,
    run_sweep_cached,
    run_units_batched,
)
from repro.sweeps.scheduler import _partition_chunk
from tests.conftest import make_sweep_spec as spec


def scalar_payload(s: ExperimentSpec, repeat: int = 0) -> dict:
    return _run_unit_worker(s.to_dict(), repeat)


def assert_units_byte_identical(units: list[tuple[ExperimentSpec, int]]):
    """Batched payloads must serialize to the scalar payloads' bytes."""
    groups: dict[tuple, list[tuple[ExperimentSpec, int]]] = {}
    for unit in units:
        key = batch_key(unit[0])
        assert key is not None, f"{unit[0]} unexpectedly un-batchable"
        groups.setdefault(key, []).append(unit)
    for group in groups.values():
        batched = run_units_batched(group)
        for (s, repeat), payload in zip(group, batched):
            expected = scalar_payload(s, repeat)
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            ), f"{s.name or s.app} repeat {repeat} diverged"


class TestBatchedEngine:
    def test_observation_matches_scalar_per_cell(self, sockshop_app):
        seeds = [7, 1000, 4242]
        speeds = [1.0, 0.889, 1.111]
        workloads = np.array([300.0, 700.0, 1100.0])
        intervals = np.array([120.0, 60.0, 120.0])
        rng = np.random.default_rng(3)
        alloc = rng.uniform(0.1, 5.0, (3, sockshop_app.n_services))

        batch = BatchedAnalyticalEngine(sockshop_app, seeds)
        scalars = [AnalyticalEngine(sockshop_app, seed=s) for s in seeds]
        for i, speed in enumerate(speeds):
            batch.set_cpu_speed(i, speed)
            scalars[i].set_cpu_speed(speed)

        for _ in range(3):  # several intervals: RNG streams must track
            obs = batch.observe(alloc, workloads, intervals)
            for i, engine in enumerate(scalars):
                metrics = engine.observe(
                    Allocation.from_array(
                        sockshop_app.service_names, alloc[i]
                    ),
                    float(workloads[i]),
                    float(intervals[i]),
                )
                assert obs.latency_p95[i] == metrics.latency_p95
                for j, name in enumerate(sockshop_app.service_names):
                    svc = metrics.services[name]
                    assert obs.utilization[i, j] == svc.utilization
                    assert obs.throttle_seconds[i, j] == svc.throttle_seconds
                    assert obs.usage_cores[i, j] == svc.usage_cores
                    assert obs.usage_p90_cores[i, j] == svc.usage_p90_cores
            alloc = alloc * 0.9

    def test_end_to_end_latency_batch_rows_match_scalar(self, tiny_app):
        rng = np.random.default_rng(11)
        per_visit = rng.uniform(0.001, 0.5, (5, tiny_app.n_services))
        batched = end_to_end_latency_batch(tiny_app, per_visit)
        for i in range(5):
            assert batched[i] == end_to_end_latency(tiny_app, per_visit[i])

    def test_input_validation(self, sockshop_app):
        engine = BatchedAnalyticalEngine(sockshop_app, [0, 1])
        alloc = np.ones((2, sockshop_app.n_services))
        with pytest.raises(ValueError, match="workload"):
            engine.observe(alloc, np.array([-1.0, 1.0]), np.array([120.0, 120.0]))
        with pytest.raises(ValueError, match="interval"):
            engine.observe(alloc, np.array([1.0, 1.0]), np.array([0.0, 120.0]))
        with pytest.raises(ValueError, match="speed"):
            engine.set_cpu_speed(0, 0.0)


class TestUnitEquivalence:
    def test_pema_cells_heterogeneous_params(self):
        units = [
            (spec(workload=600.0, seed=3), 0),
            (spec(workload=700.0,
                  autoscaler={"kind": "pema", "params": {"alpha": 0.4}},
                  seed=1, repeats=2), 1),
            (spec(workload=900.0, slo=0.4, headroom=3.0, interval=60.0), 0),
            (spec(workload=650.0,
                  autoscaler={"kind": "pema",
                              "params": {"beta": 0.5,
                                         "moving_average_window": 9,
                                         "use_bottleneck_filter": False}}),
             0),
            (spec(workload=750.0,
                  autoscaler={"kind": "pema",
                              "params": {"use_dynamic_thresholds": False,
                                         "rollback_severity_gain": 2.0}}),
             0),
        ]
        assert_units_byte_identical(units)

    def test_rule_and_vpa_cells(self):
        units = [
            (spec(autoscaler={"kind": "rule"},
                  engine={"kind": "analytical", "seed_offset": 2000}), 0),
            (spec(workload=500.0,
                  autoscaler={"kind": "rule", "params": {"mode": "vpa"}}), 0),
            (spec(workload=800.0,
                  autoscaler={"kind": "rule",
                              "params": {"target_utilization": 0.2,
                                         "scale_down_limit": 0.3}}), 0),
        ]
        assert_units_byte_identical(units)

    def test_static_cells(self):
        units = [
            (spec(autoscaler={"kind": "static"}), 0),
            (spec(workload=300.0, autoscaler={"kind": "static"}, seed=9), 0),
        ]
        assert_units_byte_identical(units)

    def test_hooked_cells_slo_and_cpu_speed(self):
        units = [
            (spec(n_steps=8,
                  hooks=[{"kind": "set_slo",
                          "params": {"at": 4, "slo": 0.2}}]), 0),
            (spec(n_steps=8, workload=500.0,
                  hooks=[{"kind": "set_cpu_speed",
                          "params": {"at": 3, "speed": 0.889}}]), 0),
            (spec(n_steps=8, workload=600.0, autoscaler={"kind": "rule"},
                  hooks=[{"kind": "set_cpu_speed",
                          "params": {"at": 2, "speed": 1.111}}]), 0),
        ]
        assert_units_byte_identical(units)

    def test_violation_rollback_path(self):
        # A tight SLO forces violations, exercising taint + rollback +
        # the emergency 1.25x inflation (no safe record on early steps).
        units = [
            (spec(workload=1100.0, slo=0.05, n_steps=6, seed=s), 0)
            for s in range(3)
        ]
        assert_units_byte_identical(units)

    def test_different_workload_kinds_in_one_batch(self):
        units = [
            (spec(), 0),
            (spec(workload={"kind": "ramp",
                            "params": {"start_rps": 500.0, "end_rps": 800.0,
                                       "duration": 480.0}}), 0),
            (spec(workload={"kind": "sinusoid",
                            "params": {"low": 500.0, "high": 700.0,
                                       "period": 600.0}}), 0),
        ]
        assert_units_byte_identical(units)

    def test_mismatched_group_rejected(self):
        with pytest.raises(ValueError, match="compatible"):
            run_units_batched([(spec(), 0), (spec(n_steps=5), 0)])
        with pytest.raises(ValueError, match="compatible"):
            run_units_batched([(spec(), 0), (spec(app="trainticket"), 0)])


class TestBatchKey:
    def test_groups_by_app_autoscaler_horizon(self):
        assert batch_key(spec()) == ("sockshop", "pema", 4, None)
        assert batch_key(spec(app="trainticket", workload=225.0)) == (
            "trainticket", "pema", 4, None
        )
        assert batch_key(spec(autoscaler={"kind": "rule"})) == (
            "sockshop", "rule", 4, None
        )
        # Workload/seed/interval/slo/params differences stay in-group.
        assert batch_key(spec(workload=600.0, seed=9, interval=60.0)) == \
            batch_key(spec(slo=0.3, headroom=4.0))

    def test_noise_override_batches_by_model(self):
        # A noise engine override joins a batch group keyed by its model;
        # different models (or the default) stay in separate groups.
        noisy = spec(
            engine={"kind": "analytical", "params": {"noise": {"sigma": 0.0}}}
        )
        key, reason = classify_unit(noisy)
        assert reason is None
        assert key[:3] == ("sockshop", "pema", 4)
        assert key == batch_key(
            spec(engine={"kind": "analytical",
                         "params": {"noise": {"sigma": 0.0}}},
                 workload=600.0)
        )
        assert key != batch_key(spec())
        # Static cells with a pinned bottleneck allocation batch too.
        pinned = spec(
            autoscaler={"kind": "static",
                        "params": {"bottleneck_rps": 500.0, "scale": 1.2}}
        )
        assert batch_key(pinned) == ("sockshop", "static", 4, None)

    def test_unbatchable_kinds_fall_back(self):
        assert batch_key(spec(engine={"kind": "des"})) is None
        assert batch_key(
            spec(engine={"kind": "analytical", "params": {"p_crit": 0.9}})
        ) is None
        assert batch_key(
            spec(autoscaler={"kind": "rule", "params": {"mode": "nope"}})
        ) is None
        assert batch_key(
            spec(autoscaler={"kind": "static", "params": {"x": 1}})
        ) is None
        # set_slo drives PEMAController.set_slo — a rule cell would crash
        # the scalar path too, so it must not enter a batch.
        assert batch_key(
            spec(autoscaler={"kind": "rule"},
                 hooks=[{"kind": "set_slo", "params": {"at": 1, "slo": 0.2}}])
        ) is None
        assert batch_key(
            spec(hooks=[{"kind": "set_slo", "params": {"at": 1}}])
        ) is None  # invalid hook params: probe fails, scalar raises

    def test_fallback_reason_slugs(self):
        assert batch_fallback_reason(spec()) is None
        assert batch_fallback_reason(
            spec(engine={"kind": "des"})
        ) == "engine:des"
        assert batch_fallback_reason(
            spec(engine={"kind": "analytical", "params": {"p_crit": 0.9}})
        ) == "engine_params"
        assert batch_fallback_reason(
            spec(autoscaler={"kind": "fast_pema"})
        ) == "autoscaler:fast_pema"
        assert batch_fallback_reason(
            spec(autoscaler={"kind": "rule", "params": {"mode": "nope"}})
        ) == "autoscaler_params:rule"
        assert batch_fallback_reason(
            spec(autoscaler={"kind": "rule"},
                 hooks=[{"kind": "set_slo", "params": {"at": 1, "slo": 0.2}}])
        ) == "set_slo_without_pema"
        assert batch_fallback_reason(
            spec(hooks=[{"kind": "set_slo", "params": {"at": 1}}])
        ) == "hook_params:set_slo"
        assert batch_fallback_reason(
            spec(n_steps=100_001)
        ) == "pema_horizon"
        assert batch_fallback_reason(
            spec(engine={"kind": "analytical",
                         "params": {"noise": {"sigma": -1.0}}})
        ) == "engine_params:noise"
        assert batch_fallback_reason(
            spec(autoscaler={"kind": "static", "params": {"scale": 0.5}})
        ) == "autoscaler_params:static"  # scale needs bottleneck_rps

    def test_classify_is_key_plus_reason(self):
        for s in (spec(), spec(engine={"kind": "des"})):
            key, reason = classify_unit(s)
            assert key == batch_key(s)
            assert reason == batch_fallback_reason(s)
            assert (key is None) == (reason is not None)


class TestSchedulerBatchPath:
    def grid(self) -> SweepGrid:
        return SweepGrid(
            name="mix",
            base=spec(n_steps=3, repeats=2).to_dict(),
            axes=(
                {"name": "workload", "path": "workload",
                 "values": [600.0, 700.0]},
                {"name": "autoscaler", "values": [
                    {"label": "pema"},
                    {"label": "rule",
                     "autoscaler": {"kind": "rule"},
                     "engine.seed_offset": 2000, "repeats": 1},
                ]},
            ),
        )

    def test_batch_run_byte_identical_artifacts_and_store(self, tmp_path):
        grid = self.grid()
        scalar_store = SweepStore(tmp_path / "scalar")
        batched_store = SweepStore(tmp_path / "batched")
        scalar = run_grid(grid, store=scalar_store, batch=False)
        batched = run_grid(grid, store=batched_store, batch=True)
        assert [a.to_json() for a in scalar.artifacts] == [
            a.to_json() for a in batched.artifacts
        ]
        assert grid_summary_json(scalar) == grid_summary_json(batched)
        scalar_bytes = sorted(p.read_bytes() for p in scalar_store.entry_paths())
        batched_bytes = sorted(p.read_bytes() for p in batched_store.entry_paths())
        assert scalar_bytes == batched_bytes
        assert batched.report.batched_units == batched.report.computed
        assert scalar.report.batched_units == 0

    def test_cross_mode_cache_reuse(self, tmp_path):
        # Entries written by a batched run satisfy a scalar run and back.
        grid = self.grid()
        store = SweepStore(tmp_path)
        cold = run_grid(grid, store=store, batch=True)
        warm = run_grid(grid, store=store, batch=False)
        assert warm.report.cache_hits == warm.report.units
        assert warm.report.computed == 0
        assert grid_summary_json(cold) == grid_summary_json(warm)

    def test_mixed_batchable_and_fallback_cells(self, tmp_path):
        # p_crit engine params are un-batchable: they run scalar inside a
        # batch=True sweep, and the result is still byte-identical.
        specs = [
            spec(n_steps=3, workload=600.0),
            spec(n_steps=3, workload=650.0,
                 engine={"kind": "analytical", "params": {"p_crit": 0.9}}),
            spec(n_steps=3, workload=700.0),
        ]
        scalar_arts, _ = run_sweep_cached(specs, batch=False)
        batched_arts, report = run_sweep_cached(specs, batch=True)
        assert [a.to_json() for a in scalar_arts] == [
            a.to_json() for a in batched_arts
        ]
        assert report.batched_units == 2
        assert report.scalar_units == 1
        assert report.fallbacks == {"engine_params": 1}
        assert report.to_dict()["fallbacks"] == {"engine_params": 1}
        # Batching off: nothing fell back, because nothing batched.
        _, scalar_report = run_sweep_cached(specs, batch=False)
        assert scalar_report.fallbacks == {}

    def test_partition_chunk_groups_and_caps(self):
        units = [
            (0, spec(workload=600.0), 0),
            (1, spec(app="trainticket", workload=125.0), 0),
            (2, spec(workload=700.0), 0),
            (3, spec(engine={"kind": "des"}), 0),
            (4, spec(workload=800.0), 0),
        ]
        tasks = _partition_chunk(units, batch=True, parallel=1)
        # One scalar fallback (DES), one trainticket group, one sockshop
        # group holding all three compatible cells.
        scalar_tasks = [t for t in tasks if not t[0]]
        batch_tasks = [t for t in tasks if t[0]]
        assert len(scalar_tasks) == 1
        assert scalar_tasks[0][1][0][0] == 3
        assert sorted(len(t[1]) for t in batch_tasks) == [1, 3]
        # parallel=3 caps group size so every worker gets a share.
        tasks3 = _partition_chunk(units, batch=True, parallel=3)
        assert max(len(t[1]) for t in tasks3 if t[0]) <= 2
        # scalar mode: strictly one unit per task.
        assert all(
            len(t[1]) == 1 and not t[0]
            for t in _partition_chunk(units, batch=False, parallel=4)
        )

    def test_progress_reports_exact_units_and_cells_on_partial_chunk(self):
        # 3 specs x 2 repeats = 6 units, chunk_size 4 -> chunks of 4 and 2.
        specs = [
            spec(n_steps=2, repeats=2, workload=w)
            for w in (600.0, 650.0, 700.0)
        ]
        for batch in (False, True):
            snapshots = []
            run_sweep_cached(
                specs, chunk_size=4, batch=batch,
                on_progress=snapshots.append,
            )
            assert [s.completed for s in snapshots] == [0, 4, 6]
            assert [s.computed for s in snapshots] == [0, 4, 6]
            assert snapshots[-1].done
            assert [s.cells_total for s in snapshots] == [3, 3, 3]
            # After the first (partial-coverage) chunk exactly two specs
            # have both repeats done; the partial last chunk closes the
            # third — exact cell counts, not chunk counts.
            assert [s.cells_completed for s in snapshots] == [0, 2, 3]

    def test_batch_parallel_matches_serial(self):
        specs = [spec(n_steps=3, workload=w, repeats=2)
                 for w in (600.0, 700.0)]
        serial, _ = run_sweep_cached(specs, batch=True, parallel=1)
        parallel, _ = run_sweep_cached(
            specs, batch=True, parallel=2, chunk_size=2
        )
        assert [a.to_json() for a in serial] == [
            a.to_json() for a in parallel
        ]


class TestGridEquivalence:
    def test_ci_smoke_grid_byte_identical(self):
        grid = SweepGrid.read("benchmarks/grids/ci_smoke.json")
        scalar = run_grid(grid, batch=False)
        batched = run_grid(grid, batch=True)
        assert [a.to_json() for a in scalar.artifacts] == [
            a.to_json() for a in batched.artifacts
        ]
        assert grid_summary_json(scalar) == grid_summary_json(batched)

    def test_ported_figure_grids_validate_and_partition(self):
        # Every shipped grid batches — including fig10, whose cells carry
        # static bottleneck params + engine noise overrides (batched by
        # noise model since the noise-aware key).
        from repro.sweeps.batched import batch_key

        for name in (
            "fig10_workload_response",
            "fig11_pema_sockshop",
            "fig18_burst",
        ):
            grid = SweepGrid.read(f"benchmarks/grids/{name}.json")
            grid.validate()
            keys = {batch_key(cell.spec) for cell in grid.cells()}
            assert None not in keys, name

    def test_fig10_noise_and_static_grid_byte_identical(self):
        # fig10 exercises both new batch paths at once: noise-model
        # engine overrides and pinned static bottleneck allocations.
        grid = SweepGrid.read("benchmarks/grids/fig10_workload_response.json")
        scalar = run_grid(grid, batch=False)
        batched = run_grid(grid, batch=True)
        assert [a.to_json() for a in scalar.artifacts] == [
            a.to_json() for a in batched.artifacts
        ]
        assert batched.report.fallbacks == {}

    def test_fig18_workload_aware_grid_byte_identical(self):
        # The workload-aware manager batches through the scalar-manager
        # bank: engine vectorized, per-cell decisions byte-equal.
        grid = SweepGrid.read("benchmarks/grids/fig18_burst.json")
        scalar = run_grid(grid, batch=False)
        batched = run_grid(grid, batch=True)
        assert [a.to_json() for a in scalar.artifacts] == [
            a.to_json() for a in batched.artifacts
        ]
        assert grid_summary_json(scalar) == grid_summary_json(batched)
        assert batched.report.batched_units == batched.report.units

    @pytest.mark.slow
    def test_fig15_grid_byte_identical(self):
        # The acceptance-criterion grid: three apps, PEMA (3 repeats) and
        # RULE (30-step) cells — six batch groups.
        grid = SweepGrid.read("benchmarks/grids/fig15_comparison.json")
        scalar = run_grid(grid, batch=False)
        batched = run_grid(grid, batch=True)
        assert [a.to_json() for a in scalar.artifacts] == [
            a.to_json() for a in batched.artifacts
        ]
        assert grid_summary_json(scalar) == grid_summary_json(batched)
        assert batched.report.batched_units == batched.report.units


@st.composite
def mini_grid_units(draw):
    """A randomized mixed bag of batchable and un-batchable units."""
    units = []
    n = draw(st.integers(min_value=2, max_value=6))
    for index in range(n):
        app = draw(st.sampled_from(["sockshop", "trainticket"]))
        workload = {"sockshop": 600.0, "trainticket": 150.0}[app] * draw(
            st.sampled_from([0.8, 1.0, 1.2])
        )
        kind = draw(st.sampled_from(["pema", "pema", "rule", "static"]))
        autoscaler: dict = {"kind": kind}
        if kind == "pema" and draw(st.booleans()):
            autoscaler["params"] = {
                "alpha": draw(st.sampled_from([0.3, 0.5, 0.7])),
                "beta": draw(st.sampled_from([0.2, 0.3])),
            }
        engine: dict = {"kind": "analytical"}
        if draw(st.integers(min_value=0, max_value=4)) == 0:
            engine["params"] = {"p_crit": 0.9}  # forces scalar fallback
        units.append(
            (
                spec(
                    app=app,
                    workload=workload,
                    n_steps=draw(st.sampled_from([2, 3])),
                    seed=draw(st.integers(min_value=0, max_value=50)),
                    autoscaler=autoscaler,
                    engine=engine,
                    repeats=draw(st.sampled_from([1, 2])),
                ),
                0,
            )
        )
    return [s for s, _ in units]


@pytest.mark.slow
class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(specs=mini_grid_units())
    def test_randomized_mixed_grid_byte_identical(self, specs):
        scalar_arts, scalar_report = run_sweep_cached(specs, batch=False)
        batched_arts, batched_report = run_sweep_cached(specs, batch=True)
        assert [a.to_json() for a in scalar_arts] == [
            a.to_json() for a in batched_arts
        ]
        assert scalar_report.units == batched_report.units
        assert (
            batched_report.batched_units + batched_report.scalar_units
            == batched_report.computed
        )
