"""RULE — commercial rule-based autoscaling baseline (§4.2 and §5).

The paper compares PEMA against "Kubernetes' rule-based resource scaling":
utilization-threshold scaling in the style of the HPA/VPA and Google
Autopilot's percentile rules.  Two modes are provided:

* ``"utilization"`` (default) — keep every service's CPU utilization at a
  single app-wide target.  Because bottleneck utilizations differ per
  service (≈10-25%, Fig. 8a) the target must be set to the *lowest* safe
  level, which is precisely why rule-based scaling over-provisions
  (paper §2.3) — the headroom that lets PEMA save up to 33%.
* ``"vpa"`` — Kubernetes-VPA style: allocate the 90th percentile of
  recent fine-grained usage samples plus 15% overprovision (the rule the
  paper quotes in §5 for the Kubernetes autoscaler [20]).

Scaling up is immediate; scaling down is damped (HPA stabilization
window) to avoid flapping.
"""

from __future__ import annotations

import numpy as np

from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["RuleBasedAutoscaler", "RuleBatch"]


class RuleBasedAutoscaler:
    """Utilization/percentile rule-based vertical autoscaler."""

    def __init__(
        self,
        initial_allocation: Allocation,
        *,
        mode: str = "utilization",
        target_utilization: float = 0.10,
        overprovision: float = 0.15,
        scale_down_limit: float = 0.15,
        min_cpu: float = 0.05,
        max_cpu: float = 32.0,
    ) -> None:
        if mode not in ("utilization", "vpa"):
            raise ValueError(f"unknown mode {mode!r}")
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if overprovision < 0:
            raise ValueError("overprovision must be >= 0")
        if not 0 < scale_down_limit <= 1:
            raise ValueError("scale_down_limit must be in (0, 1]")
        if min_cpu <= 0 or max_cpu <= min_cpu:
            raise ValueError("need 0 < min_cpu < max_cpu")
        self.mode = mode
        self.target_utilization = target_utilization
        self.overprovision = overprovision
        self.scale_down_limit = scale_down_limit
        self.min_cpu = min_cpu
        self.max_cpu = max_cpu
        self._allocation = initial_allocation

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        """Apply the scaling rule to every service independently."""
        new_values: dict[str, float] = {}
        for name in self._allocation:
            svc = metrics.services[name]
            current = self._allocation[name]
            if self.mode == "utilization":
                desired = (svc.usage_cores / self.target_utilization) * (
                    1.0 + self.overprovision
                )
            else:  # vpa
                desired = svc.usage_p90_cores * (1.0 + self.overprovision)
            if desired < current:
                # HPA-style stabilization: bounded downscale per interval.
                desired = max(desired, current * (1.0 - self.scale_down_limit))
            new_values[name] = min(max(desired, self.min_cpu), self.max_cpu)
        self._allocation = Allocation(new_values)
        return self._allocation


class RuleBatch:
    """A vectorized bank of :class:`RuleBasedAutoscaler` cells.

    Holds ``B`` independent rule-based autoscalers (same service set, per-
    cell parameters) as stacked arrays and applies the scaling rule to all
    of them in one call.  Every operation is the same IEEE float op, in
    the same order, as the scalar ``decide`` — cell ``i`` of a batch is
    byte-identical to a scalar autoscaler fed the same metrics.
    """

    def __init__(
        self,
        allocations: np.ndarray,
        scalers: "list[RuleBasedAutoscaler]",
    ) -> None:
        self.allocation = np.array(allocations, dtype=np.float64)
        if self.allocation.ndim != 2 or len(scalers) != self.allocation.shape[0]:
            raise ValueError("allocations must be (B, S) with one scaler per row")
        # The scalar constructor already validated every parameter.
        self._vpa = np.asarray([s.mode == "vpa" for s in scalers])
        self._target = np.asarray([s.target_utilization for s in scalers])
        self._overprovision = np.asarray([s.overprovision for s in scalers])
        self._down_limit = np.asarray([s.scale_down_limit for s in scalers])
        self._min_cpu = np.asarray([s.min_cpu for s in scalers])
        self._max_cpu = np.asarray([s.max_cpu for s in scalers])

    def step(
        self, usage_cores: np.ndarray, usage_p90_cores: np.ndarray
    ) -> np.ndarray:
        """Apply the rule to every cell; returns the ``(B, S)`` allocations."""
        current = self.allocation
        by_util = (usage_cores / self._target[:, None]) * (
            1.0 + self._overprovision[:, None]
        )
        by_p90 = usage_p90_cores * (1.0 + self._overprovision[:, None])
        desired = np.where(self._vpa[:, None], by_p90, by_util)
        stabilized = np.maximum(
            desired, current * (1.0 - self._down_limit[:, None])
        )
        desired = np.where(desired < current, stabilized, desired)
        self.allocation = np.minimum(
            np.maximum(desired, self._min_cpu[:, None]), self._max_cpu[:, None]
        )
        return self.allocation

