"""Dynamic per-service bottleneck thresholds — Eqns. (6) and (7).

PEMA cannot know each microservice's bottleneck utilization/throttling
levels a priori (they differ per service, Fig. 8).  It starts from
conservative values — 15% utilization, zero throttling — and ratchets them
up to the highest levels *observed while the SLO held*::

    U_th_i = max(U_th_i, u_i)        (6)
    H_th_i = max(H_th_i, h_i)        (7)

Ratcheting only happens on SLO-satisfying intervals (the controller skips
the update when rolling back), so the thresholds converge toward each
service's safe operating ceiling.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.sim.types import IntervalMetrics

__all__ = ["ThresholdTracker"]


class ThresholdTracker:
    """Tracks U_th and H_th for every microservice."""

    def __init__(
        self,
        services: Iterable[str],
        init_util: float = 0.15,
        init_throttle: float = 0.0,
    ) -> None:
        names = tuple(services)
        if not names:
            raise ValueError("need at least one service")
        if not 0 <= init_util <= 1:
            raise ValueError(f"init_util must be in [0, 1]: {init_util}")
        if init_throttle < 0:
            raise ValueError(f"init_throttle must be >= 0: {init_throttle}")
        self._util: dict[str, float] = {n: init_util for n in names}
        self._throttle: dict[str, float] = {n: init_throttle for n in names}

    @property
    def services(self) -> tuple[str, ...]:
        return tuple(self._util)

    def util_threshold(self, name: str) -> float:
        return self._util[name]

    def throttle_threshold(self, name: str) -> float:
        return self._throttle[name]

    def update(self, metrics: IntervalMetrics) -> None:
        """Apply Eqns. (6)-(7) with the latest interval's observations."""
        for name, svc in metrics.services.items():
            if name not in self._util:
                raise KeyError(f"unknown service in metrics: {name!r}")
            if svc.utilization > self._util[name]:
                self._util[name] = float(svc.utilization)
            if svc.throttle_seconds > self._throttle[name]:
                self._throttle[name] = float(svc.throttle_seconds)

    def snapshot(self) -> tuple[Mapping[str, float], Mapping[str, float]]:
        """(utilization thresholds, throttling thresholds) copies."""
        return dict(self._util), dict(self._throttle)

    def restore(
        self, util: Mapping[str, float], throttle: Mapping[str, float]
    ) -> None:
        """Overwrite thresholds (used when bootstrapping a child range)."""
        if set(util) != set(self._util) or set(throttle) != set(self._throttle):
            raise ValueError("threshold snapshot covers different services")
        self._util = {k: float(v) for k, v in util.items()}
        self._throttle = {k: float(v) for k, v in throttle.items()}
