"""High-resolution violation mitigation (§6 extension)."""

import numpy as np
import pytest

from repro.core import (
    ControlLoop,
    FastReactionLoop,
    PEMAConfig,
    PEMAController,
)
from repro.core.fastloop import _aggregate
from repro.metrics import MetricsCollector
from repro.sim import AnalyticalEngine, NoiseModel
from repro.sim.types import IntervalMetrics, ServiceMetrics
from repro.workload import ConstantWorkload
from tests.conftest import make_metrics


def make_fast_loop(tiny_app, splits=6, seed=0, noise=None):
    engine = AnalyticalEngine(
        tiny_app, seed=seed, noise=noise if noise is not None else NoiseModel()
    )
    controller = PEMAController(
        tiny_app.service_names,
        tiny_app.slo,
        tiny_app.generous_allocation(100.0),
        PEMAConfig(explore_a=0.0, explore_b=0.0),
        seed=seed + 1,
    )
    return FastReactionLoop(
        engine, controller, ConstantWorkload(100.0), monitor_splits=splits
    )


class TestAggregate:
    def test_worst_sub_dominates_p95(self):
        subs = [make_metrics(0.1), make_metrics(0.3), make_metrics(0.2)]
        agg = _aggregate(subs)
        assert agg.latency_p95 == pytest.approx(0.3)

    def test_throttle_adds_up(self):
        subs = [
            make_metrics(0.1, throttles={"db": 1.0}),
            make_metrics(0.1, throttles={"db": 2.5}),
        ]
        agg = _aggregate(subs)
        assert agg.services["db"].throttle_seconds == pytest.approx(3.5)

    def test_utilization_averages(self):
        subs = [
            make_metrics(0.1, utils={"front": 0.2}),
            make_metrics(0.1, utils={"front": 0.4}),
        ]
        agg = _aggregate(subs)
        assert agg.services["front"].utilization == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _aggregate([])


class TestFastReactionLoop:
    def test_runs_and_converges(self, tiny_app):
        loop = make_fast_loop(tiny_app)
        result = loop.run(20)
        assert len(result) == 20
        assert result.sub_intervals == 20 * 6
        assert result.total_cpu[-1] < result.total_cpu[0]

    def test_mitigation_fires_on_violation(self, tiny_app):
        loop = make_fast_loop(tiny_app, splits=4, seed=3)
        # Drive the controller aggressively so it overshoots.
        loop.controller.config = PEMAConfig(
            alpha=0.1, beta=0.9, explore_a=0.0, explore_b=0.0
        )
        result = loop.run(30)
        assert result.mitigations >= 1
        # Exposure accounting is consistent.
        assert 0.0 <= result.violation_exposure() <= 1.0
        assert result.sub_violations <= result.sub_intervals

    def test_exposure_not_worse_than_plain_loop(self, tiny_app):
        """Fast mitigation bounds the time spent in violation to roughly
        one sub-interval per incident; the plain loop pays whole
        intervals."""
        config = PEMAConfig(alpha=0.15, beta=0.7, explore_a=0.0, explore_b=0.0)

        def plain():
            engine = AnalyticalEngine(tiny_app, seed=11)
            controller = PEMAController(
                tiny_app.service_names, tiny_app.slo,
                tiny_app.generous_allocation(100.0), config, seed=12,
            )
            return ControlLoop(
                engine, controller, ConstantWorkload(100.0)
            ).run(40)

        def fast():
            engine = AnalyticalEngine(tiny_app, seed=11)
            controller = PEMAController(
                tiny_app.service_names, tiny_app.slo,
                tiny_app.generous_allocation(100.0), config, seed=12,
            )
            loop = FastReactionLoop(
                engine, controller, ConstantWorkload(100.0), monitor_splits=12
            )
            return loop.run(40)

        plain_result = plain()
        fast_result = fast()
        plain_exposure = plain_result.violation_rate()
        # The fast loop measures exposure at sub-interval resolution.
        assert fast_result.violation_exposure() <= plain_exposure + 0.05

    def test_collector_receives_aggregates(self, tiny_app):
        loop = make_fast_loop(tiny_app)
        loop.collector = MetricsCollector()
        loop.run(5)
        assert len(loop.collector.store.series("latency_p95")) == 5

    def test_validation(self, tiny_app):
        with pytest.raises(ValueError):
            make_fast_loop(tiny_app, splits=0)
        loop = make_fast_loop(tiny_app)
        with pytest.raises(ValueError):
            loop.run(0)

    def test_on_step_hook(self, tiny_app):
        loop = make_fast_loop(tiny_app)
        seen = []
        loop.run(3, on_step=lambda s, lp: seen.append(s))
        assert seen == [0, 1, 2]
