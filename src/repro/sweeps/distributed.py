"""Distributed sweep execution: lease/claim workers over a shared store.

``run_sweep_cached`` tops out at one machine's process pool.  This module
turns the content-addressed :class:`~repro.sweeps.store.SweepStore` into a
work queue so N *independent* worker processes — on one machine or on many
hosts sharing the store directory — pull chunks of (spec, repeat) units
from the same grid:

* **deterministic plan** — every worker expands the same spec list into
  the same ordered unit list and chunks it into the same tasks, so the
  plan id (a content hash over the unit keys plus the chunk size) is the
  rendezvous: no coordinator hands out work;
* **lease/claim** — a worker claims a task by exclusively creating its
  lease file (:class:`~repro.sweeps.store.LeaseNamespace`), heartbeats
  the lease while computing, and releases it after writing the task's
  done marker; a worker that dies mid-task leaves an expiring lease that
  any surviving worker reclaims (a *steal*);
* **dedupe** — before computing a unit the worker probes the store by
  content hash, so units another worker (or a previous run) already
  persisted are skipped, and a task whose units are all present is
  fast-forwarded to done without being claimed;
* **byte-identity** — workers run the exact scalar/batched unit workers
  the local scheduler uses, so the merged artifacts, aggregate summary,
  and store entries are byte-identical to a serial ``run_sweep_cached``
  no matter how many workers ran, died, or raced.

Leases bound *wasted* work, they do not guard correctness: in the worst
interleavings two workers both compute a unit, and both write the same
bytes under the same content-addressed key.  That inversion — idempotent
writes below, advisory claims above — is what lets the protocol survive
SIGKILL with nothing to clean up or roll back.
"""

from __future__ import annotations

import multiprocessing
import socket
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.obs.metrics import default_registry
from repro.sweeps.grid import SweepCell, SweepGrid
from repro.sweeps.scheduler import (
    GridRun,
    SweepReport,
    _partition_chunk,
    build_artifacts,
)
from repro.sweeps.store import (
    Lease,
    LeaseNamespace,
    SweepStore,
    _write_json_replace,
    canonical_key,
)

__all__ = [
    "DistPlan",
    "DistTask",
    "WorkerReport",
    "plan_tasks",
    "run_worker",
    "missing_units",
    "merge_grid",
    "wait_for_grid",
    "run_distributed",
    "worker_reports",
    "default_worker_id",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_TASK_UNITS",
]

#: Default lease time-to-live in seconds.  Must comfortably exceed the
#: worker's heartbeat interval (TTL/2, between units) plus the longest
#: single compute call — one scalar unit, or one whole batched group.
DEFAULT_LEASE_TTL = 30.0

#: Default units per claimable task.  Smaller tasks balance better and
#: lose less work to a steal; larger tasks amortize claim traffic and
#: give ``batch=True`` bigger vectorized groups.
DEFAULT_TASK_UNITS = 4

_REG = default_registry()
_DIST_CLAIMS = _REG.counter(
    "repro_dist_claims_total",
    "Distributed sweep tasks claimed (fresh leases acquired).",
)
_DIST_STEALS = _REG.counter(
    "repro_dist_steals_total",
    "Expired leases reclaimed from dead or stalled workers.",
)
_DIST_EXPIRED = _REG.counter(
    "repro_dist_lease_expired_total",
    "Expired foreign leases observed during claim scans.",
)
_DIST_HEARTBEATS = _REG.counter(
    "repro_dist_heartbeats_total",
    "Lease renewals written by in-progress workers.",
)
_DIST_TASKS_DONE = _REG.counter(
    "repro_dist_tasks_done_total",
    "Distributed sweep tasks marked complete.",
)


def default_worker_id() -> str:
    """A worker id unique enough across hosts and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class DistTask:
    """One claimable chunk of the plan: contiguous units of the sweep."""

    index: int
    task_id: str
    units: tuple[tuple[int, int], ...]  # (spec_index, repeat) pairs


@dataclass(frozen=True)
class DistPlan:
    """The shared task decomposition every worker derives independently.

    ``plan_id`` hashes the *unit cache keys* (not the grid file), so two
    grids that expand to the same physical units — or the same grid read
    on different hosts — land in the same queue namespace and cooperate.
    """

    plan_id: str
    tasks: tuple[DistTask, ...]
    n_units: int


def plan_tasks(
    specs: Sequence[ExperimentSpec], chunk_size: int | None = None
) -> DistPlan:
    """Deterministically chunk the sweep's units into claimable tasks.

    Every worker must call this with the same spec list and the same
    ``chunk_size``; the plan id folds both in, so a misconfigured worker
    ends up in a *different* queue namespace (wasting work but never
    corrupting the shared one — the store still dedupes its units).
    """
    chunk = DEFAULT_TASK_UNITS if chunk_size is None else int(chunk_size)
    if chunk < 1:
        raise ValueError("chunk_size must be >= 1")
    units: list[tuple[int, int]] = []
    digests: list[str] = []
    for spec_index, spec in enumerate(specs):
        for repeat in range(spec.repeats):
            units.append((spec_index, repeat))
            digests.append(canonical_key(SweepStore.unit_key(spec, repeat)))
    plan_id = canonical_key(
        {"kind": "dist-plan", "format": 1, "chunk": chunk, "units": digests}
    )[:16]
    tasks = tuple(
        DistTask(
            index=task_index,
            task_id=f"task-{task_index:05d}",
            units=tuple(units[start : start + chunk]),
        )
        for task_index, start in enumerate(range(0, len(units), chunk))
    )
    return DistPlan(plan_id=plan_id, tasks=tasks, n_units=len(units))


@dataclass
class WorkerReport:
    """What one ``run_worker`` call did (persisted under ``workers/``)."""

    worker: str
    plan_id: str
    tasks_total: int
    tasks_claimed: int = 0
    tasks_stolen: int = 0
    tasks_done: int = 0
    units_computed: int = 0
    units_cached: int = 0
    units_batched: int = 0
    units_scalar: int = 0
    heartbeats: int = 0
    waits: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "plan_id": self.plan_id,
            "tasks_total": self.tasks_total,
            "tasks_claimed": self.tasks_claimed,
            "tasks_stolen": self.tasks_stolen,
            "tasks_done": self.tasks_done,
            "units_computed": self.units_computed,
            "units_cached": self.units_cached,
            "units_batched": self.units_batched,
            "units_scalar": self.units_scalar,
            "heartbeats": self.heartbeats,
            "waits": self.waits,
            "fallbacks": dict(sorted(self.fallbacks.items())),
            "seconds": self.seconds,
        }


class _DoneSet:
    """Atomic per-task completion markers (the claim scan's fast path).

    A marker asserts "every unit of this task is in the store" — the
    writer verifies that before marking, so whoever writes it (finisher,
    stealer, or a fast-forwarding scanner) the statement holds.
    """

    def __init__(self, root) -> None:
        self.root = root

    def path_for(self, task_id: str):
        return self.root / f"{task_id}.json"

    def exists(self, task_id: str) -> bool:
        return self.path_for(task_id).exists()

    def mark(self, task_id: str, payload: dict[str, Any]) -> None:
        _write_json_replace(self.path_for(task_id), payload)


# Test seam: called at ("claimed", task), ("unit", task) after each unit
# persists, and ("done", task) after the done marker lands.  An exception
# raised here abandons the worker mid-task *without* releasing its lease —
# exactly what SIGKILL looks like to the rest of the fleet.
OnTask = Callable[[str, DistTask], None]


def run_worker(
    specs: Sequence[ExperimentSpec],
    store: SweepStore,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    chunk_size: int | None = None,
    batch: bool = False,
    poll_interval: float = 0.05,
    max_tasks: int | None = None,
    on_task: OnTask | None = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerReport:
    """Pull tasks from the shared store until the whole sweep is done.

    The loop scans the plan in order: tasks with done markers are
    skipped, tasks whose units are all already persisted are marked done
    without a claim, live foreign leases are left alone, and expired
    ones are stolen.  Between compute calls the worker renews its lease
    (at half TTL) and after the last unit it writes the done marker and
    releases.  ``max_tasks`` bounds how many tasks this call claims
    (restart schedules in tests); ``on_task`` is a test seam.

    Returns after every task in the plan has a done marker, or once
    ``max_tasks`` claims completed.  The report is also persisted under
    the plan's ``workers/`` directory on clean exit.
    """
    started = clock()
    worker = worker_id or default_worker_id()
    specs = list(specs)
    plan = plan_tasks(specs, chunk_size)
    queue = store.queue_root(plan.plan_id)
    leases = LeaseNamespace(queue / "leases")
    done = _DoneSet(queue / "done")
    report = WorkerReport(
        worker=worker, plan_id=plan.plan_id, tasks_total=len(plan.tasks)
    )
    done_seen: set[str] = set()

    def heartbeat(lease: Lease) -> Lease:
        if clock() < lease.expires - lease_ttl / 2.0:
            return lease
        renewed = leases.renew(lease, lease_ttl, now=clock())
        if renewed is None:
            # Lost to a stealer (e.g. a long compute outlived the TTL).
            # Finish anyway: writes are idempotent, and stopping now
            # would waste the partial work.
            return lease
        report.heartbeats += 1
        _DIST_HEARTBEATS.inc()
        return renewed

    def run_task(task: DistTask, lease: Lease) -> None:
        pending: list[tuple[int, ExperimentSpec, int]] = []
        for spec_index, repeat in task.units:
            spec = specs[spec_index]
            if store.get_result(spec, repeat) is not None:
                report.units_cached += 1
            else:
                pending.append((spec_index, spec, repeat))
        for batched, group in _partition_chunk(
            pending, batch, 1, report.fallbacks
        ):
            lease = heartbeat(lease)
            if batched:
                from repro.sweeps.batched import _run_batch_worker

                payloads = _run_batch_worker(
                    [[spec.to_dict(), repeat] for _, spec, repeat in group]
                )
                report.units_batched += len(group)
            else:
                payloads = [
                    _run_unit_worker(spec.to_dict(), repeat)
                    for _, spec, repeat in group
                ]
                report.units_scalar += len(group)
            for (_, spec, repeat), payload in zip(group, payloads):
                store.put_result(spec, repeat, payload)
                report.units_computed += 1
                if on_task is not None:
                    on_task("unit", task)
                lease = heartbeat(lease)
        done.mark(
            task.task_id,
            {"task": task.task_id, "worker": worker, "units": len(task.units)},
        )
        report.tasks_done += 1
        _DIST_TASKS_DONE.inc()
        leases.release(lease)
        if on_task is not None:
            on_task("done", task)

    while True:
        all_done = True
        progress = False
        for task in plan.tasks:
            if task.task_id in done_seen:
                continue
            if done.exists(task.task_id):
                done_seen.add(task.task_id)
                continue
            all_done = False
            if max_tasks is not None and report.tasks_claimed >= max_tasks:
                continue
            if all(
                store.get_result(specs[i], r) is not None
                for i, r in task.units
            ):
                # Every unit already persisted (by us, a peer, or a past
                # run): fast-forward the marker, no claim needed.
                done.mark(
                    task.task_id,
                    {
                        "task": task.task_id,
                        "worker": worker,
                        "units": len(task.units),
                        "fast_forward": True,
                    },
                )
                done_seen.add(task.task_id)
                _DIST_TASKS_DONE.inc()
                progress = True
                continue
            now = clock()
            current = leases.read(task.task_id)
            if current is not None and float(
                current.get("expires", 0.0)
            ) <= now:
                _DIST_EXPIRED.inc()
            lease = leases.acquire(task.task_id, worker, lease_ttl, now=now)
            if lease is None:
                continue
            report.tasks_claimed += 1
            _DIST_CLAIMS.inc()
            if lease.stolen:
                report.tasks_stolen += 1
                _DIST_STEALS.inc()
            if on_task is not None:
                on_task("claimed", task)
            run_task(task, lease)
            done_seen.add(task.task_id)
            progress = True
        if all_done:
            break
        if max_tasks is not None and report.tasks_claimed >= max_tasks:
            break
        if not progress:
            report.waits += 1
            sleep(poll_interval)
    report.seconds = clock() - started
    _write_json_replace(
        queue / "workers" / f"{worker}.json", report.to_dict()
    )
    return report


# -- merge / coordination ------------------------------------------------------
def missing_units(
    specs: Sequence[ExperimentSpec], store: SweepStore
) -> list[tuple[int, int]]:
    """The (spec_index, repeat) units not yet persisted in ``store``."""
    return [
        (spec_index, repeat)
        for spec_index, spec in enumerate(specs)
        for repeat in range(spec.repeats)
        if store.get_result(spec, repeat) is None
    ]


def _merge_specs(
    specs: Sequence[ExperimentSpec],
    store: SweepStore,
    *,
    seconds: float = 0.0,
) -> tuple[list[ExperimentArtifact], SweepReport]:
    """Assemble artifacts + report purely from persisted unit payloads.

    This is the serial scheduler's aggregation step fed entirely from the
    cache, so a merged distributed run and an uninterrupted serial run
    produce byte-identical artifacts and aggregate summaries.
    """
    payloads: dict[tuple[int, int], dict[str, Any]] = {}
    absent: list[str] = []
    for spec_index, spec in enumerate(specs):
        for repeat in range(spec.repeats):
            payload = store.get_result(spec, repeat)
            if payload is None:
                absent.append(f"{spec.name or spec.app}#{repeat}")
            else:
                payloads[(spec_index, repeat)] = payload
    if absent:
        preview = ", ".join(absent[:5])
        raise LookupError(
            f"{len(absent)} unit(s) missing from {store.root} "
            f"(e.g. {preview}) — are workers still running?"
        )
    artifacts = build_artifacts(specs, payloads)
    units = sum(spec.repeats for spec in specs)
    report = SweepReport(
        specs=len(specs),
        units=units,
        cache_hits=units,
        computed=0,
        chunks=0,
        seconds=seconds,
        replay_units=sum(
            spec.repeats for spec in specs if spec.workload.kind == "replay"
        ),
        manager_states=sum(
            1
            for payload in payloads.values()
            if payload.get("manager_state") is not None
        ),
    )
    return artifacts, report


def merge_grid(
    grid: SweepGrid,
    store: SweepStore,
    *,
    cells: Sequence[SweepCell] | None = None,
    seconds: float = 0.0,
) -> GridRun:
    """Build the grid's :class:`GridRun` from a fully populated store.

    Raises LookupError (naming the gaps) when any unit is absent — merge
    only ever reads, so it can run on any host that sees the store, any
    number of times, before or after the workers exit.
    """
    cells = tuple(grid.cells() if cells is None else cells)
    artifacts, report = _merge_specs(
        [cell.spec for cell in cells], store, seconds=seconds
    )
    return GridRun(
        grid=grid, cells=cells, artifacts=tuple(artifacts), report=report
    )


def wait_for_grid(
    grid: SweepGrid,
    store: SweepStore,
    *,
    timeout: float | None = None,
    poll_interval: float = 0.2,
    cells: Sequence[SweepCell] | None = None,
    on_progress: Callable[[int, int], None] | None = None,
) -> GridRun:
    """Block until every unit of ``grid`` is persisted, then merge.

    The coordinator side of a multi-host run: it touches no leases and
    computes nothing, it just polls the store (``on_progress`` receives
    ``(present, total)`` each pass) and merges when the last unit lands.
    """
    started = time.time()
    cells = tuple(grid.cells() if cells is None else cells)
    specs = [cell.spec for cell in cells]
    total = sum(spec.repeats for spec in specs)
    while True:
        missing = missing_units(specs, store)
        if on_progress is not None:
            on_progress(total - len(missing), total)
        if not missing:
            break
        if timeout is not None and time.time() - started > timeout:
            raise TimeoutError(
                f"{len(missing)}/{total} unit(s) still missing from "
                f"{store.root} after {timeout:.1f}s"
            )
        time.sleep(poll_interval)
    return merge_grid(
        grid, store, cells=cells, seconds=time.time() - started
    )


def _worker_entry(
    specs_data: list[dict[str, Any]], store_root: str, kwargs: dict[str, Any]
) -> None:
    # Module-level, plain-data arguments: works under fork and spawn.
    specs = [ExperimentSpec.from_dict(data) for data in specs_data]
    run_worker(specs, SweepStore(store_root), **kwargs)


def worker_reports(
    store: SweepStore, plan_id: str
) -> list[dict[str, Any]]:
    """Every persisted worker report of one plan, sorted by worker id."""
    import json

    reports = []
    workers_dir = store.queue_root(plan_id) / "workers"
    for path in sorted(workers_dir.glob("*.json")):
        try:
            reports.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            continue
    return reports


def run_distributed(
    grid: SweepGrid,
    store: SweepStore,
    *,
    workers: int = 2,
    batch: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    chunk_size: int | None = None,
    cells: Sequence[SweepCell] | None = None,
    worker_prefix: str = "worker-",
    mp_context: multiprocessing.context.BaseContext | None = None,
) -> tuple[GridRun, list[dict[str, Any]]]:
    """Run ``grid`` with ``workers`` local worker processes, then merge.

    The single-machine convenience over the same protocol a multi-host
    fleet uses: each worker is a separate OS process pulling from the
    shared store, so killing one (tests, the dist gate) exercises the
    real lease-recovery path.  Returns the merged run plus the persisted
    worker reports.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    started = time.time()
    cells = tuple(grid.cells() if cells is None else cells)
    specs = [cell.spec for cell in cells]
    specs_data = [spec.to_dict() for spec in specs]
    plan = plan_tasks(specs, chunk_size)
    ctx = mp_context or multiprocessing.get_context()
    procs = [
        ctx.Process(
            target=_worker_entry,
            args=(
                specs_data,
                str(store.root),
                dict(
                    worker_id=f"{worker_prefix}{index}",
                    lease_ttl=lease_ttl,
                    chunk_size=chunk_size,
                    batch=batch,
                ),
            ),
        )
        for index in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    failed = [p.exitcode for p in procs if p.exitcode != 0]
    run = merge_grid(
        grid, store, cells=cells, seconds=time.time() - started
    )
    reports = worker_reports(store, plan.plan_id)
    if failed:
        # The merge succeeded, so the sweep healed around the failures;
        # surface them in the reports instead of raising.
        reports.append({"worker_exit_codes": failed})
    return run, reports
