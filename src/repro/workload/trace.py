"""Workload trace protocol and composition helpers.

A workload trace maps wall-clock time (seconds) to offered load (requests
per second).  Traces are deterministic given their construction arguments;
stochastic jitter is layered on with :class:`NoisyTrace` and an explicit
seed, so experiments replay exactly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "WorkloadTrace",
    "NoisyTrace",
    "ScaledTrace",
    "PhasedTrace",
    "sample_range",
]


@runtime_checkable
class WorkloadTrace(Protocol):
    """Offered load as a function of time."""

    def rate(self, t: float) -> float:
        """Requests per second at time ``t`` (seconds)."""
        ...


class NoisyTrace:
    """Multiplicative jitter around a base trace.

    The jitter is a deterministic function of ``floor(t / period)`` and the
    seed, so repeated queries at the same time return the same rate.
    """

    def __init__(
        self, base: WorkloadTrace, sigma: float = 0.03, seed: int = 0, period: float = 60.0
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.base = base
        self.sigma = sigma
        self.seed = seed
        self.period = period

    def rate(self, t: float) -> float:
        base = self.base.rate(t)
        if self.sigma == 0:
            return base
        bucket = int(np.floor(t / self.period))
        rng = np.random.default_rng((self.seed, bucket))
        return max(0.0, base * float(np.exp(rng.normal(0.0, self.sigma))))


class PhasedTrace:
    """Sequential phases, each with its own trace and a restarted clock.

    ``phases`` is a list of ``(trace, duration)`` pairs; the last phase
    may have ``duration=None`` (open-ended).  Each phase's trace is
    queried with time measured from its own start, so a multi-stage
    scenario (train on a sinusoid, then replay a burst) reproduces the
    exact per-phase rates of running the phases as separate loops.
    """

    def __init__(
        self, phases: list[tuple[WorkloadTrace, float | None]]
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        for i, (_trace, duration) in enumerate(phases):
            if duration is None:
                if i != len(phases) - 1:
                    raise ValueError(
                        "only the last phase may be open-ended"
                    )
            elif duration <= 0:
                raise ValueError("phase durations must be positive")
        self.phases = list(phases)

    def rate(self, t: float) -> float:
        start = 0.0
        for trace, duration in self.phases:
            if duration is None or t < start + duration:
                return trace.rate(t - start)
            start += duration
        # Past the end of a fully-bounded schedule: the last phase holds,
        # clocked from its own start.
        return self.phases[-1][0].rate(t - (start - self.phases[-1][1]))


class ScaledTrace:
    """Affine transform of a base trace: ``rate = base * scale + offset``."""

    def __init__(
        self, base: WorkloadTrace, scale: float = 1.0, offset: float = 0.0
    ) -> None:
        self.base = base
        self.scale = scale
        self.offset = offset

    def rate(self, t: float) -> float:
        return max(0.0, self.base.rate(t) * self.scale + self.offset)


def sample_range(
    trace: WorkloadTrace, start: float, end: float, step: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a trace on a regular grid — convenient for plots and tests."""
    if end <= start:
        raise ValueError("end must be after start")
    if step <= 0:
        raise ValueError("step must be positive")
    times = np.arange(start, end, step, dtype=np.float64)
    rates = np.asarray([trace.rate(float(t)) for t in times])
    return times, rates
