"""The DES engine-fidelity contract: vectorized ≡ scalar reference.

The vectorized :class:`MicroserviceSimulator` must be bit-identical to
the retained :class:`ReferenceSimulator` — traces, IntervalMetrics,
counters, and sweep-cell payload bytes — across applications, seeds, and
arrival processes.  ``benchmarks/des_gate.py`` enforces the same
contract (plus the ≥3x speedup floor) in CI; these tests are the
randomized, shrinkable side of it.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app
from repro.experiments import ExperimentSpec
from repro.experiments.runner import _run_unit_worker
from repro.sim.des import (
    DESEngine,
    FastEventQueue,
    MicroserviceSimulator,
    MMPPArrivals,
    PoissonArrivals,
    ReferenceSimulator,
    SimConfig,
    mmpp_times,
    poisson_times,
    spawn_streams,
)
from repro.sim.des.events import EventKind
from repro.sim.des.variates import (
    BLOCK,
    BlockExp,
    BlockGamma,
    BlockNormal,
    BlockUniform,
    ScalarExp,
    ScalarGamma,
    ScalarNormal,
    ScalarUniform,
)
from repro.sweeps import (
    SweepGrid,
    SweepStore,
    grid_summary_json,
    run_grid,
)


def run_both(app_name, seed, arrivals, rate, alloc_scale, **cfg_overrides):
    """One (reference, vectorized) simulation pair on identical inputs."""
    app = build_app(app_name)
    alloc = app.generous_allocation(rate).scale(alloc_scale)
    cfg = SimConfig(arrivals=arrivals, trace=True, **cfg_overrides)
    sims = []
    for cls in (ReferenceSimulator, MicroserviceSimulator):
        sim = cls(app, alloc, rate, config=cfg, seed=seed)
        metrics = sim.run(2.0, warmup=0.5)
        sims.append((sim, metrics))
    return sims


def span_tuples(sim):
    return [
        (s.request_id, s.service, s.start, s.end, s.cpu_time)
        for s in sim.traces.spans
    ]


class TestVariateStreams:
    """Block pre-draws serve the scalar draw sequence bit for bit."""

    @pytest.mark.parametrize(
        "scalar_cls,block_cls,args",
        [
            (ScalarExp, BlockExp, ()),
            (ScalarUniform, BlockUniform, ()),
            (ScalarNormal, BlockNormal, ()),
            (ScalarGamma, BlockGamma, (4.0,)),
        ],
    )
    def test_block_equals_scalar_across_refill(self, scalar_cls, block_cls, args):
        core_a, _ = spawn_streams(99, 0)
        core_b, _ = spawn_streams(99, 0)
        scalar = scalar_cls(core_a[0], *args)
        block = block_cls(core_b[0], *args)
        n = BLOCK + 100  # cross one refill boundary
        for i in range(n):
            assert scalar.next() == block.next(), f"draw {i} diverged"

    def test_spawn_streams_deterministic_and_independent(self):
        core_a, bg_a = spawn_streams(7, 2)
        core_b, bg_b = spawn_streams(7, 2)
        assert len(core_a) == 5 and len(bg_a) == 2
        for ga, gb in zip(core_a + bg_a, core_b + bg_b):
            assert ga.standard_normal() == gb.standard_normal()
        # Different purposes see different streams.
        core_c, _ = spawn_streams(7, 2)
        draws = {float(g.standard_normal()) for g in core_c}
        assert len(draws) == 5

    def test_gamma_shape_validated(self):
        core, _ = spawn_streams(0, 0)
        with pytest.raises(ValueError):
            BlockGamma(core[0], 0.0)
        with pytest.raises(ValueError):
            ScalarGamma(core[0], -1.0)


class TestPrecomputedSchedules:
    """Schedule precompute consumes the arrival stream in scalar order."""

    @pytest.mark.parametrize("rate", [10.0, 87.5, 400.0])
    def test_poisson_times_match_sequential_gaps(self, rate):
        horizon = 3.0
        gen_a = spawn_streams(11, 0)[0][0]
        gen_b = spawn_streams(11, 0)[0][0]
        times = poisson_times(BlockExp(gen_a), rate, horizon)
        scalar = PoissonArrivals(rate, gen_b)
        expected = [scalar.next_gap()]
        while expected[-1] <= horizon:
            t = expected[-1] + scalar.next_gap()
            if t > horizon:
                break
            expected.append(t)
        assert times == expected

    @pytest.mark.parametrize("rate", [25.0, 120.0])
    def test_mmpp_times_match_sequential_gaps(self, rate):
        horizon = 3.0
        gen_a = spawn_streams(23, 0)[0][0]
        gen_b = spawn_streams(23, 0)[0][0]
        times = mmpp_times(BlockExp(gen_a), rate, horizon)
        scalar = MMPPArrivals(rate, gen_b)
        expected = [scalar.next_gap()]
        while expected[-1] <= horizon:
            t = expected[-1] + scalar.next_gap()
            if t > horizon:
                break
            expected.append(t)
        assert times == expected


class TestFastEventQueue:
    def test_orders_by_time_then_sequence(self):
        q = FastEventQueue()
        q.push(2.0, EventKind.ARRIVAL, payload="late")
        q.push(1.0, EventKind.ARRIVAL, payload="early")
        q.push(1.0, EventKind.ARRIVAL, payload="tied-second")
        assert q.pop()[3] == "early"
        assert q.pop()[3] == "tied-second"
        assert q.now == 1.0
        assert q.peek_time() == 2.0

    def test_rejects_past_and_clamps_jitter(self):
        q = FastEventQueue()
        q.push(1.0, EventKind.ARRIVAL)
        q.pop()
        with pytest.raises(ValueError):
            q.push(0.5, EventKind.ARRIVAL)
        q.push(1.0 - 1e-12, EventKind.ARRIVAL)  # numeric jitter: clamped
        assert q.pop()[0] == 1.0


class TestBitIdentity:
    """The core contract, randomized: vectorized ≡ reference."""

    @settings(max_examples=12, deadline=None)
    @given(
        app_name=st.sampled_from(
            ["sockshop", "trainticket", "hotelreservation"]
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        arrivals=st.sampled_from(["poisson", "mmpp"]),
        rate=st.floats(min_value=20.0, max_value=150.0),
        alloc_scale=st.floats(min_value=0.25, max_value=2.0),
    )
    def test_traces_and_metrics_identical(
        self, app_name, seed, arrivals, rate, alloc_scale
    ):
        (ref, m_ref), (vec, m_vec) = run_both(
            app_name, seed, arrivals, rate, alloc_scale
        )
        assert m_ref == m_vec
        assert ref.window.started == vec.window.started
        assert ref.window.completed == vec.window.completed
        assert ref.in_flight == vec.in_flight
        assert span_tuples(ref) == span_tuples(vec)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        demand_cv=st.sampled_from([0.0, 0.5, 1.0]),
        wait_jitter=st.sampled_from([0.0, 0.1]),
        background=st.booleans(),
    )
    def test_identity_across_config_degrees(
        self, seed, demand_cv, wait_jitter, background
    ):
        # Degenerate configs exercise the no-draw paths (deterministic
        # demand, jitter-free waits, no background bursts).
        (ref, m_ref), (vec, m_vec) = run_both(
            "sockshop",
            seed,
            "mmpp",
            80.0,
            1.0,
            demand_cv=demand_cv,
            wait_jitter=wait_jitter,
            background=background,
        )
        assert m_ref == m_vec
        assert span_tuples(ref) == span_tuples(vec)

    def test_cross_mode_differs_from_other_seed(self):
        # Sanity: identity is not vacuous (different seeds diverge).
        (_, m_a), _ = run_both("sockshop", 1, "mmpp", 80.0, 1.0)
        (_, m_b), _ = run_both("sockshop", 2, "mmpp", 80.0, 1.0)
        assert m_a != m_b


class TestEngineModes:
    def test_engine_mode_selection(self):
        app = build_app("sockshop")
        assert DESEngine(app).mode == "vectorized"
        assert DESEngine(app, mode="reference").mode == "reference"
        with pytest.raises(ValueError, match="mode"):
            DESEngine(app, mode="fast")

    def test_engine_payload_bytes_identical(self):
        # The whole sweep-cell payload — through the scalar worker — is
        # byte-identical between engine modes.
        def payload(mode):
            spec = ExperimentSpec(
                app="sockshop",
                workload=90.0,
                n_steps=2,
                seed=5,
                engine={
                    "kind": "des",
                    "params": {
                        "sim_seconds": 1.5,
                        "warmup_seconds": 0.5,
                        "mode": mode,
                    },
                },
            )
            return _run_unit_worker(spec.to_dict(), 0)

        assert json.dumps(payload("reference"), sort_keys=True) == json.dumps(
            payload("vectorized"), sort_keys=True
        )

    def test_observe_equal_metrics_per_call(self):
        app = build_app("trainticket")
        alloc = app.generous_allocation(60.0)
        vec = DESEngine(app, sim_seconds=1.5, warmup_seconds=0.5, seed=2)
        ref = DESEngine(
            app, sim_seconds=1.5, warmup_seconds=0.5, seed=2, mode="reference"
        )
        for _ in range(3):  # per-call seed derivation matches too
            assert vec.observe(alloc, 60.0) == ref.observe(alloc, 60.0)
            assert vec.last_completed == ref.last_completed
            assert vec.last_started == ref.last_started


def des_grid() -> SweepGrid:
    return SweepGrid(
        name="des_resume",
        base=ExperimentSpec(
            app="sockshop",
            workload=70.0,
            n_steps=2,
            seed=0,
            engine={
                "kind": "des",
                "params": {"sim_seconds": 1.0, "warmup_seconds": 0.25},
            },
        ).to_dict(),
        axes=(
            {"name": "workload", "path": "workload", "values": [70.0, 110.0]},
            {"name": "seed", "path": "seed", "values": [0, 1]},
        ),
    )


class TestDESSweepResume:
    def test_killed_des_sweep_resumes_byte_identical(self, tmp_path):
        """Kill a DES sweep mid-flight; the resume completes the grid with
        the exact bytes an uninterrupted run produces."""
        grid = des_grid()
        uninterrupted = run_grid(grid)

        class Killed(RuntimeError):
            pass

        store = SweepStore(tmp_path)

        def die_after_first_chunk(progress):
            if progress.chunk >= 1:
                raise Killed()

        with pytest.raises(Killed):
            run_grid(
                grid, store=store, chunk_size=1,
                on_progress=die_after_first_chunk,
            )
        assert 0 < len(store) < 4  # partial progress persisted

        resumed = run_grid(grid, store=store, chunk_size=1)
        assert resumed.report.cache_hits >= 1
        assert grid_summary_json(resumed) == grid_summary_json(uninterrupted)
        assert [a.to_json() for a in resumed.artifacts] == [
            a.to_json() for a in uninterrupted.artifacts
        ]
