"""Human-readable application descriptions (the Figs. 2-4 views as text)."""

from __future__ import annotations

from repro.apps.spec import AppSpec

__all__ = ["describe_app", "describe_plan"]

_TIER_ORDER = ("frontend", "logic", "queue", "cache", "db")


def describe_app(app: AppSpec) -> str:
    """A tiered service inventory like the paper's architecture figures."""
    lines = [
        f"{app.name}: {app.n_services} services, "
        f"SLO {app.slo * 1000:g} ms, "
        f"reference workload {app.reference_workload:g} rps",
    ]
    if app.description:
        lines.append(app.description)
    visit_rates = app.visit_rates
    for tier in _TIER_ORDER:
        members = [s for s in app.services if s.tier == tier]
        if not members:
            continue
        lines.append(f"\n[{tier}]")
        for svc in members:
            lines.append(
                f"  {svc.name:22s} {svc.language:10s} "
                f"demand {svc.cpu_demand * 1000:6.3f} ms/visit  "
                f"floor {svc.latency_floor * 1000:6.1f} ms  "
                f"visits/req {visit_rates[svc.name]:5.2f}"
            )
    lines.append(f"\nrequest classes ({len(app.request_classes)}):")
    for rc in app.request_classes:
        lines.append(f"  {rc.name:12s} weight {rc.weight:.2f}  "
                     f"{len(rc.stages)} stages")
    return "\n".join(lines)


def describe_plan(app: AppSpec, class_name: str) -> str:
    """One request class's execution plan, stage by stage."""
    for rc in app.request_classes:
        if rc.name == class_name:
            break
    else:
        raise KeyError(
            f"unknown request class {class_name!r}; available: "
            f"{', '.join(c.name for c in app.request_classes)}"
        )
    lines = [f"{app.name}/{rc.name} (weight {rc.weight:.2f}):"]
    for i, stage in enumerate(rc.stages, start=1):
        calls = ", ".join(
            name if visits == 1.0 else f"{name} x{visits:g}"
            for name, visits in stage.parallel
        )
        marker = "->" if len(stage.parallel) == 1 else "=>"
        lines.append(f"  stage {i:2d} {marker} {calls}")
    return "\n".join(lines)
