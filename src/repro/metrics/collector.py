"""Scrape-style collector: environment observations → metrics store.

Metric names follow the sources the paper uses:

* ``latency_p95`` / ``latency_mean`` / ``workload_rps`` — Linkerd service
  mesh telemetry;
* ``cpu_utilization`` / ``cpu_usage_cores`` / ``cpu_throttle_seconds`` —
  Prometheus + cAdvisor container metrics (labelled per service);
* ``cpu_allocation`` — the applied Kubernetes CPU limit per service;
* ``total_cpu`` — aggregate allocation (the paper's objective).
"""

from __future__ import annotations

from repro.metrics.store import MetricsStore
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Writes one interval's observation into a :class:`MetricsStore`."""

    def __init__(self, store: MetricsStore | None = None) -> None:
        self.store = store if store is not None else MetricsStore()

    def collect(
        self,
        t: float,
        allocation: Allocation,
        observation: IntervalMetrics,
    ) -> None:
        """Record everything PEMA (and the baselines) may query later."""
        store = self.store
        store.record("latency_p95", observation.latency_p95, t)
        store.record("latency_mean", observation.latency_mean, t)
        store.record("workload_rps", observation.workload_rps, t)
        store.record("total_cpu", allocation.total(), t)
        for name, svc in observation.services.items():
            store.record("cpu_utilization", svc.utilization, t, service=name)
            store.record("cpu_usage_cores", svc.usage_cores, t, service=name)
            store.record(
                "cpu_throttle_seconds", svc.throttle_seconds, t, service=name
            )
            store.record("cpu_usage_p90_cores", svc.usage_p90_cores, t, service=name)
        for name in allocation:
            store.record("cpu_allocation", allocation[name], t, service=name)
