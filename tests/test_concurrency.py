"""Gamma concurrency model: distribution identities and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.sim.concurrency import (
    ConcurrencyModel,
    gamma_cdf,
    gamma_quantile,
    gamma_sf,
    tail_expectation,
)


class TestGammaPrimitives:
    def test_cdf_sf_complement(self):
        shape, scale = np.array([2.0]), np.array([1.5])
        for x in (0.5, 1.0, 3.0, 10.0):
            total = gamma_cdf(np.array([x]), shape, scale) + gamma_sf(
                np.array([x]), shape, scale
            )
            assert total[0] == pytest.approx(1.0, abs=1e-12)

    def test_matches_scipy(self):
        shape, scale = 0.7, 3.0
        x = np.linspace(0.1, 20, 25)
        ours = gamma_sf(x, np.full_like(x, shape), np.full_like(x, scale))
        ref = stats.gamma.sf(x, shape, scale=scale)
        np.testing.assert_allclose(ours, ref, rtol=1e-10)

    def test_quantile_inverts_cdf(self):
        shape, scale = np.array([1.2]), np.array([2.0])
        for p in (0.1, 0.5, 0.9, 0.97):
            q = gamma_quantile(p, shape, scale)
            assert gamma_cdf(q, shape, scale)[0] == pytest.approx(p, abs=1e-9)

    def test_quantile_level_validation(self):
        with pytest.raises(ValueError):
            gamma_quantile(1.5, np.array([1.0]), np.array([1.0]))

    def test_zero_demand_degenerate(self):
        zero = np.array([0.0])
        one = np.array([1.0])
        assert gamma_sf(one, zero, one)[0] == 0.0
        assert gamma_cdf(one, zero, one)[0] == 1.0
        assert gamma_quantile(0.97, zero, one)[0] == 0.0
        assert tail_expectation(one, zero, zero, one)[0] == 0.0

    def test_tail_expectation_matches_numeric(self):
        shape, scale = 1.5, 2.0
        mean = shape * scale
        x = 4.0
        grid = np.linspace(x, 200, 400_000)
        numeric = np.trapezoid(
            (grid - x) * stats.gamma.pdf(grid, shape, scale=scale), grid
        )
        ours = tail_expectation(
            np.array([x]), np.array([mean]), np.array([shape]), np.array([scale])
        )[0]
        assert ours == pytest.approx(numeric, rel=1e-3)

    @given(
        x=st.floats(min_value=0.0, max_value=50.0),
        mean=st.floats(min_value=0.01, max_value=20.0),
        burst=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_tail_expectation_bounds(self, x, mean, burst):
        shape = np.array([mean / burst])
        scale = np.array([burst])
        e = tail_expectation(
            np.array([x]), np.array([mean]), shape, scale
        )[0]
        assert e >= max(mean - x, 0.0) - 1e-9  # Jensen lower bound
        assert e <= mean + 1e-9  # cannot exceed the mean


class TestConcurrencyModel:
    def model(self) -> ConcurrencyModel:
        return ConcurrencyModel(
            mean=np.array([0.5, 2.0, 0.0]), burstiness=np.array([4.0, 1.5, 2.0])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcurrencyModel(mean=np.array([1.0]), burstiness=np.array([0.0]))
        with pytest.raises(ValueError):
            ConcurrencyModel(mean=np.array([-1.0]), burstiness=np.array([2.0]))
        with pytest.raises(ValueError):
            ConcurrencyModel(mean=np.array([1.0, 2.0]), burstiness=np.array([2.0]))

    def test_bottleneck_is_97th_percentile(self):
        m = self.model()
        b = m.bottleneck(0.97)
        exceed = m.exceed_probability(b)
        assert exceed[0] == pytest.approx(0.03, abs=1e-9)
        assert exceed[1] == pytest.approx(0.03, abs=1e-9)
        assert b[2] == 0.0  # zero-demand service has no bottleneck

    def test_exceed_monotone_in_alloc(self):
        m = self.model()
        lo = m.exceed_probability(np.array([0.5, 1.0, 0.1]))
        hi = m.exceed_probability(np.array([2.0, 4.0, 1.0]))
        assert np.all(hi <= lo + 1e-12)

    def test_overload_monotone_in_alloc(self):
        m = self.model()
        lo = m.overload(np.array([0.5, 1.0, 0.1]))
        hi = m.overload(np.array([2.0, 4.0, 1.0]))
        assert np.all(hi <= lo + 1e-12)
        assert lo[2] == 0.0

    def test_usage_p90_capped_by_alloc(self):
        m = self.model()
        alloc = np.array([0.2, 0.5, 1.0])
        p90 = m.usage_p90(alloc)
        assert np.all(p90 <= alloc + 1e-12)

    @given(
        mean=st.floats(min_value=0.05, max_value=10.0),
        burst=st.floats(min_value=1.0, max_value=8.0),
        p_lo=st.floats(min_value=0.5, max_value=0.9),
        p_hi=st.floats(min_value=0.91, max_value=0.995),
    )
    @settings(max_examples=50, deadline=None)
    def test_bottleneck_monotone_in_quantile(self, mean, burst, p_lo, p_hi):
        m = ConcurrencyModel(mean=np.array([mean]), burstiness=np.array([burst]))
        assert m.bottleneck(p_hi)[0] >= m.bottleneck(p_lo)[0] - 1e-12
        # And the defining identity: SF(bottleneck) == 1 - p.
        b = m.bottleneck(p_hi)
        assert m.exceed_probability(b)[0] == pytest.approx(1 - p_hi, abs=1e-9)
