"""OPTM search, RULE autoscaler, static allocator."""

import numpy as np
import pytest

from repro.baselines import OptimumSearch, RuleBasedAutoscaler, StaticAllocator
from repro.sim import AnalyticalEngine, Allocation, NoiseModel
from tests.conftest import make_metrics


class TestOptimumSearch:
    @pytest.fixture
    def search(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, noise=NoiseModel.none())
        return OptimumSearch(engine, restarts=2, seed=0)

    def test_result_satisfies_slo(self, tiny_app, search):
        result = search.find(100.0)
        assert result.latency <= tiny_app.slo + 1e-12
        assert result.total_cpu > 0

    def test_result_is_local_optimum(self, search):
        """The paper's definition: any single -0.1 CPU step violates."""
        result = search.find(100.0)
        assert search.is_local_optimum(result.allocation, 100.0)

    def test_beats_generous_start(self, tiny_app, search):
        gen = tiny_app.generous_allocation(100.0)
        result = search.find(100.0)
        assert result.total_cpu < gen.total()

    def test_monotone_in_workload(self, search):
        low = search.find(50.0).total_cpu
        high = search.find(300.0).total_cpu
        assert high > low

    def test_violating_start_rejected(self, tiny_app, search):
        starved = tiny_app.uniform_allocation(0.05)
        with pytest.raises(ValueError):
            search.find(300.0, start=starved)

    def test_is_local_optimum_rejects_violating(self, tiny_app, search):
        starved = tiny_app.uniform_allocation(0.05)
        assert not search.is_local_optimum(starved, 300.0)

    def test_is_local_optimum_rejects_slack(self, tiny_app, search):
        gen = tiny_app.generous_allocation(100.0)
        assert not search.is_local_optimum(gen, 100.0)

    def test_deterministic(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, noise=NoiseModel.none())
        a = OptimumSearch(engine, restarts=1, seed=5).find(100.0)
        b = OptimumSearch(engine, restarts=1, seed=5).find(100.0)
        assert a.allocation == b.allocation

    def test_validation(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        with pytest.raises(ValueError):
            OptimumSearch(engine, step=0.0)
        with pytest.raises(ValueError):
            OptimumSearch(engine, restarts=0)
        with pytest.raises(ValueError):
            OptimumSearch(engine, min_cpu=0.0)


class TestRuleBasedAutoscaler:
    def alloc(self):
        return Allocation({s: 2.0 for s in ("front", "logic", "db", "cache")})

    def test_utilization_mode_targets_ratio(self):
        rule = RuleBasedAutoscaler(
            self.alloc(), target_utilization=0.10, overprovision=0.0,
            scale_down_limit=1.0,
        )
        m = make_metrics(0.1, utils={"front": 0.05})  # usage 0.05 cores
        out = rule.decide(m)
        assert out["front"] == pytest.approx(0.05 / 0.10)

    def test_vpa_mode_uses_p90(self):
        rule = RuleBasedAutoscaler(
            self.alloc(), mode="vpa", overprovision=0.15, scale_down_limit=1.0
        )
        m = make_metrics(0.1, utils={"front": 0.5})  # p90 = 0.75 in factory
        out = rule.decide(m)
        assert out["front"] == pytest.approx(0.75 * 1.15)

    def test_scale_down_damped(self):
        rule = RuleBasedAutoscaler(
            self.alloc(), target_utilization=0.5, scale_down_limit=0.15
        )
        m = make_metrics(0.1, utils={s: 0.01 for s in self.alloc()})
        out = rule.decide(m)
        # Desired would be tiny; damping limits the drop to 15% per step.
        assert out["front"] == pytest.approx(2.0 * 0.85)

    def test_scale_up_immediate(self):
        rule = RuleBasedAutoscaler(self.alloc(), target_utilization=0.10,
                                   overprovision=0.0)
        m = make_metrics(0.1, utils={"front": 1.0})  # usage 1.0 cores
        out = rule.decide(m)
        assert out["front"] == pytest.approx(10.0)

    def test_bounds_respected(self):
        rule = RuleBasedAutoscaler(
            self.alloc(), target_utilization=0.01, max_cpu=4.0, min_cpu=0.5,
            scale_down_limit=1.0,
        )
        m = make_metrics(0.1, utils={"front": 1.0, "logic": 0.0})
        out = rule.decide(m)
        assert out["front"] == 4.0
        assert out["logic"] == 0.5

    def test_converges_to_fixed_point(self):
        rule = RuleBasedAutoscaler(self.alloc(), target_utilization=0.10,
                                   overprovision=0.0, scale_down_limit=0.5)
        usage = 0.08
        alloc = rule.allocation
        for _ in range(30):
            m = make_metrics(0.1, utils={s: usage / alloc[s] for s in alloc})
            alloc = rule.decide(m)
        assert alloc["front"] == pytest.approx(usage / 0.10, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuleBasedAutoscaler(self.alloc(), mode="zzz")
        with pytest.raises(ValueError):
            RuleBasedAutoscaler(self.alloc(), target_utilization=0.0)
        with pytest.raises(ValueError):
            RuleBasedAutoscaler(self.alloc(), overprovision=-0.1)
        with pytest.raises(ValueError):
            RuleBasedAutoscaler(self.alloc(), min_cpu=5.0, max_cpu=1.0)


class TestStaticAllocator:
    def test_never_changes(self):
        a = Allocation({"x": 1.0})
        s = StaticAllocator(a)
        m = make_metrics(0.5, services=("x",))
        assert s.decide(m) == a
        assert s.allocation == a
