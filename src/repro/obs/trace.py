"""Structured runtime tracing: nested spans and events, JSONL on disk.

A :class:`Tracer` records *where wall-clock time went*: spans (named,
nested, with monotonic-clock start offsets and durations) and point
events (optionally attached to the enclosing span).  This is the
runtime-profiling side of the telemetry subsystem — timestamps and all —
and therefore deliberately separate from the *deterministic* decision
records in :mod:`repro.obs.decision`: a decision-trace capture channel
must be byte-identical across scalar/batched/streamed executions, while
a tracer record never is (its timestamps differ run to run).

Records serialize as JSONL (one JSON object per line), the format the
``repro trace`` CLI reads back.  Record schema::

    {"type": "span",  "name": ..., "t": <start offset s>, "dur": <s>,
     "depth": <nesting>, "parent": <enclosing span name or None>,
     "data": {...}}
    {"type": "event", "name": ..., "t": <offset s>,
     "parent": <enclosing span name or None>, "data": {...}}

Span records land when the span *closes*, so a JSONL stream is ordered
by completion time; events land immediately.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import monotonic
from typing import Any, Callable, Iterator

__all__ = ["Tracer", "read_jsonl"]


class Tracer:
    """Collects span/event records against one monotonic clock.

    ``clock`` is injectable for tests (defaults to
    :func:`time.monotonic`); offsets are relative to the tracer's
    construction instant, so traces from different processes are each
    self-consistent without any cross-process clock agreement.
    """

    def __init__(self, clock: Callable[[], float] = monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self._stack: list[str] = []
        self.records: list[dict[str, Any]] = []

    def _now(self) -> float:
        return self._clock() - self._t0

    @property
    def current_span(self) -> str | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **data: Any) -> Iterator[None]:
        """Time a nested region; the record lands when the span closes."""
        start = self._now()
        parent = self.current_span
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()
            self.records.append(
                {
                    "type": "span",
                    "name": name,
                    "t": start,
                    "dur": self._now() - start,
                    "depth": len(self._stack),
                    "parent": parent,
                    "data": dict(data),
                }
            )

    def event(self, name: str, **data: Any) -> None:
        """Record a point-in-time event under the current span (if any)."""
        self.records.append(
            {
                "type": "event",
                "name": name,
                "t": self._now(),
                "parent": self.current_span,
                "data": dict(data),
            }
        )

    # -- serialization -----------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a tracer JSONL file back into record dicts.

    Blank lines are skipped; a truncated final line (killed process) is
    dropped rather than raised, matching the sweep store's
    corruption-tolerant loads.
    """
    records: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records
