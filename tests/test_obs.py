"""Tests for repro.obs — the unified telemetry subsystem.

The load-bearing property: the ``decision_trace`` capture channel is
*deterministic* — scalar, batched, and streamed-service executions of
the same (spec, repeat) produce byte-identical (canonical JSON) traces,
and the bytes survive a sweep-store round trip.  Everything else here
covers the metrics instruments, the Prometheus render, the runtime
tracer, and the CLI/HTTP surfaces built on top.
"""

import asyncio
import json
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments import (
    optimum_cache_info,
    optimum_total,
    reset_optimum_cache_info,
)
from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    decision_record,
    default_registry,
    pema_decision_info,
)
from repro.obs.trace import read_jsonl
from repro.service import Orchestrator, service_session
from repro.sweeps import SweepStore, run_sweep_cached
from repro.sweeps.batched import run_units_batched


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def make_spec(**overrides) -> ExperimentSpec:
    data = {
        "name": "obs",
        "app": "sockshop",
        "workload": {
            "kind": "sinusoid",
            "params": {"low": 200.0, "high": 700.0, "period": 4000.0},
        },
        "n_steps": 6,
        "seed": 0,
        "capture": ["decision_trace"],
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_create_series(self):
        c = Counter("c_total", labelnames=("reason",))
        c.inc(reason="des")
        c.inc(3, reason="hook")
        assert c.value(reason="des") == 1.0
        assert c.value(reason="hook") == 3.0
        assert c.value(reason="never") == 0.0

    def test_wrong_labels_rejected(self):
        c = Counter("c_total", labelnames=("reason",))
        with pytest.raises(ValueError):
            c.inc(app="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_negative_inc_rejected(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad")
        with pytest.raises(ValueError):
            Counter("ok", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_and_none_before_set(self):
        g = Gauge("g")
        assert g.value() is None
        g.set(4.0)
        g.inc(-1.5)
        assert g.value() == 2.5

    def test_set_max_is_a_ratchet(self):
        g = Gauge("g")
        g.set_max(3)
        g.set_max(1)
        assert g.value() == 3.0
        g.set_max(7)
        assert g.value() == 7.0

    def test_remove_forgets_one_series(self):
        g = Gauge("g", labelnames=("app",))
        g.set(1.0, app="a")
        g.set(2.0, app="b")
        g.remove(app="a")
        assert g.value(app="a") is None
        assert g.value(app="b") == 2.0


class TestHistogram:
    def test_observe_count_sum(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(105.0)

    def test_bucket_bounds_are_inclusive(self):
        # Prometheus `le` semantics: a value equal to a bound lands in
        # that bound's bucket.
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.to_dict()["buckets"][0] == [1.0, 1]

    def test_quantiles(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        assert h.quantile(0.5) is None
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_saturates_at_last_bound(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_to_dict_cumulative(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 0.6, 1.5, 9.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["buckets"] == [[1.0, 2], [2.0, 3], ["+Inf", 4]]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_registration_is_get_or_create(self):
        r = MetricsRegistry()
        a = r.counter("x_total")
        b = r.counter("x_total")
        assert a is b
        assert "x_total" in r
        assert r.get("x_total") is a

    def test_type_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_reset_keeps_registrations(self):
        r = MetricsRegistry()
        c = r.counter("x_total")
        c.inc(5)
        r.reset()
        assert c.value() == 0.0
        assert "x_total" in r

    def test_collector_runs_on_render(self):
        r = MetricsRegistry()
        r.add_collector(lambda: r.gauge("lazy").set(42.0))
        text = r.render()
        assert "lazy 42" in text
        assert "lazy" in r

    def test_render_prometheus_text(self):
        r = MetricsRegistry()
        r.counter("req_total", help="requests").inc(3)
        r.gauge("depth", labelnames=("app",)).set(2.0, app='a"b')
        h = r.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = r.render()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert 'depth{app="a\\"b"} 2' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 0.55" in text
        assert "lat_count 2" in text
        assert text.endswith("\n")

    def test_unsampled_instruments_still_render_headers(self):
        r = MetricsRegistry()
        r.counter("quiet_total")
        text = r.render()
        assert "# TYPE quiet_total counter" in text
        assert "quiet_total 0" in text


# ---------------------------------------------------------------------------
# Runtime tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_and_events(self):
        clock = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(clock)))
        with tracer.span("outer", grid="g"):
            tracer.event("mark", step=1)
            with tracer.span("inner"):
                pass
        types = [(r["type"], r["name"]) for r in tracer.records]
        # Spans land at close: event first, then inner, then outer.
        assert types == [
            ("event", "mark"), ("span", "inner"), ("span", "outer"),
        ]
        inner = tracer.records[1]
        outer = tracer.records[2]
        assert inner["parent"] == "outer" and inner["depth"] == 1
        assert outer["parent"] is None and outer["depth"] == 0
        assert outer["data"] == {"grid": "g"}
        assert tracer.records[0]["parent"] == "outer"
        # Injected clock: construction=0, starts/closes tick one by one.
        assert outer["t"] == 1.0 and outer["dur"] == 4.0
        assert inner["t"] == 3.0 and inner["dur"] == 1.0
        assert tracer.current_span is None

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("e", k=1)
        path = tracer.write(tmp_path / "t.jsonl")
        records = read_jsonl(path)
        assert records == tracer.records

    def test_read_jsonl_tolerates_truncation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "event", "name": "a"}\n\n{"type": "ev')
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["a"]


# ---------------------------------------------------------------------------
# Decision records and the decision_trace channel
# ---------------------------------------------------------------------------


class TestDecisionRecords:
    def test_decision_record_coerces_to_json_types(self):
        import numpy as np

        rec = decision_record(
            step=np.int64(3),
            workload=np.float64(1.5),
            response=2.0,
            slo=3.0,
            violated=np.bool_(True),
            total_cpu=4.0,
            next_total_cpu=5.0,
            decision=None,
        )
        json.dumps(rec)  # must not raise on numpy leftovers
        assert rec["step"] == 3 and rec["violated"] is True

    def test_pema_decision_info_shape(self):
        info = pema_decision_info(
            action="reduce",
            targets=("a", "b"),
            n_targets=2,
            delta=0.1,
            signal=0.5,
            p_explore=0.1,
            probabilities=[("a", 1.0), ("b", 0.25)],
        )
        assert info["kind"] == "pema"
        assert info["targets"] == ["a", "b"]
        assert info["probabilities"] == [["a", 1.0], ["b", 0.25]]

    def test_capture_off_keeps_payload_key_free(self):
        payload = _run_unit_worker(make_spec(capture=[]).to_dict(), 0)
        assert "decision_trace" not in payload


def streamed_payload(spec: ExperimentSpec, repeat: int = 0) -> dict:
    async def run():
        orch = Orchestrator()
        guardian = orch.register(spec, repeat=repeat)
        await orch.start()
        await orch.drive()
        await orch.shutdown()
        return guardian.result_payload()

    return asyncio.run(run())


class TestDecisionTraceDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        repeat=st.integers(min_value=0, max_value=1),
        workload=st.sampled_from(
            [
                {"kind": "constant", "params": {"rps": 500.0}},
                {
                    "kind": "sinusoid",
                    "params": {
                        "low": 150.0, "high": 650.0, "period": 5000.0,
                    },
                },
            ]
        ),
    )
    def test_scalar_batched_service_byte_identical(
        self, seed, repeat, workload
    ):
        """The property the whole channel is built on: one trace, three
        execution strategies, identical bytes."""
        spec = make_spec(seed=seed, workload=workload, repeats=2)
        scalar = _run_unit_worker(spec.to_dict(), repeat)
        batched = run_units_batched([(spec, repeat)])[0]
        streamed = streamed_payload(spec, repeat)
        assert dumps(batched) == dumps(scalar)
        assert dumps(streamed) == dumps(scalar)
        trace = scalar["decision_trace"]
        assert len(trace) == spec.n_steps
        assert all(r["decision"]["kind"] == "pema" for r in trace)

    def test_trace_survives_store_round_trip(self, tmp_path):
        """Kill-and-resume: a warm re-run serves the cold run's bytes."""
        specs = [make_spec(seed=s) for s in (0, 1)]
        store = SweepStore(tmp_path / "cache")
        cold, cold_report = run_sweep_cached(specs, store=store)
        # Simulate the post-kill restart: a fresh scheduler over the
        # same store must hit the cache for every unit.
        warm, warm_report = run_sweep_cached(specs, store=store)
        assert cold_report.computed == 2 and warm_report.cache_hits == 2
        for before, after in zip(cold, warm):
            assert dumps(before.decision_traces) == dumps(
                after.decision_traces
            )
        # And the cached bytes equal a direct scalar run's trace.
        direct = _run_unit_worker(specs[0].to_dict(), 0)
        assert dumps(warm[0].decision_trace(0)) == dumps(
            direct["decision_trace"]
        )


# ---------------------------------------------------------------------------
# Metrics integration surfaces
# ---------------------------------------------------------------------------


class TestOptimumCacheReset:
    def test_reset_keeps_solutions_zeroes_counters(self):
        optimum_total("sockshop", 400.0)
        optimum_total("sockshop", 400.0)  # second call hits the cache
        info = optimum_cache_info()
        assert info["size"] >= 1
        assert info["hits"] + info["misses"] >= 2
        reset_optimum_cache_info()
        after = optimum_cache_info()
        assert after["hits"] == after["misses"] == after["solved"] == 0
        assert after["size"] == info["size"]  # solutions survive

    def test_collector_mirrors_info_into_gauges(self):
        registry = default_registry()
        registry.render()  # collectors run, gauges get registered
        assert "repro_optimum_cache_size" in registry
        gauge = registry.get("repro_optimum_cache_size")
        assert gauge.value() == float(optimum_cache_info()["size"])


class TestMetricsEndpoint:
    def test_metrics_scrape_is_prometheus_text(self):
        # A unique app name: the guardian instruments label by app_id,
        # and the process-global registry accumulates across tests.
        spec = make_spec(n_steps=4, name="obs-scrape")
        with service_session([spec], http=True) as runtime:
            runtime.drive()
            req = urllib.request.urlopen(
                runtime.url + "/metrics", timeout=10
            )
            with req as response:
                text = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
        assert "version=0.0.4" in content_type
        assert "# TYPE repro_guardian_tick_seconds histogram" in text
        assert 'repro_guardian_tick_seconds_count{app="obs-scrape"} 4' in text
        assert "# TYPE repro_guardian_queue_depth_peak gauge" in text
        assert "# TYPE repro_rescaler_applies_total counter" in text
        # Every registered family renders a TYPE header on the scrape.
        for name in default_registry().names():
            assert f"# TYPE {name} " in text

    def test_guardian_status_reports_tick_latency(self):
        spec = make_spec(n_steps=4)
        with service_session([spec]) as runtime:
            runtime.drive()
            rows = runtime.status()["apps"]
        assert rows[0]["tick_p50_ms"] is not None
        assert rows[0]["tick_p95_ms"] >= 0.0
        assert rows[0]["queue_peak"] >= 1


GRID = {
    "name": "obs-grid",
    "base": {
        "app": "sockshop",
        "workload": {"kind": "constant", "params": {"rps": 400.0}},
        "n_steps": 4,
    },
    "axes": [{"name": "seed", "path": "seed", "values": [0, 1]}],
}


class TestSweepSurfaces:
    def test_metrics_out_and_profile_flags(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(GRID))
        prom = tmp_path / "metrics.prom"
        rc = main([
            "sweep", "--grid", str(grid_path), "--batch",
            "--metrics-out", str(prom), "--profile",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile: plan=" in out
        assert "worker time:" in out
        text = prom.read_text()
        assert "# TYPE repro_sweep_cell_seconds histogram" in text
        assert "# TYPE repro_sweep_chunk_seconds histogram" in text

    def test_report_carries_profile(self):
        specs = [make_spec(capture=[], seed=s) for s in (0, 1)]
        _, report = run_sweep_cached(specs, batch=True)
        phases = report.profile["phases"]
        assert set(phases) >= {
            "plan", "load", "run", "persist", "aggregate",
        }
        assert all(v >= 0.0 for v in phases.values())
        assert report.profile["cell_seconds"]["count"] == 2
        assert report.profile["batched_seconds"] >= 0.0
        assert report.to_dict()["profile"] == report.profile

    def test_progress_reports_fallbacks_as_they_accrue(self):
        scalar_only = make_spec(
            capture=[], engine={"kind": "des"}, n_steps=3
        )
        snapshots = []
        _, report = run_sweep_cached(
            [scalar_only, make_spec(capture=[], n_steps=3)],
            batch=True,
            on_progress=snapshots.append,
        )
        assert report.fallbacks == {"engine:des": 1}
        assert snapshots[-1].fallbacks == {"engine:des": 1}


# ---------------------------------------------------------------------------
# The trace CLI
# ---------------------------------------------------------------------------


class TestTraceCLI:
    @pytest.fixture()
    def payload_file(self, tmp_path):
        spec = make_spec(n_steps=6)
        payload = _run_unit_worker(spec.to_dict(), 0)
        path = tmp_path / "unit.json"
        path.write_text(dumps(payload))
        return path, payload

    def test_pretty_table_from_unit_payload(self, payload_file, capsys):
        path, payload = payload_file
        assert main(["trace", "--in", str(path)]) == 0
        out = capsys.readouterr().out
        assert "step" in out and "action" in out
        # A match-count note, a header, one body row per interval.
        assert len(out.strip().splitlines()) == 2 + len(
            payload["decision_trace"]
        )

    def test_jsonl_round_trips_the_records(self, payload_file, capsys):
        path, payload = payload_file
        assert main(["trace", "--in", str(path), "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(l) for l in lines] == payload["decision_trace"]

    def test_filters(self, payload_file, capsys):
        path, payload = payload_file
        assert main([
            "trace", "--in", str(path), "--steps", "2:4", "--jsonl",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(l)["step"] for l in lines] == [2, 3]

        action = payload["decision_trace"][0]["decision"]["action"]
        assert main([
            "trace", "--in", str(path), "--action", action, "--jsonl",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines  # the first step's action matches itself
        assert all(
            json.loads(l)["decision"]["action"] == action for l in lines
        )

    def test_reads_artifact_and_store(self, tmp_path, capsys):
        spec = make_spec(n_steps=4)
        store = SweepStore(tmp_path / "cache")
        artifacts, _ = run_sweep_cached([spec], store=store)

        art_path = tmp_path / "artifact.json"
        art_path.write_text(dumps(artifacts[0].to_dict()))
        assert main([
            "trace", "--in", str(art_path), "--repeat", "0", "--jsonl",
        ]) == 0
        from_artifact = capsys.readouterr().out

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(dumps(spec.to_dict()))
        assert main([
            "trace", "--store", str(tmp_path / "cache"),
            "--spec", str(spec_path), "--jsonl",
        ]) == 0
        assert capsys.readouterr().out == from_artifact

    def test_errors_are_reported_not_raised(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert main(["trace", "--in", str(empty)]) == 2
        assert "no decision trace" in capsys.readouterr().err

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(dumps(make_spec().to_dict()))
        assert main([
            "trace", "--store", str(tmp_path / "nocache"),
            "--spec", str(spec_path),
        ]) == 2
        assert "no unit entry" in capsys.readouterr().err
