"""Control loop: execution semantics, hooks, summaries."""

import numpy as np
import pytest

from repro.baselines import StaticAllocator
from repro.cluster import Cluster
from repro.core import ControlLoop, PEMAConfig, PEMAController
from repro.metrics import MetricsCollector
from repro.sim import AnalyticalEngine, NoiseModel
from repro.workload import ConstantWorkload, StepWorkload


def make_loop(tiny_app, autoscaler=None, **kw):
    engine = AnalyticalEngine(tiny_app, seed=1, noise=NoiseModel.none())
    scaler = autoscaler or PEMAController(
        tiny_app.service_names,
        tiny_app.slo,
        tiny_app.generous_allocation(100.0),
        PEMAConfig(explore_a=0.0, explore_b=0.0),
        seed=0,
    )
    defaults = dict(interval=120.0)
    defaults.update(kw)
    return ControlLoop(engine, scaler, ConstantWorkload(100.0), **defaults)


class TestExecution:
    def test_run_produces_records(self, tiny_app):
        result = make_loop(tiny_app).run(10)
        assert len(result) == 10
        assert result.steps.tolist() == list(range(10))
        assert np.all(result.workloads == 100.0)
        assert np.all(result.responses > 0)

    def test_first_record_uses_initial_allocation(self, tiny_app):
        static = StaticAllocator(tiny_app.uniform_allocation(1.0))
        result = make_loop(tiny_app, autoscaler=static, slo=tiny_app.slo).run(3)
        assert result.records[0].total_cpu == pytest.approx(4.0)

    def test_interval_spacing(self, tiny_app):
        result = make_loop(tiny_app, interval=60.0).run(3)
        assert result.times.tolist() == [0.0, 60.0, 120.0]

    def test_workload_trace_followed(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, seed=1)
        static = StaticAllocator(tiny_app.generous_allocation(200.0))
        trace = StepWorkload([(0.0, 50.0), (120.0, 150.0)])
        loop = ControlLoop(engine, static, trace, slo=tiny_app.slo)
        result = loop.run(3)
        assert result.workloads.tolist() == [50.0, 150.0, 150.0]

    def test_validation(self, tiny_app):
        with pytest.raises(ValueError):
            make_loop(tiny_app, interval=0.0)
        with pytest.raises(ValueError):
            make_loop(tiny_app).run(0)

    def test_slo_required_without_attribute(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, seed=1)
        static = StaticAllocator(tiny_app.uniform_allocation(1.0))
        with pytest.raises(ValueError):
            ControlLoop(engine, static, ConstantWorkload(100.0))


class TestViolations:
    def test_violations_marked(self, tiny_app):
        # A starved allocation must violate the 100ms SLO.
        starved = tiny_app.uniform_allocation(0.05)
        static = StaticAllocator(starved)
        result = make_loop(tiny_app, autoscaler=static, slo=tiny_app.slo).run(5)
        assert result.violation_count() == 5
        assert result.violation_rate() == 1.0

    def test_dynamic_slo_tracked_live(self, tiny_app):
        loop = make_loop(tiny_app)

        def tighten(step, lp):
            if step == 2:
                lp.autoscaler.set_slo(0.001)  # impossible SLO

        result = loop.run(4, on_step=tighten)
        assert not result.records[0].violated
        assert result.records[2].violated
        assert result.records[2].slo == pytest.approx(0.001)

    def test_best_satisfying_total(self, tiny_app):
        result = make_loop(tiny_app).run(15)
        ok_totals = [r.total_cpu for r in result.records if not r.violated]
        assert result.best_satisfying_total() == pytest.approx(min(ok_totals))

    def test_settled_total_empty_raises(self):
        from repro.core.loop import LoopResult

        with pytest.raises(LookupError):
            LoopResult().final_allocation()


class TestIntegrationPieces:
    def test_collector_populated(self, tiny_app):
        collector = MetricsCollector()
        loop = make_loop(tiny_app, collector=collector)
        loop.run(5)
        assert len(collector.store.series("latency_p95")) == 5
        assert len(collector.store.series("cpu_allocation", service="front")) == 5

    def test_cluster_applied(self, tiny_app):
        cluster = Cluster()
        loop = make_loop(tiny_app, cluster=cluster)
        loop.run(5)
        assert cluster.resize_count == 5
        assert cluster.allocation().total() > 0

    def test_hook_sees_loop(self, tiny_app):
        seen = []
        loop = make_loop(tiny_app)
        loop.run(3, on_step=lambda step, lp: seen.append((step, lp is loop)))
        assert seen == [(0, True), (1, True), (2, True)]
