"""Declarative experiment API: spec round-trip, registries, runner, hooks."""

import json

import pytest

from repro.bench.runner import average_pema_total, pema_spec, rule_spec, rule_total
from repro.experiments import (
    AUTOSCALERS,
    ENGINES,
    HOOKS,
    WORKLOADS,
    AutoscalerSpec,
    EngineSpec,
    ExperimentArtifact,
    ExperimentSpec,
    HookSpec,
    Registry,
    WorkloadSpec,
    derive_rule_spec,
    run_comparison,
    run_experiment,
    run_sweep,
    run_unit,
)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="t", app="sockshop", workload=700.0, n_steps=8, seed=0, repeats=2
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_workload_shorthand(self):
        spec = small_spec()
        assert spec.workload == WorkloadSpec("constant", {"rps": 700.0})

    def test_mapping_coercion(self):
        spec = small_spec(
            workload={"kind": "constant", "params": {"rps": 5.0}},
            autoscaler={"kind": "rule"},
            engine={"kind": "analytical", "seed_offset": 7},
            hooks=[{"kind": "set_slo", "params": {"at": 2, "slo": 0.2}}],
        )
        assert spec.autoscaler == AutoscalerSpec("rule")
        assert spec.engine.seed_offset == 7
        assert spec.hooks == (HookSpec("set_slo", {"at": 2, "slo": 0.2}),)

    def test_json_round_trip(self):
        spec = small_spec(
            slo=0.3,
            hooks=(HookSpec("set_slo", {"at": 3, "slo": 0.2}),),
            autoscaler=AutoscalerSpec("pema", {"alpha": 0.4}),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip_defaults(self):
        spec = ExperimentSpec.from_dict(
            {"app": "sockshop", "workload": 10.0, "n_steps": 5}
        )
        assert spec.repeats == 1
        assert spec.engine == EngineSpec()
        assert spec.to_dict() == ExperimentSpec.from_dict(spec.to_dict()).to_dict()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec fields"):
            ExperimentSpec.from_dict(
                {"app": "sockshop", "workload": 1.0, "n_steps": 5, "nope": 1}
            )

    def test_missing_required_field(self):
        with pytest.raises(ValueError, match="needs 'n_steps'"):
            ExperimentSpec.from_dict({"app": "sockshop", "workload": 1.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(n_steps=0)
        with pytest.raises(ValueError):
            small_spec(repeats=0)
        with pytest.raises(ValueError):
            small_spec(interval=0.0)
        with pytest.raises(KeyError, match="unknown app"):
            small_spec(app="nope").validate()
        with pytest.raises(KeyError, match="unknown engine backend"):
            small_spec(engine=EngineSpec(kind="quantum")).validate()

    def test_with_derives_cells(self):
        base = small_spec()
        cell = base.with_(seed=5, workload=WorkloadSpec.constant(900.0))
        assert cell.seed == 5
        assert base.seed == 0
        assert cell.app == base.app


class TestRegistry:
    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(KeyError, match="constant"):
            WORKLOADS.build("nope")
        for reg in (ENGINES, AUTOSCALERS, HOOKS):
            with pytest.raises(KeyError, match="unknown"):
                reg.get("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", lambda: 2)

    def test_names_sorted_and_contains(self):
        assert WORKLOADS.names() == tuple(sorted(WORKLOADS.names()))
        assert "constant" in WORKLOADS
        assert "des" in ENGINES and "analytical" in ENGINES
        assert {"pema", "rule", "static"} <= set(AUTOSCALERS.names())

    def test_decorator_registration(self):
        reg = Registry("thing")

        @reg.register("x")
        def make_x():
            return 42

        assert reg.build("x") == 42

    def test_workload_builders(self):
        assert WORKLOADS.build("constant", rps=5.0).rate(0.0) == 5.0
        step = WORKLOADS.build("step", steps=[[0.0, 1.0], [10.0, 3.0]])
        assert step.rate(11.0) == 3.0
        noisy = WORKLOADS.build(
            "noisy",
            base={"kind": "constant", "params": {"rps": 100.0}},
            sigma=0.0,
        )
        assert noisy.rate(0.0) == 100.0

    def test_phased_workload_builder(self):
        trace = WORKLOADS.build(
            "phased",
            phases=[
                {"duration": 60.0,
                 "base": {"kind": "constant", "params": {"rps": 5.0}}},
                {"base": {"kind": "ramp",
                          "params": {"start_rps": 10.0, "end_rps": 20.0,
                                     "duration": 100.0}}},
            ],
        )
        assert trace.rate(30.0) == 5.0
        assert trace.rate(60.0) == 10.0  # phase clock restarts
        with pytest.raises(TypeError, match="unknown phased"):
            WORKLOADS.build("phased", phases=[], bogus=1)

    def test_analytical_noise_override(self):
        from repro.apps import build_app

        app = build_app("sockshop")
        engine = ENGINES.build(
            "analytical", app, seed=0,
            noise={"sigma": 0.0, "anomaly_prob": 0.0},
        )
        alloc = app.generous_allocation(700.0)
        metrics = engine.observe(alloc, 700.0)
        # noise factor is exactly 1.0: observed == noiseless
        assert metrics.latency_p95 == engine.noiseless_latency(alloc, 700.0)

    def test_static_bottleneck_params(self):
        from repro.apps import build_app
        from repro.sim import AnalyticalEngine

        app = build_app("sockshop")
        scaler = AUTOSCALERS.build(
            "static", app, app.generous_allocation(400.0), app.slo,
            bottleneck_rps=1000.0, scale=1.15,
        )
        expected = AnalyticalEngine(app).bottleneck_allocation(1000.0)
        assert scaler.allocation == expected.scale(1.15)
        with pytest.raises(TypeError, match="needs 'bottleneck_rps'"):
            AUTOSCALERS.build(
                "static", app, app.generous_allocation(400.0), app.slo,
                scale=1.15,
            )
        with pytest.raises(TypeError, match="unknown static"):
            AUTOSCALERS.build(
                "static", app, app.generous_allocation(400.0), app.slo,
                bogus=1,
            )

    def test_workload_aware_pema_builder(self):
        from repro.apps import build_app
        from repro.core import WorkloadAwarePEMA

        app = build_app("sockshop")
        manager = AUTOSCALERS.build(
            "workload_aware_pema", app, app.generous_allocation(400.0),
            app.slo, seed=51, start_rps=800.0, workload_low=300.0,
            workload_high=800.0, min_range_width=62.5, split_after=8,
            slope_samples=5,
        )
        assert isinstance(manager, WorkloadAwarePEMA)
        assert manager.allocation == app.generous_allocation(800.0)


class TestRunner:
    def test_artifact_shape(self):
        art = run_experiment(small_spec())
        assert len(art.results) == 2
        assert all(len(r) == 8 for r in art.results)
        summary = art.summary()
        assert summary["repeats"] == 2
        assert len(summary["settled_total_per_seed"]) == 2

    def test_same_spec_is_deterministic(self):
        spec = small_spec()
        assert (
            run_experiment(spec).to_json() == run_experiment(spec).to_json()
        )

    def test_parallel_sweep_byte_identical_to_serial(self):
        specs = [small_spec(), small_spec(seed=9, repeats=1)]
        serial = run_sweep(specs, parallel=1)
        fanned = run_sweep(specs, parallel=2)
        assert [a.summary_json() for a in serial] == [
            a.summary_json() for a in fanned
        ]
        assert [a.to_json() for a in serial] == [a.to_json() for a in fanned]

    def test_artifact_json_round_trip(self):
        art = run_experiment(small_spec(repeats=1))
        back = ExperimentArtifact.from_json(art.to_json())
        assert back.to_json() == art.to_json()
        assert back.summary_json() == art.summary_json()

    def test_artifact_write_read(self, tmp_path):
        art = run_experiment(small_spec(repeats=1))
        path = art.write(tmp_path / "artifact.json")
        assert ExperimentArtifact.read(path).to_json() == art.to_json()

    def test_repeats_use_distinct_seeds(self):
        art = run_experiment(small_spec(n_steps=12))
        a, b = art.settled_totals()
        assert a != b

    def test_des_backend(self):
        spec = small_spec(
            n_steps=2,
            repeats=1,
            engine=EngineSpec(
                kind="des",
                params={"sim_seconds": 2.0, "warmup_seconds": 0.5},
            ),
        )
        art = run_experiment(spec)
        assert len(art.results[0]) == 2

    def test_static_autoscaler_holds(self):
        spec = small_spec(
            repeats=1, n_steps=4, autoscaler=AutoscalerSpec("static")
        )
        art = run_experiment(spec)
        totals = art.results[0].total_cpu
        assert totals.min() == totals.max()


class TestHooks:
    def test_dynamic_slo_dispatch(self):
        spec = small_spec(
            repeats=1,
            n_steps=8,
            hooks=(HookSpec("set_slo", {"at": 4, "slo": 0.150}),),
        )
        records = run_experiment(spec).results[0].records
        assert records[3].slo == pytest.approx(0.250)
        assert records[5].slo == pytest.approx(0.150)

    def test_cpu_speed_dispatch(self):
        spec = small_spec(repeats=1, n_steps=6)
        slow = spec.with_(
            hooks=(HookSpec("set_cpu_speed", {"at": 2, "speed": 0.5}),)
        )
        base = run_experiment(spec).results[0]
        slowed = run_experiment(slow).results[0]
        # Halving the clock mid-run must raise observed latency.
        assert slowed.responses[3:].mean() > base.responses[3:].mean()

    def test_extra_on_step_composes_with_hooks(self):
        seen = []
        spec = small_spec(
            repeats=1,
            n_steps=4,
            hooks=(HookSpec("set_slo", {"at": 2, "slo": 0.2}),),
        )
        unit = run_unit(spec, on_step=lambda step, loop: seen.append(step))
        assert seen == [0, 1, 2, 3]
        assert unit.result.records[-1].slo == pytest.approx(0.2)


class TestBenchEquivalence:
    def test_average_pema_total_matches_spec_path(self):
        spec = pema_spec("sockshop", 700.0, 10, seed=3, repeats=2)
        assert average_pema_total(
            "sockshop", 700.0, n_steps=10, runs=2, base_seed=3
        ) == run_experiment(spec).mean_settled_total()

    def test_rule_total_matches_spec_path(self):
        spec = rule_spec("sockshop", 700.0, n_steps=12)
        assert rule_total(
            "sockshop", 700.0, n_steps=12
        ) == run_experiment(spec).mean_settled_total()

    def test_comparison_single_code_path(self):
        spec = pema_spec("sockshop", 700.0, 10, seed=0, repeats=1)
        cell = run_comparison(spec, rule_steps=12)
        assert cell["rule_total"] == rule_total(
            "sockshop", 700.0, n_steps=12
        )
        assert cell["pema_total"] == run_experiment(spec).mean_settled_total()
        assert cell["pema_savings_vs_rule"] == pytest.approx(
            1.0 - cell["pema_total"] / cell["rule_total"]
        )

    def test_derive_rule_spec(self):
        spec = pema_spec("sockshop", 700.0, 10, seed=42)
        rule = derive_rule_spec(spec, n_steps=12)
        assert rule.autoscaler.kind == "rule"
        assert rule.engine.seed_offset == 2000
        assert rule.seed == 0
        assert rule.repeats == 1
        assert rule.workload == spec.workload


class TestCLIExperiment:
    def test_experiment_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(small_spec(repeats=1).to_json())
        out_file = tmp_path / "artifact.json"
        assert main(
            ["experiment", "--spec", str(spec_file), "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "settled_total_mean" in out
        artifact = ExperimentArtifact.read(out_file)
        assert artifact.summary() == json.loads(out_file.read_text())["summary"]

    def test_experiment_cli_matches_python_api(self, tmp_path, capsys):
        from repro.cli import main

        spec = small_spec(repeats=1)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        out_file = tmp_path / "artifact.json"
        assert main(
            ["experiment", "--spec", str(spec_file), "--out", str(out_file)]
        ) == 0
        capsys.readouterr()
        assert (
            ExperimentArtifact.read(out_file).to_json()
            == run_experiment(spec).to_json()
        )

    def test_experiment_bad_spec_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"app": "sockshop", "workload": 1.0, "n_steps": 4,
             "engine": {"kind": "quantum"}}
        ))
        assert main(["experiment", "--spec", str(bad)]) == 2
        assert "unknown engine backend" in capsys.readouterr().err

    def test_experiment_wrongly_typed_spec_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"app": "sockshop", "workload": 1.0, "n_steps": None}
        ))
        assert main(["experiment", "--spec", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_component_missing_kind_names_component(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"app": "sockshop", "workload": {"params": {"rps": 1.0}},
             "n_steps": 4}
        ))
        assert main(["experiment", "--spec", str(bad)]) == 2
        assert "WorkloadSpec needs 'kind'" in capsys.readouterr().err

    def test_experiment_unsatisfiable_slo_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            small_spec(repeats=1, n_steps=3, slo=0.0001).to_json()
        )
        assert main(["experiment", "--spec", str(spec_file)]) == 1
        assert "no SLO-satisfying interval" in capsys.readouterr().err

    def test_experiment_compare_rejects_non_pema_before_running(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            small_spec(repeats=1, autoscaler=AutoscalerSpec("rule")).to_json()
        )
        assert main(
            ["experiment", "--spec", str(spec_file), "--compare"]
        ) == 2
        captured = capsys.readouterr()
        assert "needs a pema spec" in captured.err
        assert "settled_total_mean" not in captured.out  # rejected pre-run
