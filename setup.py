"""Setup shim for environments whose setuptools lacks PEP-517 wheel support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --config-settings editable_mode=compat``
style legacy installs where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
