"""CI gate: the telemetry subsystem must be observable and near-free.

Runs the CI smoke grid through the sweep scheduler twice — once plain,
once with the ``decision_trace`` capture channel on — and enforces the
observability guarantees the PR-level contract depends on:

* **overhead** — tracing + metrics must cost at most ``--max-overhead``
  percent of the plain run's wall-clock (best-of ``--repeats`` timing
  runs per mode, so a scheduler hiccup cannot fail CI);
* **parity** — a traced unit payload minus its ``decision_trace`` key
  must be byte-identical (canonical JSON) to the untraced payload, and
  the trace must hold exactly one record per control interval;
* **completeness** — after a sweep plus a short service drive, every
  metric registered in the process registry must appear in the
  ``GET /metrics`` Prometheus exposition, and a required core set
  (guardian tick latency, queue depth, rescaler actions, store and
  OPTM cache counters, sweep instruments) must exist at all.

Writes a ``BENCH_obs.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/obs_gate.py --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path
from time import perf_counter

from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.obs import default_registry
from repro.service import service_session
from repro.sweeps import SweepGrid, run_sweep_cached

#: Metric families the PR contract promises on ``/metrics`` — each must
#: be registered once the sweep + service paths have both run.
REQUIRED_METRICS = (
    "repro_guardian_tick_seconds",
    "repro_guardian_queue_depth_peak",
    "repro_rescaler_applies_total",
    "repro_rescaler_scale_ups_total",
    "repro_rescaler_scale_downs_total",
    "repro_rescaler_cpu_moved_total",
    "repro_store_hits_total",
    "repro_store_misses_total",
    "repro_store_writes_total",
    "repro_store_corrupt_total",
    "repro_optimum_cache_size",
    "repro_optimum_cache_hits",
    "repro_optimum_cache_misses",
    "repro_sweep_chunk_seconds",
    "repro_sweep_cell_seconds",
    "repro_sweep_batch_group_size",
    "repro_sweep_fallback_total",
)


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def gate_specs(grid_path: str, n_steps: int) -> list[ExperimentSpec]:
    """The smoke grid's cells, stretched to a timeable horizon."""
    grid = SweepGrid.read(grid_path)
    specs = []
    for cell in grid.cells():
        data = cell.spec.to_dict()
        data["n_steps"] = n_steps
        specs.append(ExperimentSpec.from_dict(data))
    return specs


def with_trace(spec: ExperimentSpec) -> ExperimentSpec:
    data = spec.to_dict()
    data["capture"] = sorted({*data.get("capture", []), "decision_trace"})
    return ExperimentSpec.from_dict(data)


def timed_overhead(
    plain, traced, *, batch: bool, repeats: int
) -> tuple[float, float, float]:
    """(plain_s, traced_s, overhead%) from paired, interleaved runs.

    One untimed warmup pass per mode, then ``repeats`` back-to-back
    (plain, traced) pairs.  The overhead estimate is the *minimum paired
    difference*: runs inside a pair are adjacent, so machine drift hits
    both and cancels in the difference, and scheduler/CPU noise is
    strictly additive, so the pair where both runs came out clean gives
    the tightest — most truthful — estimate of the tracing cost.  The
    reported per-mode seconds are each mode's own minimum.
    """
    for specs in (plain, traced):
        run_sweep_cached(specs, batch=batch)
    best = [float("inf"), float("inf")]
    best_diff = float("inf")
    for _ in range(repeats):
        pair = []
        for specs in (plain, traced):
            start = perf_counter()
            run_sweep_cached(specs, batch=batch)
            pair.append(perf_counter() - start)
        best = [min(b, t) for b, t in zip(best, pair)]
        best_diff = min(best_diff, pair[1] - pair[0])
    overhead = best_diff / best[0] * 100.0 if best[0] > 0 else 0.0
    return best[0], best[1], max(0.0, overhead)


def http_get_text(url: str) -> tuple[str, str]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", default="benchmarks/grids/ci_smoke.json")
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--steps", type=int, default=150,
                        help="control intervals per cell for the timing "
                        "runs (the smoke grid's own horizon is too short "
                        "to time)")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="max tracing overhead, percent of the "
                        "plain run")
    parser.add_argument("--repeats", type=int, default=12,
                        help="timed (plain, traced) pairs (each mode's best counts)")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="time the batched scheduler path (default) "
                        "or the scalar one")
    args = parser.parse_args(argv)

    failures: list[str] = []
    plain = gate_specs(args.grid, args.steps)
    traced = [with_trace(spec) for spec in plain]
    units = sum(spec.repeats for spec in plain)

    # -- parity: trace is additive, byte-exactly ------------------------------
    for spec, traced_spec in zip(plain, traced):
        base_payload = _run_unit_worker(spec.to_dict(), 0)
        traced_payload = _run_unit_worker(traced_spec.to_dict(), 0)
        trace = traced_payload.pop("decision_trace", None)
        if trace is None:
            failures.append(f"{spec_label(spec)}: no decision_trace captured")
        elif len(trace) != spec.n_steps:
            failures.append(
                f"{spec_label(spec)}: trace has {len(trace)} records, "
                f"expected {spec.n_steps}"
            )
        if dumps(traced_payload) != dumps(base_payload):
            failures.append(
                f"{spec_label(spec)}: traced payload minus the trace "
                f"differs from the plain payload"
            )

    # -- overhead: tracing + metrics vs plain ---------------------------------
    repeats = max(args.repeats, 1)
    plain_seconds, traced_seconds, overhead_pct = timed_overhead(
        plain, traced, batch=args.batch, repeats=repeats
    )
    if overhead_pct > args.max_overhead:
        failures.append(
            f"tracing overhead {overhead_pct:.2f}% > allowed "
            f"{args.max_overhead:.2f}% ({traced_seconds:.3f}s vs "
            f"{plain_seconds:.3f}s)"
        )

    # -- completeness: everything registered is scraped -----------------------
    registry = default_registry()
    missing_required = [
        name for name in REQUIRED_METRICS if name not in registry
    ]
    # The OPTM gauges are registered lazily by a render-time collector;
    # only flag them if a render still doesn't produce them.
    if missing_required:
        registry.render()
        missing_required = [
            name for name in REQUIRED_METRICS if name not in registry
        ]
    for name in missing_required:
        failures.append(f"required metric {name} is not registered")

    service_spec = ExperimentSpec.from_dict({
        "name": "obs-gate-svc",
        "app": "sockshop",
        "workload": {"kind": "constant", "params": {"rps": 600.0}},
        "n_steps": 15,
        "seed": 5,
    })
    with service_session([service_spec], http=True) as runtime:
        runtime.drive()
        text, content_type = http_get_text(runtime.url + "/metrics")
    if "version=0.0.4" not in content_type:
        failures.append(
            f"/metrics content type {content_type!r} is not the "
            f"Prometheus 0.0.4 text exposition"
        )
    scraped_names = registry.names()
    missing_scraped = [
        name for name in scraped_names if f"# TYPE {name} " not in text
    ]
    for name in missing_scraped:
        failures.append(f"registered metric {name} missing from /metrics")

    bench = {
        "grid": "ci_smoke",
        "units": units,
        "steps_per_cell": args.steps,
        "batch": bool(args.batch),
        "timing_repeats": repeats,
        "plain_seconds": plain_seconds,
        "traced_seconds": traced_seconds,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": args.max_overhead,
        "registered_metrics": len(scraped_names),
        "scraped_metrics": len(scraped_names) - len(missing_scraped),
        "required_missing": missing_required,
        "passed": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"obs gate passed: {overhead_pct:.2f}% tracing overhead, "
          f"{len(scraped_names)} metrics scraped")
    return 0


def spec_label(spec: ExperimentSpec) -> str:
    return spec.name or f"{spec.app}@{spec.workload.params.get('rps', '?')}"


if __name__ == "__main__":
    sys.exit(main())
