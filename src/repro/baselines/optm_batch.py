"""Multi-cell OPTM drivers: lockstep frontier search and the allocator.

:class:`OptimumBatch` advances many (workload, restarts, seed, deep)
cells of one application through their
:meth:`~repro.baselines.optm.OptimumSearch.frontier` generators in
lockstep: each round stacks every active cell's pending candidate batch,
evaluates each cell's slice on its own memoizing
:class:`~repro.sim.latency.CellKernel` (cells differ in workload, so
their Gamma parameters differ), and feeds the latencies back.  Because a
frontier's trajectory is fully determined inside the generator and every
latency comes from the shared noiseless kernel, the results are
bit-identical to running :meth:`OptimumSearch.find` per cell — and to the
scalar reference search.

:class:`OptimumAllocator` packages OPTM as an autoscaler: it pins the
noiseless optimum allocation for the workload it observes, re-solving
only when the observed workload changes.  It routes every solve through
:func:`repro.experiments.runner.optimum_result`, so solves hit the same
in-process LRU cache and persistent ``optimum_store`` as
``optimum_total`` — an "optimum" experiment unit warms exactly the cache
entries the figure benchmarks read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.baselines.optm import OptimumResult, OptimumSearch
from repro.sim.engine import AnalyticalEngine
from repro.sim.types import Allocation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.spec import AppSpec

__all__ = ["OptimumBatch", "OptimumAllocator", "OptimumRequest"]


class OptimumRequest:
    """One cell of a batched optimum search."""

    __slots__ = ("workload", "restarts", "seed", "deep", "start")

    def __init__(
        self,
        workload: float,
        *,
        restarts: int = 3,
        seed: int = 0,
        deep: bool = False,
        start: Allocation | None = None,
    ) -> None:
        self.workload = float(workload)
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.deep = bool(deep)
        self.start = start


class OptimumBatch:
    """Lockstep OPTM search over many cells of one application.

    All cells share the engine's app, latency params, and CPU speed —
    exactly the regime of a sweep's OPTM column, where one app is probed
    at many workloads.
    """

    def __init__(
        self,
        engine: AnalyticalEngine,
        *,
        step: float = 0.1,
        min_cpu: float = 0.05,
    ) -> None:
        self.engine = engine
        self.step = step
        self.min_cpu = min_cpu

    @property
    def app(self) -> "AppSpec":
        return self.engine.app

    def find_many(
        self, requests: Sequence[OptimumRequest]
    ) -> list[OptimumResult]:
        """All cells' optimum results, advanced one frontier round at a time.

        Each round evaluates every active cell's pending candidate batch;
        a cell whose generator finishes drops out.  Identical cells (same
        workload, restarts, seed, deep, start) share one search.
        """
        results: list[OptimumResult | None] = [None] * len(requests)
        # Dedup identical cells: the search is deterministic in its
        # request, so aliases simply copy the first cell's result.
        owners: dict[tuple, int] = {}
        alias: dict[int, int] = {}
        active = []
        for i, req in enumerate(requests):
            key = (
                req.workload,
                req.restarts,
                req.seed,
                req.deep,
                req.start,
            )
            if key in owners:
                alias[i] = owners[key]
                continue
            owners[key] = i
            search = OptimumSearch(
                self.engine,
                step=self.step,
                min_cpu=self.min_cpu,
                restarts=req.restarts,
                seed=req.seed,
                deep=req.deep,
            )
            gen = search.frontier(req.workload, req.start)
            evaluate = search.evaluator(req.workload)
            active.append([i, gen, evaluate, None])
        while active:
            still_active = []
            for entry in active:
                i, gen, evaluate, latencies = entry
                try:
                    rows = (
                        gen.send(latencies)
                        if latencies is not None
                        else next(gen)
                    )
                except StopIteration as stop:
                    results[i] = stop.value
                    continue
                entry[3] = evaluate(rows)
                still_active.append(entry)
            active = still_active
        for i, owner in alias.items():
            results[i] = results[owner]
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]


class OptimumAllocator:
    """OPTM as a pinned autoscaler (the ``"optimum"`` registry kind).

    Holds its starting allocation until the first observation arrives,
    then pins the cached noiseless optimum for the observed workload —
    re-solving only when the workload changes.  Solves go through
    :func:`repro.experiments.runner.optimum_result`: deterministic
    (search seed 0 on a noiseless engine, like ``optimum_total``), LRU-
    cached in process, and persisted to the active ``optimum_store``.
    The controller seed is deliberately unused — the paper's OPTM is a
    property of (app, workload), not of the run.
    """

    def __init__(
        self,
        app: "AppSpec",
        start: Allocation,
        *,
        restarts: int = 2,
    ) -> None:
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1: {restarts}")
        self._app = app
        self.restarts = int(restarts)
        self._allocation = start
        self._workload: float | None = None

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def decide(self, metrics) -> Allocation:
        workload = float(metrics.workload_rps)
        if self._workload is None or workload != self._workload:
            from repro.experiments.runner import optimum_result

            payload = optimum_result(
                self._app.name, workload, restarts=self.restarts
            )
            self._allocation = Allocation(dict(payload["allocation"]))
            self._workload = workload
        return self._allocation
