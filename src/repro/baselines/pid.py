"""PID — classic feedback-control autoscaling baseline.

The control-theoretic family the related work hands us (EWMA/PI
controllers tracking a latency setpoint): the controller measures the
normalized SLO error of each interval and scales the *whole* allocation
multiplicatively — no per-service model, no workload awareness, just
proportional + integral + derivative terms on the error signal.  It is
the natural middle ground between the threshold RULE baseline (no
latency feedback at all) and PEMA (model-guided per-service navigation),
which is exactly the comparison the robustness report draws.

Determinism: the controller is pure float arithmetic on the observed
latency — no RNG — so a batched bank of scalar controllers is trivially
byte-identical to scalar execution.
"""

from __future__ import annotations

from typing import Any

from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["PIDController"]


class PIDController:
    """Scale CPU multiplicatively on the normalized SLO error.

    Per interval, with ``e = (latency_p95 - slo) / slo`` (positive means
    the SLO is violated)::

        integral   <- clamp(integral + e, ±integral_limit)
        derivative <- e - previous_e
        u          <- kp * e + ki * integral + kd * derivative
        factor     <- clamp(1 + u, 1 - max_step, 1 + max_step)
        alloc      <- clamp(alloc * factor, min_cpu, max_cpu)

    The anti-windup clamp on the integral keeps a long violation burst
    from locking the controller at its rail for the rest of the run.
    """

    def __init__(
        self,
        initial_allocation: Allocation,
        slo: float,
        *,
        kp: float = 0.8,
        ki: float = 0.1,
        kd: float = 0.05,
        max_step: float = 0.5,
        integral_limit: float = 10.0,
        min_cpu: float = 0.05,
        max_cpu: float = 32.0,
    ) -> None:
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        if kp < 0 or ki < 0 or kd < 0:
            raise ValueError("gains must be non-negative")
        if not 0 < max_step < 1:
            raise ValueError(f"max_step must be in (0, 1): {max_step}")
        if integral_limit <= 0:
            raise ValueError(f"integral_limit must be positive: {integral_limit}")
        if min_cpu <= 0 or max_cpu <= min_cpu:
            raise ValueError("need 0 < min_cpu < max_cpu")
        self.slo = float(slo)
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.max_step = float(max_step)
        self.integral_limit = float(integral_limit)
        self.min_cpu = float(min_cpu)
        self.max_cpu = float(max_cpu)
        self._allocation = initial_allocation
        self._integral = 0.0
        self._previous_error = 0.0
        self._last: dict[str, Any] | None = None

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def set_slo(self, slo: float) -> None:
        """Change the latency setpoint mid-run (the ``set_slo`` hook)."""
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        self.slo = float(slo)

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        error = (metrics.latency_p95 - self.slo) / self.slo
        integral = self._integral + error
        if integral > self.integral_limit:
            integral = self.integral_limit
        elif integral < -self.integral_limit:
            integral = -self.integral_limit
        derivative = error - self._previous_error
        self._integral = integral
        self._previous_error = error
        control = self.kp * error + self.ki * integral + self.kd * derivative
        factor = 1.0 + control
        if factor > 1.0 + self.max_step:
            factor = 1.0 + self.max_step
        elif factor < 1.0 - self.max_step:
            factor = 1.0 - self.max_step
        new_values: dict[str, float] = {}
        for name in self._allocation:
            new_values[name] = min(
                max(self._allocation[name] * factor, self.min_cpu),
                self.max_cpu,
            )
        self._allocation = Allocation(new_values)
        self._last = {
            "kind": "pid",
            "error": float(error),
            "integral": float(integral),
            "derivative": float(derivative),
            "factor": float(factor),
        }
        return self._allocation

    def last_decision(self) -> dict[str, Any] | None:
        """The causal record of the latest step (``decision_trace``)."""
        return self._last

    def state_snapshot(self) -> dict[str, Any]:
        """Controller state for the ``manager_state`` capture channel."""
        return {
            "kind": "pid",
            "integral": float(self._integral),
            "previous_error": float(self._previous_error),
            "slo": float(self.slo),
        }
