"""Parallel experiment execution.

The evaluation repeats many independent, seeded runs (Fig. 15 averages,
the α/β sweeps, ablation seeds).  These are embarrassingly parallel and
CPU-bound, so they fan out over processes; results come back in submission
order for determinism.

Worker payloads are (module-level function, kwargs) pairs so they pickle
cleanly; pass ``max_workers=1`` to run inline (useful under debuggers and
coverage).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["run_parallel", "parallel_pema_totals", "default_workers"]


def default_workers() -> int:
    """A conservative worker count: physical-ish cores, at least 1."""
    cpus = os.cpu_count() or 1
    return max(1, min(cpus - 1, 8))


def run_parallel(
    fn: Callable[..., Any],
    kwargs_list: Sequence[dict],
    *,
    max_workers: int | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> list[Any]:
    """Run ``fn(**kwargs)`` for every kwargs dict, possibly in parallel.

    ``fn`` must be picklable (module-level).  Results are returned in the
    order of ``kwargs_list``.  Exceptions propagate to the caller.

    Callers that fan out many small batches (the chunked sweep scheduler)
    pass their own long-lived ``pool`` so worker processes are spawned
    once, not once per batch; ``max_workers`` is ignored in that case.
    """
    if not kwargs_list:
        return []
    if pool is not None:
        futures = [pool.submit(fn, **kw) for kw in kwargs_list]
        return [f.result() for f in futures]
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError("max_workers must be >= 1")
    if workers == 1 or len(kwargs_list) == 1:
        return [fn(**kw) for kw in kwargs_list]
    with ProcessPoolExecutor(max_workers=min(workers, len(kwargs_list))) as pool:
        futures = [pool.submit(fn, **kw) for kw in kwargs_list]
        return [f.result() for f in futures]


def _settled_total(app_name: str, workload: float, n_steps: int, seed: int,
                   alpha: float, beta: float) -> float:
    # Module-level worker so it pickles under the spawn start method.
    from repro.bench.runner import pema_run
    from repro.core import PEMAConfig

    run = pema_run(
        app_name,
        workload,
        n_steps,
        config=PEMAConfig(alpha=alpha, beta=beta),
        seed=seed,
    )
    return run.result.settled_total()


def parallel_pema_totals(
    app_name: str,
    workload: float,
    *,
    n_steps: int = 60,
    runs: int = 4,
    base_seed: int = 0,
    alpha: float = 0.5,
    beta: float = 0.3,
    max_workers: int | None = None,
) -> np.ndarray:
    """Settled PEMA totals across seeds, fanned out over processes."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    kwargs_list = [
        dict(
            app_name=app_name,
            workload=workload,
            n_steps=n_steps,
            seed=base_seed + i,
            alpha=alpha,
            beta=beta,
        )
        for i in range(runs)
    ]
    totals = run_parallel(_settled_total, kwargs_list, max_workers=max_workers)
    return np.asarray(totals, dtype=np.float64)
