"""CI gate: distributed lease/claim workers over one shared SweepStore.

Enforces the three properties the distributed layer promises:

* **scaling** — two cold worker processes must finish the smoke grid at
  least ``--min-speedup`` times faster than one cold worker (best-of
  ``--repeats`` per fleet size, fresh store each run, workers forked
  from a parent that never computed a unit so both arms start equally
  cold); on a single-CPU host, where parallel speedup is physically
  impossible, the requirement degrades to ``--single-cpu-floor`` (no
  pathological slowdown from claim/lease overhead);
* **byte parity** — the merged aggregate summary and every cache entry
  must be byte-identical across one worker, two workers, and a plain
  serial ``run_grid``;
* **healing** — a worker SIGKILLed while holding a live lease on an
  uncomputed unit must not lose the sweep: a second worker reclaims the
  stale lease, completes the grid, and the merged bytes still match the
  serial run.

Writes a ``BENCH_dist.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/dist_gate.py \
        --grid benchmarks/grids/ci_dist_smoke.json --out BENCH_dist.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.spec import ExperimentSpec
from repro.sweeps import (
    SweepGrid,
    SweepStore,
    grid_summary_json,
    merge_grid,
    missing_units,
    plan_tasks,
    run_distributed,
    run_grid,
    run_worker,
)

#: Task granularity for every fleet in this gate: fine enough that two
#: workers balance 16 units, coarse enough to keep claim traffic low.
CHUNK_SIZE = 2


def _store_bytes(store: SweepStore) -> dict[str, bytes]:
    return {
        path.relative_to(store.root).as_posix(): path.read_bytes()
        for path in store.entry_paths()
    }


def _victim_entry(specs_data, store_root, flag_path, kwargs):
    """Worker that freezes after its second claim, awaiting SIGKILL."""
    specs = [ExperimentSpec.from_dict(data) for data in specs_data]
    claims = 0

    def on_task(stage, task):
        nonlocal claims
        if stage == "claimed":
            claims += 1
            if claims == 2:
                Path(flag_path).touch()
                time.sleep(300.0)

    run_worker(specs, SweepStore(store_root), on_task=on_task, **kwargs)


def _timed_fleet(grid, cache_root, workers, repeats):
    """Best-of-``repeats`` cold distributed runs with ``workers`` procs."""
    best = None
    summary = None
    payload_bytes = None
    for attempt in range(repeats):
        store = SweepStore(cache_root / f"w{workers}-{attempt}")
        started = time.time()
        run, reports = run_distributed(
            grid, store, workers=workers, chunk_size=CHUNK_SIZE
        )
        seconds = time.time() - started
        exit_codes = [
            rep for rep in reports if "worker_exit_codes" in rep
        ]
        if exit_codes:
            raise RuntimeError(
                f"{workers}-worker fleet had failed workers: {exit_codes}"
            )
        if best is None or seconds < best["seconds"]:
            units = run.report.units
            best = {
                "workers": workers,
                "seconds": seconds,
                "cells_per_sec": units / seconds if seconds > 0 else 0.0,
                "tasks_done": [
                    {rep["worker"]: rep["tasks_done"]}
                    for rep in reports
                    if "worker" in rep
                ],
            }
            summary = grid_summary_json(run)
            payload_bytes = _store_bytes(store)
    return best, summary, payload_bytes


def _chaos_kill_and_heal(grid, cache_root):
    """SIGKILL a worker mid-chunk; a second worker must heal the sweep."""
    specs = [cell.spec for cell in grid.cells()]
    store = SweepStore(cache_root / "chaos")
    flag = cache_root / "victim-blocked"
    ctx = multiprocessing.get_context()
    victim = ctx.Process(
        target=_victim_entry,
        args=(
            [spec.to_dict() for spec in specs],
            str(store.root),
            str(flag),
            dict(worker_id="victim", lease_ttl=1.0, chunk_size=CHUNK_SIZE),
        ),
    )
    victim.start()
    try:
        deadline = time.time() + 120.0
        while not flag.exists():
            if time.time() > deadline:
                raise RuntimeError("victim never reached its second claim")
            if not victim.is_alive():
                raise RuntimeError("victim exited before being killed")
            time.sleep(0.005)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
    finally:
        if victim.is_alive():
            victim.kill()
            victim.join()
    killed_with_lease = bool(
        list((store.queue_root(plan_tasks(specs, CHUNK_SIZE).plan_id)
              / "leases").glob("*.json"))
    )
    units_missing_after_kill = len(missing_units(specs, store))
    healer = run_worker(
        specs, store, worker_id="healer", lease_ttl=0.2,
        chunk_size=CHUNK_SIZE, poll_interval=0.01,
    )
    run = merge_grid(grid, store)
    return {
        "victim_exitcode": victim.exitcode,
        "killed_with_lease": killed_with_lease,
        "units_missing_after_kill": units_missing_after_kill,
        "healer_tasks_stolen": healer.tasks_stolen,
        "healer_tasks_claimed": healer.tasks_claimed,
        "units_missing_after_heal": len(missing_units(specs, store)),
    }, grid_summary_json(run), _store_bytes(store)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid",
                        default="benchmarks/grids/ci_dist_smoke.json")
    parser.add_argument("--out", default="BENCH_dist.json")
    parser.add_argument("--cache-root", default=None,
                        help="directory for the per-run stores "
                        "(default: a fresh temporary directory)")
    parser.add_argument("--min-speedup", type=float, default=1.8)
    parser.add_argument("--single-cpu-floor", type=float, default=0.7,
                        help="speedup floor applied instead of "
                        "--min-speedup when only one CPU is available")
    parser.add_argument("--repeats", type=int, default=2,
                        help="cold runs per fleet size (best one counts)")
    args = parser.parse_args(argv)

    grid = SweepGrid.read(args.grid)
    units = sum(cell.spec.repeats for cell in grid.cells())
    tmp_cache = None
    if args.cache_root:
        cache_root = Path(args.cache_root)
    else:
        tmp_cache = tempfile.TemporaryDirectory(prefix="dist-gate-")
        cache_root = Path(tmp_cache.name)

    failures: list[str] = []
    repeats = max(args.repeats, 1)

    # Timing first: the parent has computed no units yet, so the forked
    # workers of both arms start with identical (cold) process state.
    one, one_summary, one_bytes = _timed_fleet(grid, cache_root, 1, repeats)
    two, two_summary, two_bytes = _timed_fleet(grid, cache_root, 2, repeats)
    speedup = (
        one["seconds"] / two["seconds"] if two["seconds"] > 0 else float("inf")
    )
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    required = args.min_speedup if cpus >= 2 else args.single_cpu_floor
    if speedup < required:
        failures.append(
            f"2-worker speedup {speedup:.2f}x < required "
            f"{required:.2f}x on {cpus} CPU(s) ({one['seconds']:.2f}s vs "
            f"{two['seconds']:.2f}s)"
        )

    # Parity: one worker == two workers == plain serial execution.
    serial_store = SweepStore(cache_root / "serial")
    serial = run_grid(grid, store=serial_store)
    serial_summary = grid_summary_json(serial)
    serial_bytes = _store_bytes(serial_store)
    if one_summary != serial_summary:
        failures.append("1-worker aggregate differs from serial aggregate")
    if two_summary != serial_summary:
        failures.append("2-worker aggregate differs from serial aggregate")
    if one_bytes != serial_bytes:
        failures.append("1-worker cache entries differ from serial entries")
    if two_bytes != serial_bytes:
        failures.append("2-worker cache entries differ from serial entries")

    # Chaos: SIGKILL mid-chunk, heal, and match the serial bytes anyway.
    chaos, chaos_summary, chaos_bytes = _chaos_kill_and_heal(grid, cache_root)
    if chaos["victim_exitcode"] != -signal.SIGKILL:
        failures.append(
            f"victim exitcode {chaos['victim_exitcode']} != -SIGKILL"
        )
    if not chaos["killed_with_lease"]:
        failures.append("victim died without leaving a lease to reclaim")
    if chaos["units_missing_after_kill"] == 0:
        failures.append("kill landed after every unit was computed")
    if chaos["healer_tasks_stolen"] < 1:
        failures.append("healer never reclaimed the victim's stale lease")
    if chaos["units_missing_after_heal"] != 0:
        failures.append(
            f"{chaos['units_missing_after_heal']} unit(s) lost after healing"
        )
    if chaos_summary != serial_summary:
        failures.append("healed aggregate differs from serial aggregate")
    if chaos_bytes != serial_bytes:
        failures.append("healed cache entries differ from serial entries")

    bench = {
        "grid": grid.name,
        "units": units,
        "chunk_size": CHUNK_SIZE,
        "one_worker": one,
        "two_workers": two,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "required_speedup": required,
        "cpus": cpus,
        "timing_repeats": repeats,
        "serial_seconds": serial.report.seconds,
        "chaos": chaos,
        "passed": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )
    print(json.dumps(bench, indent=2, sort_keys=True))
    if tmp_cache is not None:
        tmp_cache.cleanup()
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"dist gate passed: 2 workers {speedup:.2f}x one worker "
          f"({two['seconds']:.2f}s vs {one['seconds']:.2f}s), "
          f"SIGKILL healed with "
          f"{chaos['healer_tasks_stolen']} steal(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
