"""Dynamic workload ranges — §3.4 and Fig. 10(b) of the paper.

Workload is partitioned into ranges, each owned by one PEMA process
(controller).  Learning starts with one wide range and *splits* ranges in
half once their controller has had enough iterations:

* the parent's controller stays attached to the **upper** child (a
  resource allocation that satisfies the SLO at high workload also
  satisfies it below);
* the **lower** child gets a fork of the parent's controller (allocation,
  thresholds and RHDb are inherited), so it starts from an already good
  allocation and converges in a few iterations.

Splitting stops at ``min_width`` (e.g. 25 rps for TrainTicket, §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import PEMAController

__all__ = ["WorkloadRange", "SplitEvent", "RangeTree"]


@dataclass
class WorkloadRange:
    """A leaf workload range and its attached PEMA process."""

    low: float
    high: float
    controller: PEMAController
    pema_id: int
    iterations: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.low < self.high:
            raise ValueError(f"invalid range [{self.low}, {self.high})")

    def contains(self, rps: float) -> bool:
        return self.low <= rps < self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def label(self) -> str:
        return f"{self.low:g}~{self.high:g}"


@dataclass(frozen=True)
class SplitEvent:
    """A recorded range split (for the Fig. 13 style reporting)."""

    step: int
    parent: tuple[float, float]
    lower: tuple[float, float]
    upper: tuple[float, float]
    lower_pema_id: int
    upper_pema_id: int


@dataclass
class RangeTree:
    """The set of leaf ranges plus the split policy."""

    min_width: float
    split_after: int
    leaves: list[WorkloadRange] = field(default_factory=list)
    splits: list[SplitEvent] = field(default_factory=list)
    _next_id: int = 1
    _steps_seen: int = 0

    def __post_init__(self) -> None:
        if self.min_width <= 0:
            raise ValueError("min_width must be positive")
        if self.split_after < 1:
            raise ValueError("split_after must be >= 1")

    @classmethod
    def initial(
        cls,
        low: float,
        high: float,
        controller: PEMAController,
        *,
        min_width: float,
        split_after: int = 15,
    ) -> "RangeTree":
        """One wide root range owned by PEMA process #1."""
        tree = cls(min_width=min_width, split_after=split_after)
        tree.leaves.append(
            WorkloadRange(low=low, high=high, controller=controller, pema_id=1)
        )
        tree._next_id = 2
        return tree

    def find(self, rps: float) -> WorkloadRange:
        """The leaf covering ``rps`` (clamped to the outermost ranges)."""
        if not self.leaves:
            raise LookupError("empty range tree")
        ordered = sorted(self.leaves, key=lambda r: r.low)
        if rps < ordered[0].low:
            return ordered[0]
        for leaf in ordered:
            if leaf.contains(rps):
                return leaf
        return ordered[-1]

    def note_step(
        self, leaf: WorkloadRange, rng: np.random.Generator
    ) -> SplitEvent | None:
        """Count a controller step in ``leaf``; split when due.

        Returns the split event if a split happened, else None.
        """
        if leaf not in self.leaves:
            raise ValueError("leaf does not belong to this tree")
        self._steps_seen += 1
        leaf.iterations += 1
        if leaf.iterations < self.split_after or leaf.width <= self.min_width + 1e-9:
            return None
        return self._split(leaf, rng)

    def _split(
        self, leaf: WorkloadRange, rng: np.random.Generator
    ) -> SplitEvent:
        mid = 0.5 * (leaf.low + leaf.high)
        child_seed = int(rng.integers(2**31 - 1))
        lower = WorkloadRange(
            low=leaf.low,
            high=mid,
            controller=leaf.controller.fork(seed=child_seed),
            pema_id=self._next_id,
        )
        self._next_id += 1
        upper = WorkloadRange(
            low=mid,
            high=leaf.high,
            controller=leaf.controller,  # parent keeps the upper child
            pema_id=leaf.pema_id,
        )
        self.leaves.remove(leaf)
        self.leaves.extend((lower, upper))
        event = SplitEvent(
            step=self._steps_seen,
            parent=(leaf.low, leaf.high),
            lower=(lower.low, lower.high),
            upper=(upper.low, upper.high),
            lower_pema_id=lower.pema_id,
            upper_pema_id=upper.pema_id,
        )
        self.splits.append(event)
        return event

    def n_processes(self) -> int:
        """Number of distinct PEMA processes across the leaves."""
        return len({leaf.pema_id for leaf in self.leaves})
