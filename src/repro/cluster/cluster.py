"""Cluster state: nodes + deployed pods + vertical resize path.

This is the actuation surface of the control loop — the equivalent of
``kubectl patch`` updating CPU limits.  It validates aggregate and per-node
capacity, reschedules when a resize over-commits a node, and models the
CPU-frequency knob used in the paper's Fig. 19 adaptability experiment.
"""

from __future__ import annotations

from repro.apps.spec import AppSpec
from repro.cluster.errors import CapacityError
from repro.cluster.node import Node, paper_testbed_nodes
from repro.cluster.pod import Pod
from repro.cluster.scheduler import Scheduler
from repro.sim.types import Allocation

__all__ = ["Cluster"]

NOMINAL_FREQUENCY_GHZ = 1.8
"""The paper's baseline clock speed (Fig. 19 switches 1.8 -> 1.6 -> 2.0)."""


class Cluster:
    """A small Kubernetes-like cluster hosting one application."""

    def __init__(
        self,
        nodes: list[Node] | None = None,
        frequency_ghz: float = NOMINAL_FREQUENCY_GHZ,
    ) -> None:
        self.nodes = nodes if nodes is not None else paper_testbed_nodes()
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        self.scheduler = Scheduler()
        self.pods: dict[str, Pod] = {}
        self._app: AppSpec | None = None
        self._frequency_ghz = 0.0
        self.set_frequency(frequency_ghz)
        self.resize_count = 0
        self.moves_count = 0

    # -- capacity ---------------------------------------------------------------
    @property
    def cpu_capacity(self) -> float:
        return sum(n.cpu_capacity for n in self.nodes)

    @property
    def cpu_allocated(self) -> float:
        return sum(p.cpu_request for p in self.pods.values())

    # -- frequency knob -----------------------------------------------------------
    @property
    def frequency_ghz(self) -> float:
        return self._frequency_ghz

    def set_frequency(self, frequency_ghz: float) -> None:
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        self._frequency_ghz = float(frequency_ghz)

    @property
    def speed_factor(self) -> float:
        """Relative speed vs. the nominal 1.8 GHz (engine's cpu_speed)."""
        return self._frequency_ghz / NOMINAL_FREQUENCY_GHZ

    # -- deployment ---------------------------------------------------------------
    def deploy(self, app: AppSpec, allocation: Allocation) -> None:
        """Create and schedule one pod per microservice."""
        if self.pods:
            raise RuntimeError("an application is already deployed")
        self._check_aggregate(allocation)
        self._app = app
        self.pods = {
            name: Pod(
                service=name,
                cpu_request=allocation[name],
                memory_mb=app.service(name).memory_mb,
            )
            for name in app.service_names
        }
        self.scheduler.schedule(list(self.pods.values()), self.nodes)

    def apply(self, allocation: Allocation) -> None:
        """Vertically resize every pod to the new allocation.

        Shrinks are always in place; grows may trigger rescheduling when a
        node becomes over-committed.
        """
        if not self.pods:
            raise RuntimeError("no application deployed")
        unknown = set(allocation) - set(self.pods)
        if unknown:
            raise KeyError(f"allocation names unknown services: {sorted(unknown)}")
        self._check_aggregate(allocation)
        for name, pod in self.pods.items():
            pod.cpu_request = allocation[name]
        self.moves_count += self.scheduler.reschedule_if_needed(
            list(self.pods.values()), self.nodes
        )
        self.resize_count += 1

    def allocation(self) -> Allocation:
        """The currently applied allocation."""
        if not self.pods:
            raise RuntimeError("no application deployed")
        return Allocation({name: pod.cpu_request for name, pod in self.pods.items()})

    def node_utilizations(self) -> dict[str, float]:
        return {n.name: n.utilization() for n in self.nodes}

    def _check_aggregate(self, allocation: Allocation) -> None:
        if allocation.total() > self.cpu_capacity + 1e-9:
            raise CapacityError(
                f"allocation total {allocation.total():.1f} exceeds cluster "
                f"capacity {self.cpu_capacity:.1f}"
            )
