"""Fig. 6 — SockShop per-service allocation and utilization, good vs bad.

Paper: total CPU of 7.5 distributed two ways over SockShop's services
(236 ms vs 411 ms latency); utilization alone shows no obvious root
cause — the bad configuration's utilizations stay *below* the frontend's,
so no utilization-threshold policy can pick the culprit (§2.3).
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.baselines import OptimumSearch
from repro.bench import format_table
from repro.sim import AnalyticalEngine, Allocation

WORKLOAD = 550.0


def run_fig06():
    app = build_app("sockshop")
    engine = AnalyticalEngine(app)
    good = (
        OptimumSearch(engine, restarts=1, seed=0)
        .find(WORKLOAD)
        .allocation.scale(1.06)
    )
    # A "bad" same-total configuration: randomly shift CPU between
    # services (paper §2.3), drawn so the latency increase lands near the
    # paper's 236 ms -> 411 ms (+74%).
    rng = np.random.default_rng(11)
    best_bad = None
    for _ in range(40):
        values = good.as_array()
        perturbed = values * np.exp(rng.normal(0.0, 0.45, size=values.size))
        perturbed = np.maximum(perturbed, 0.05)
        perturbed *= values.sum() / perturbed.sum()
        cand = Allocation.from_array(good.names, perturbed)
        lat = engine.noiseless_latency(cand, WORKLOAD)
        target = engine.noiseless_latency(good, WORKLOAD) * 1.74
        if best_bad is None or abs(lat - target) < best_bad[0]:
            best_bad = (abs(lat - target), cand)
    bad = best_bad[1]

    lat_good = engine.noiseless_latency(good, WORKLOAD)
    lat_bad = engine.noiseless_latency(bad, WORKLOAD)
    m_good = engine.observe(good, WORKLOAD)
    m_bad = engine.observe(bad, WORKLOAD)

    rows = []
    for name in app.service_names:
        rows.append(
            [
                name,
                round(good[name], 2),
                round(bad[name], 2),
                round(m_good.services[name].utilization * 100, 1),
                round(m_bad.services[name].utilization * 100, 1),
            ]
        )
    return rows, lat_good, lat_bad, good.total()


def test_fig06_sockshop_profile(benchmark):
    rows, lat_good, lat_bad, total = benchmark.pedantic(
        run_fig06, rounds=1, iterations=1
    )
    emit(
        "fig06_sockshop_profile",
        format_table(
            ["service", "good_cpu", "bad_cpu", "good_util_%", "bad_util_%"],
            rows,
            title=(
                f"Fig. 6 — SockShop @ {WORKLOAD:.0f} rps, total CPU "
                f"{total:.2f} (same for both): good latency "
                f"{lat_good * 1000:.0f} ms vs bad {lat_bad * 1000:.0f} ms "
                "(paper: 236 ms vs 411 ms at 7.5 CPU)"
            ),
        ),
    )
    assert lat_bad > lat_good * 1.3  # the bad config hurts substantially
    # §2.3's point: no bad-config service screams "bottleneck" via util --
    # utilizations remain moderate (no service pegged at ~100%).
    bad_utils = [row[4] for row in rows]
    assert max(bad_utils) < 95.0
