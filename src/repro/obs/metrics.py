"""Process-wide metrics: counters, gauges, histograms, Prometheus text.

A :class:`MetricsRegistry` holds named instruments; each instrument owns
label-keyed series (``counter.inc(app="sockshop")`` creates the
``{app="sockshop"}`` series on first touch).  Registration is
get-or-create — re-registering the same name with the same instrument
type returns the existing object, so modules can declare their
instruments at import time without caring who imported first.

Histograms use *fixed* bucket bounds chosen at registration (never
adapted to the data), so two runs of the same workload produce the same
bucket layout — a determinism requirement for diffable reports.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (version 0.0.4): ``# HELP``/``# TYPE`` headers for every
registered instrument (present even before the first sample, so a
scrape always shows the full instrument surface), one line per series
for counters and gauges, and cumulative ``_bucket``/``_sum``/``_count``
lines for histograms.

Everything is stdlib-only and thread-safe (one lock per registry; the
hot ``inc``/``observe`` paths take it briefly).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
]

#: Default histogram bounds for wall-clock durations in seconds — the
#: classic Prometheus latency ladder, wide enough for both sub-ms
#: guardian ticks and multi-second sweep chunks.
DEFAULT_TIME_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """A Prometheus sample value: integral floats render without ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: name validation, label-keyed series, a lock."""

    type_name = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple((k, str(labels[k])) for k in self.labelnames)

    def series_labels(self) -> list[tuple[tuple[str, str], ...]]:
        with self._lock:
            return list(self._series)

    def clear(self) -> None:
        """Drop every series (registration survives; values reset)."""
        with self._lock:
            self._series.clear()

    def remove(self, **labels: Any) -> None:
        """Forget one label combination's series, if present."""
        with self._lock:
            self._series.pop(self._key(labels), None)

    def render_lines(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.type_name}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value (per label combination)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def render_lines(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._series.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_label_str(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A value that can go anywhere (queue depths, cache sizes)."""

    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Ratchet: keep the maximum ever set (high-water marks)."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            current = self._series.get(key)
            if current is None or value > current:
                self._series[key] = value

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float | None:
        """The current value, or None when the series was never set."""
        with self._lock:
            value = self._series.get(self._key(labels))
        return None if value is None else float(value)

    def render_lines(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._series.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_label_str(key)} {_format_value(value)}"
            )
        return lines


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution of observed values.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"buckets must be non-empty and strictly increasing: {buckets}"
            )
        self.buckets = bounds

    def _get(self, key: tuple[tuple[str, str], ...]) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.buckets) + 1
            )
        return series

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._get(key)
            series.counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return 0 if series is None else series.count

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return 0.0 if series is None else series.total

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Bucket-interpolated quantile estimate (None with no samples).

        Linear interpolation inside the target bucket, taking 0 as the
        lower edge of the first bucket; values in the ``+Inf`` bucket
        report the last finite bound (the estimate saturates there).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None or series.count == 0:
                return None
            counts = list(series.counts)
            count = series.count
        rank = q * count
        seen = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                low = 0.0 if index == 0 else self.buckets[index - 1]
                high = self.buckets[index]
                fraction = (rank - seen) / bucket_count
                return low + (high - low) * min(max(fraction, 0.0), 1.0)
            seen += bucket_count
        return self.buckets[-1]

    def to_dict(self, **labels: Any) -> dict[str, Any]:
        """One series as JSON-ready data (cumulative bucket counts)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            counts = [] if series is None else list(series.counts)
            total = 0.0 if series is None else series.total
            count = 0 if series is None else series.count
        cumulative: list[list[Any]] = []
        running = 0
        for index, bound in enumerate(self.buckets):
            running += counts[index] if counts else 0
            cumulative.append([bound, running])
        cumulative.append(["+Inf", count])
        return {
            "count": count,
            "sum": total,
            "buckets": cumulative,
            "p50": self.quantile(0.5, **labels),
            "p95": self.quantile(0.95, **labels),
        }

    def render_lines(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, list(s.counts), s.total, s.count)
                for key, s in self._series.items()
            )
        if not items and not self.labelnames:
            items = [((), [0] * (len(self.buckets) + 1), 0.0, 0)]
        for key, counts, total, count in items:
            running = 0
            for index, bound in enumerate(self.buckets):
                running += counts[index]
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_label_str(key + le)} {running}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_label_str(key + (('le', '+Inf'),))} {count}"
            )
            lines.append(
                f"{self.name}_sum{_label_str(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_label_str(key)} {count}")
        return lines


class MetricsRegistry:
    """Named instruments plus render-time collectors.

    Collectors (:meth:`add_collector`) run at the start of every
    :meth:`render` — the bridge for state that lives elsewhere (the
    OPTM cache counters, store stats) and is mirrored into gauges only
    when someone actually scrapes.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], None]] = []
        self._lock = threading.Lock()

    def _register(self, cls: type, name: str, *args: Any, **kwargs: Any):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets)

    def get(self, name: str) -> _Metric:
        with self._lock:
            return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` before every render (idempotent by identity)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def reset(self) -> None:
        """Zero every series (registrations and collectors survive)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            collectors = list(self._collectors)
        # Collectors run before the metric snapshot so instruments they
        # register (get-or-create) appear in this very render.
        for collect in collectors:
            collect()
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render_lines())
        return "\n".join(lines) + "\n"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every layer instruments by default."""
    return _DEFAULT
