"""Fig. 8 — CPU utilization & throttling vs. allocation for TrainTicket's
seat / basic / ticketinfo.

Paper observations reproduced here:
* utilization changes gradually as the service crosses its bottleneck and
  the bottleneck utilization *differs per service* (~15% seat, ~25%
  ticketinfo);
* CPU throttling time changes rapidly right at the bottleneck resource.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.sim import AnalyticalEngine

WORKLOAD = 200.0
PROBES = ("seat", "basic", "ticketinfo")
SWEEP = np.linspace(0.5, 2.0, 13)


def run_fig08():
    app = build_app("trainticket")
    engine = AnalyticalEngine(app)
    generous = app.generous_allocation(WORKLOAD, headroom=2.5)
    bottleneck = engine.bottleneck_allocation(WORKLOAD)
    rows = []
    curves: dict[str, dict[str, list[float]]] = {}
    for probe in PROBES:
        utils, throttles = [], []
        for factor in SWEEP:
            alloc = generous.with_value(probe, bottleneck[probe] * factor)
            m = engine.observe(alloc, WORKLOAD)
            utils.append(m.services[probe].utilization * 100)
            throttles.append(m.services[probe].throttle_seconds)
        curves[probe] = {"util": utils, "throttle": throttles}
        for factor, u, h in zip(SWEEP, utils, throttles):
            rows.append([probe, round(float(factor), 2), round(u, 1), round(h, 2)])
    return rows, curves


def test_fig08_bottleneck_metrics(benchmark):
    rows, curves = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    emit(
        "fig08_bottleneck_metrics",
        format_table(
            ["service", "alloc/bottleneck", "cpu_util_%", "throttle_s"],
            rows,
            title="Fig. 8 — utilization & throttling vs normalized resource "
            "(paper: bottleneck util ~15% seat / ~25% ticketinfo; throttle "
            "knee at 1.0)",
        ),
    )
    knee = list(SWEEP).index(1.0) if 1.0 in SWEEP else 4
    idx_1 = int(np.argmin(np.abs(SWEEP - 1.0)))
    idx_15 = int(np.argmin(np.abs(SWEEP - 1.5)))
    for probe in PROBES:
        u = curves[probe]["util"]
        h = curves[probe]["throttle"]
        # Utilization rises smoothly as the allocation shrinks.
        assert u[0] > u[-1]
        # Throttling is near zero well above the knee, nonzero at/below it.
        assert h[idx_15] < h[idx_1] < h[0]
        assert h[0] > 0.0
    # Per-service bottleneck utilizations differ and are ordered as in the
    # paper: seat < basic < ticketinfo.
    u_at_b = {p: curves[p]["util"][idx_1] for p in PROBES}
    assert u_at_b["seat"] < u_at_b["basic"] < u_at_b["ticketinfo"]
    assert 10.0 < u_at_b["seat"] < 20.0
    assert 20.0 < u_at_b["ticketinfo"] < 30.0
