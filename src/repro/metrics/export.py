"""Export utilities: metrics store and run histories to CSV/JSON.

Downstream users want the raw series (for plotting in their own stack);
these writers keep the on-disk format trivial — plain CSV with one header
row, or plain-dict JSON.  The JSON form round-trips exactly (it is what
:class:`repro.experiments.ExperimentArtifact` persists).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.metrics.store import MetricsStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.loop import LoopRecord, LoopResult

__all__ = [
    "store_to_csv",
    "loop_record_to_dict",
    "loop_result_to_csv",
    "loop_result_to_dict",
    "loop_result_from_dict",
]


def store_to_csv(store: MetricsStore, path: str | Path) -> int:
    """Dump every series as long-form CSV: metric,labels,time,value.

    Returns the number of data rows written.
    """
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "labels", "time", "value"])
        for metric in store.metrics():
            for labels in store.label_sets(metric):
                label_str = ";".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                series = store.series(metric, **labels)
                for t, v in series:
                    writer.writerow([metric, label_str, f"{t:.6g}", f"{v:.9g}"])
                    rows += 1
    return rows


def loop_result_to_csv(result: "LoopResult", path: str | Path) -> int:
    """Dump a run history: one row per control interval plus per-service
    allocations (wide format)."""
    path = Path(path)
    if not result.records:
        raise ValueError("empty run")
    service_names = list(result.records[0].allocation.names)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["step", "time", "workload_rps", "response_s", "total_cpu",
             "violated", "slo_s"]
            + [f"cpu[{name}]" for name in service_names]
        )
        for rec in result.records:
            writer.writerow(
                [
                    rec.step,
                    f"{rec.time:.6g}",
                    f"{rec.workload:.6g}",
                    f"{rec.response:.9g}",
                    f"{rec.total_cpu:.6g}",
                    int(rec.violated),
                    f"{rec.slo:.6g}",
                ]
                + [f"{rec.allocation[name]:.6g}" for name in service_names]
            )
    return len(result.records)


def loop_record_to_dict(rec: "LoopRecord") -> dict[str, Any]:
    """One interval record in the canonical JSON encoding.

    Allocations are encoded as ``[name, cpu]`` pairs rather than an
    object: JSON writers that sort keys would otherwise reorder the
    services, and summation order matters to the last ulp of
    ``Allocation.total()``.  The streaming service's per-tick decision
    feed uses exactly this encoding, so a streamed history and an
    offline one compare byte-for-byte.
    """
    return {
        "step": rec.step,
        "time": rec.time,
        "workload": rec.workload,
        "response": rec.response,
        "total_cpu": rec.total_cpu,
        "violated": bool(rec.violated),
        "slo": rec.slo,
        "allocation": [
            [name, rec.allocation[name]] for name in rec.allocation.names
        ],
    }


def loop_result_to_dict(result: "LoopResult") -> dict[str, Any]:
    """A JSON-serializable run history (lossless; see the inverse below)."""
    return {"records": [loop_record_to_dict(rec) for rec in result.records]}


def loop_result_from_dict(data: dict[str, Any]) -> "LoopResult":
    """Rebuild a :class:`LoopResult` from :func:`loop_result_to_dict` output."""
    from repro.core.loop import LoopRecord, LoopResult
    from repro.sim.types import Allocation

    result = LoopResult()
    for rec in data["records"]:
        result.records.append(
            LoopRecord(
                step=int(rec["step"]),
                time=float(rec["time"]),
                workload=float(rec["workload"]),
                response=float(rec["response"]),
                total_cpu=float(rec["total_cpu"]),
                violated=bool(rec["violated"]),
                slo=float(rec["slo"]),
                allocation=Allocation(
                    [(name, float(cpu)) for name, cpu in rec["allocation"]]
                ),
            )
        )
    return result
