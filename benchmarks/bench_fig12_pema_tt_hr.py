"""Fig. 12 — PEMA execution on TrainTicket and HotelReservation.

Paper: the same controller, unchanged, finds efficient allocations on the
41-service TrainTicket (SLO 900 ms) within ~35 iterations and on the
18-service HotelReservation (SLO 50 ms) within ~30, with a few mitigated
SLO violations.

The two scenarios are ``benchmarks/grids/fig12_pema_tt_hr.json``.
"""

from __future__ import annotations

from benchmarks._grids import figure_optimum, run_figure_grid
from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table


def run_fig12():
    return run_figure_grid("fig12_pema_tt_hr")


def test_fig12_pema_tt_hr(benchmark):
    run = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    blocks = []
    for cell, artifact in run:
        app = cell.spec.app
        wl = cell.spec.workload.params["rps"]
        iters = cell.spec.n_steps
        result = artifact.results[0]
        rows = [
            [
                it,
                round(float(result.total_cpu[it]), 2),
                round(float(result.responses[it] * 1000), 1),
            ]
            for it in range(0, iters, 3)
        ]
        optimum = figure_optimum(app, wl)
        blocks.append(
            format_table(
                ["iter", "total_cpu", "response_ms"],
                rows,
                title=f"Fig. 12 — PEMA on {app} @ {wl:.0f} rps "
                f"(SLO {build_app(app).slo * 1000:.0f} ms, "
                f"optimum {optimum:.2f})",
            )
        )
        assert result.settled_total() < result.total_cpu[0] * 0.85
        assert result.settled_total() / optimum < 1.4
        assert result.violation_rate() < 0.3
    emit("fig12_pema_tt_hr", "\n\n".join(blocks))
