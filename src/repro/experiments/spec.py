"""Declarative experiment description: one JSON-serializable object per run.

An :class:`ExperimentSpec` captures everything that was previously
hand-wired at every call site — which app, which performance-model
backend, which workload trace, which autoscaler, the SLO/interval/seed,
how many repeated seeds, and any mid-run hooks (dynamic SLO, CPU-speed
steps).  Specs are frozen value objects that round-trip losslessly
through ``to_json``/``from_json``, so a figure cell is reproducible from
a file, the CLI, or Python with identical results.

The string ``kind`` keys resolve through the registries in
:mod:`repro.experiments.registry`; ``params`` dicts are passed verbatim
to the registered factory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.experiments.registry import AUTOSCALERS, ENGINES, HOOKS, WORKLOADS

__all__ = [
    "ComponentSpec",
    "WorkloadSpec",
    "AutoscalerSpec",
    "EngineSpec",
    "HookSpec",
    "ExperimentSpec",
    "CAPTURE_CHANNELS",
    "SPEC_FIELDS",
]

#: Opt-in artifact channels a spec may request via ``capture``.  Each
#: channel adds a payload alongside the run history in unit results,
#: artifacts, and sweep-store entries.  ``manager_state`` carries the
#: workload-aware manager's range-tree splits/slope snapshot (None for
#: autoscalers without one).  ``decision_trace`` carries one
#: deterministic :func:`repro.obs.decision.decision_record` per control
#: step — byte-identical across the scalar, batched, and streamed
#: execution paths.
CAPTURE_CHANNELS = ("manager_state", "decision_trace")

#: Every legal top-level :class:`ExperimentSpec` field (the sweep grids
#: validate their dotted override paths against this).
SPEC_FIELDS = frozenset({
    "name", "app", "workload", "autoscaler", "engine", "n_steps",
    "interval", "slo", "headroom", "seed", "repeats", "hooks", "capture",
})


def _frozen_params(params: Mapping[str, Any] | None) -> dict[str, Any]:
    """A defensive copy (specs are value objects; don't alias caller dicts)."""
    return dict(params) if params else {}


@dataclass(frozen=True)
class ComponentSpec:
    """A registry key plus the keyword arguments for its factory."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("kind must be a non-empty string")
        object.__setattr__(self, "params", _frozen_params(self.params))

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"kind": self.kind}
        if self.params:
            d["params"] = dict(self.params)
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComponentSpec":
        extra = set(data) - {"kind", "params"}
        if extra:
            raise ValueError(f"unknown {cls.__name__} fields: {sorted(extra)}")
        if "kind" not in data:
            raise ValueError(f"{cls.__name__} needs 'kind'")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


class WorkloadSpec(ComponentSpec):
    """Workload trace: ``WorkloadSpec("constant", {"rps": 700.0})``."""

    @classmethod
    def constant(cls, rps: float) -> "WorkloadSpec":
        return cls("constant", {"rps": float(rps)})

    @classmethod
    def coerce(cls, value: "WorkloadSpec | Mapping | float") -> "WorkloadSpec":
        """Accept a spec, a ``{"kind": ...}`` mapping, or a bare rate."""
        if isinstance(value, WorkloadSpec):
            return value
        if isinstance(value, (int, float)):
            return cls.constant(value)
        return cls.from_dict(value)


class AutoscalerSpec(ComponentSpec):
    """Autoscaler under test: ``pema`` / ``rule`` / ``static`` / custom."""

    @classmethod
    def pema(cls, **config: Any) -> "AutoscalerSpec":
        """PEMA with :class:`~repro.core.PEMAConfig` overrides as params."""
        return cls("pema", config)

    @classmethod
    def rule(cls, **params: Any) -> "AutoscalerSpec":
        return cls("rule", params)


@dataclass(frozen=True)
class EngineSpec(ComponentSpec):
    """Performance-model backend plus its seeding convention.

    ``seed_offset`` decouples the environment's measurement-noise stream
    from the controller's navigation stream: the engine is seeded with
    ``run_seed + seed_offset``.  The defaults reproduce the benchmark
    suite's historical seeding (PEMA runs used +1000, RULE runs +2000),
    so spec-driven runs are bit-identical to the hand-wired ones.
    """

    kind: str = "analytical"
    seed_offset: int = 1000

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d["seed_offset"] = self.seed_offset
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineSpec":
        extra = set(data) - {"kind", "seed_offset", "params"}
        if extra:
            raise ValueError(f"unknown EngineSpec fields: {sorted(extra)}")
        return cls(
            kind=data.get("kind", "analytical"),
            params=dict(data.get("params", {})),
            seed_offset=int(data.get("seed_offset", 1000)),
        )


class HookSpec(ComponentSpec):
    """Mid-run intervention: ``HookSpec("set_slo", {"at": 22, "slo": 0.2})``."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: app x engine x workload x autoscaler x schedule.

    ``repeats`` runs the same scenario under seeds ``seed, seed+1, ...``
    (PEMA's navigation is randomized, so the figures average repeats).
    ``slo=None`` uses the app's calibrated SLO.  ``headroom`` scales the
    generous starting allocation a rule-based manager would leave behind.
    """

    app: str
    workload: WorkloadSpec
    n_steps: int
    autoscaler: AutoscalerSpec = field(
        default_factory=lambda: AutoscalerSpec("pema")
    )
    engine: EngineSpec = field(default_factory=EngineSpec)
    name: str = ""
    interval: float = 120.0
    slo: float | None = None
    headroom: float = 2.0
    seed: int = 0
    repeats: int = 1
    hooks: tuple[HookSpec, ...] = ()
    capture: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Plain mappings (and bare workload rates) coerce to their spec
        # types, so hand-written specs stay close to their JSON form.
        object.__setattr__(self, "workload", WorkloadSpec.coerce(self.workload))
        if not isinstance(self.autoscaler, AutoscalerSpec):
            object.__setattr__(
                self, "autoscaler", AutoscalerSpec.from_dict(self.autoscaler)
            )
        if not isinstance(self.engine, EngineSpec):
            object.__setattr__(
                self, "engine", EngineSpec.from_dict(self.engine)
            )
        object.__setattr__(
            self,
            "hooks",
            tuple(
                h if isinstance(h, HookSpec) else HookSpec.from_dict(h)
                for h in self.hooks
            ),
        )
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1: {self.n_steps}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1: {self.repeats}")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive: {self.interval}")
        if self.headroom <= 0:
            raise ValueError(f"headroom must be positive: {self.headroom}")
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"slo must be positive: {self.slo}")
        object.__setattr__(
            self, "capture", tuple(str(c) for c in self.capture)
        )
        for channel in self.capture:
            if channel not in CAPTURE_CHANNELS:
                raise ValueError(
                    f"unknown capture channel {channel!r} "
                    f"(known: {', '.join(CAPTURE_CHANNELS)})"
                )
        if len(set(self.capture)) != len(self.capture):
            raise ValueError(f"duplicate capture channels: {self.capture}")

    # -- registry validation -----------------------------------------------------
    def validate(self) -> "ExperimentSpec":
        """Resolve every registry key (raises KeyError on unknown kinds)."""
        from repro.apps import app_names

        if self.app not in app_names():
            raise KeyError(
                f"unknown app {self.app!r} (known: {', '.join(app_names())})"
            )
        ENGINES.get(self.engine.kind)
        AUTOSCALERS.get(self.autoscaler.kind)
        WORKLOADS.get(self.workload.kind)
        for hook in self.hooks:
            HOOKS.get(hook.kind)
        return self

    # -- derivation --------------------------------------------------------------
    def with_(self, **changes: Any) -> "ExperimentSpec":
        """A modified copy (grid sweeps derive cells from a base spec)."""
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = {
            "name": self.name,
            "app": self.app,
            "workload": self.workload.to_dict(),
            "autoscaler": self.autoscaler.to_dict(),
            "engine": self.engine.to_dict(),
            "n_steps": self.n_steps,
            "interval": self.interval,
            "slo": self.slo,
            "headroom": self.headroom,
            "seed": self.seed,
            "repeats": self.repeats,
            "hooks": [h.to_dict() for h in self.hooks],
        }
        # Only serialized when requested: capture-free specs keep their
        # historical encoding (and therefore their sweep-store hashes).
        if self.capture:
            data["capture"] = list(self.capture)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        extra = set(data) - SPEC_FIELDS
        if extra:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(extra)}")
        for required in ("app", "workload", "n_steps"):
            if required not in data:
                raise ValueError(f"ExperimentSpec needs {required!r}")
        slo = data.get("slo")
        return cls(
            name=str(data.get("name", "")),
            app=data["app"],
            workload=WorkloadSpec.coerce(data["workload"]),
            autoscaler=AutoscalerSpec.from_dict(
                data.get("autoscaler", {"kind": "pema"})
            ),
            engine=EngineSpec.from_dict(data.get("engine", {})),
            n_steps=int(data["n_steps"]),
            interval=float(data.get("interval", 120.0)),
            slo=None if slo is None else float(slo),
            headroom=float(data.get("headroom", 2.0)),
            seed=int(data.get("seed", 0)),
            repeats=int(data.get("repeats", 1)),
            hooks=tuple(
                HookSpec.from_dict(h) for h in data.get("hooks", ())
            ),
            capture=tuple(data.get("capture", ())),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))
