"""Random exploration probability — Eqn. (8) of the paper.

    p_e = A * clip((R - r) / (alpha * R), 0, 1) + B

The exploration probability is highest when there is plenty of latency
headroom (safe to jump around) and decays to the floor ``B`` as the
response approaches the SLO.
"""

from __future__ import annotations

import numpy as np

__all__ = ["exploration_probability"]


def exploration_probability(
    response: float,
    target: float,
    alpha: float,
    explore_a: float,
    explore_b: float,
) -> float:
    """Probability of rolling back to a random historical allocation."""
    if target <= 0:
        raise ValueError(f"target must be positive: {target}")
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1]: {alpha}")
    if not 0 <= explore_b <= explore_a <= 1 or explore_a + explore_b > 1:
        raise ValueError(
            f"need 0 <= B <= A <= 1 and A+B <= 1: A={explore_a}, B={explore_b}"
        )
    if response < 0:
        raise ValueError(f"response must be >= 0: {response}")
    signal = float(np.clip((target - response) / (alpha * target), 0.0, 1.0))
    return explore_a * signal + explore_b
