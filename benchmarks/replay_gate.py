"""CI performance gate: trace-replay sweep cells, batched vs scalar.

The replay-specific counterpart of ``sweep_gate.py``:

* **equivalence** — cold scalar and cold batched runs of the replay
  smoke grid must produce byte-identical aggregate summaries and
  byte-identical cache entries;
* **manager state** — every unit of the manager-state grid (replay cells
  under the workload-aware manager with the ``manager_state`` channel
  captured) must persist a non-null range-tree snapshot, byte-identical
  across modes and present after a warm (all-cache-hit) rerun;
* **throughput** — batched cold replay cells/sec must be at least
  ``--min-speedup`` times scalar (best-of ``--repeats`` storeless runs).

Writes a ``BENCH_replay.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/replay_gate.py \
        --out BENCH_replay.json --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.sweeps import (
    SweepGrid,
    SweepStore,
    grid_summary_json,
    run_grid,
    run_sweep_cached,
)


def _store_bytes(store: SweepStore) -> list[bytes]:
    return sorted(path.read_bytes() for path in store.entry_paths())


def _timed_cells_per_sec(specs, *, batch: bool, repeats: int) -> dict:
    """Best-of-``repeats`` cold throughput of one mode (no store I/O)."""
    best = None
    for _ in range(repeats):
        _, report = run_sweep_cached(specs, batch=batch)
        if best is None or report.seconds < best.seconds:
            best = report
    return {
        "seconds": best.seconds,
        "cells_per_sec": best.units_per_sec,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", default="benchmarks/grids/ci_replay_smoke.json")
    parser.add_argument("--state-grid",
                        default="benchmarks/grids/ci_replay_state.json")
    parser.add_argument("--out", default="BENCH_replay.json")
    parser.add_argument("--cache-root", default=None,
                        help="directory for the per-mode caches "
                        "(default: a fresh temporary directory)")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold timing runs per mode (best one counts)")
    args = parser.parse_args(argv)

    tmp_cache = None
    if args.cache_root:
        cache_root = Path(args.cache_root)
    else:  # don't litter the working tree with cache entries
        tmp_cache = tempfile.TemporaryDirectory(prefix="replay-gate-cache-")
        cache_root = Path(tmp_cache.name)

    failures: list[str] = []
    bench: dict = {"min_speedup": args.min_speedup}

    for label, grid_path in (("smoke", args.grid), ("state", args.state_grid)):
        grid = SweepGrid.read(grid_path)
        cells = grid.cells()
        units = sum(cell.spec.repeats for cell in cells)
        summaries: dict[str, str] = {}
        stores: dict[str, SweepStore] = {}
        section: dict = {"grid": grid.name, "units": units}
        for mode, batch in (("scalar", False), ("batched", True)):
            store = stores[mode] = SweepStore(cache_root / label / mode)
            store.clear()
            cold = run_grid(grid, store=store, batch=batch, cells=cells)
            warm = run_grid(grid, store=store, batch=batch, cells=cells)
            summaries[mode] = grid_summary_json(cold)
            if cold.report.cache_hits != 0:
                failures.append(f"{label}/{mode}: cold run was warm")
            if warm.report.cache_hits != units or warm.report.computed != 0:
                failures.append(
                    f"{label}/{mode}: warm hit rate "
                    f"{warm.report.cache_hits}/{units} < 100%"
                )
            if grid_summary_json(warm) != summaries[mode]:
                failures.append(f"{label}/{mode}: warm aggregate differs")
            if cold.report.replay_units != units:
                failures.append(
                    f"{label}/{mode}: expected every unit to be a replay "
                    f"cell, got {cold.report.replay_units}/{units}"
                )
            section[mode] = {
                "cold_seconds": cold.report.seconds,
                "batched_units": cold.report.batched_units,
                "scalar_units": cold.report.scalar_units,
                "replay_units": cold.report.replay_units,
                "manager_states": cold.report.manager_states,
            }
            if label == "state":
                # Every unit carries a non-null range-tree snapshot,
                # cold and warm (i.e. the payload survives the store).
                for run_label, run in (("cold", cold), ("warm", warm)):
                    states = [
                        ms
                        for artifact in run.artifacts
                        for ms in artifact.manager_states
                    ]
                    good = [
                        ms
                        for ms in states
                        if isinstance(ms, dict) and "splits" in ms
                    ]
                    if len(good) != units:
                        failures.append(
                            f"{label}/{mode}/{run_label}: "
                            f"{len(good)}/{units} units carry a "
                            f"manager-state snapshot"
                        )
        if summaries["scalar"] != summaries["batched"]:
            failures.append(f"{label}: batched aggregate differs from scalar")
        if _store_bytes(stores["scalar"]) != _store_bytes(stores["batched"]):
            failures.append(
                f"{label}: batched cache entries differ from scalar entries"
            )
        bench[label] = section

    # Throughput gate on the smoke grid only (the state grid is tiny).
    specs = [cell.spec for cell in SweepGrid.read(args.grid).cells()]
    timed = {}
    for mode, batch in (("scalar", False), ("batched", True)):
        timed[mode] = _timed_cells_per_sec(
            specs, batch=batch, repeats=max(args.repeats, 1)
        )
    scalar_rate = timed["scalar"]["cells_per_sec"]
    batched_rate = timed["batched"]["cells_per_sec"]
    speedup = batched_rate / scalar_rate if scalar_rate > 0 else float("inf")
    if speedup < args.min_speedup:
        failures.append(
            f"batched replay speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x ({batched_rate:.1f} vs "
            f"{scalar_rate:.1f} cells/sec)"
        )
    bench["timed"] = timed
    bench["speedup_cold"] = speedup
    bench["timing_repeats"] = max(args.repeats, 1)
    bench["passed"] = not failures
    bench["failures"] = failures

    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if tmp_cache is not None:
        tmp_cache.cleanup()
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"replay gate passed: batched {speedup:.2f}x scalar "
          f"({batched_rate:.1f} vs {scalar_rate:.1f} cells/sec cold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
