"""Dynamic response-time target — Eqn. (9) and slope learning (§3.4).

Within a (possibly wide) workload range, PEMA sets a workload-dependent
latency target

    R(λ) = m · (λ - λ_max) + R_SLO

so low-workload intervals aim *below* the SLO, leaving headroom for the
top of the range.  The slope ``m`` (latency per unit workload) is learned
once at startup by holding the allocation fixed while the workload varies
and regressing response on workload (Fig. 10a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DynamicTarget", "learn_slope"]


@dataclass(frozen=True)
class DynamicTarget:
    """Workload-aware latency target for one application."""

    slo: float
    slope: float
    floor_fraction: float = 0.3
    """Lower clamp on the target, as a fraction of the SLO.

    Keeps very wide ranges from demanding impossible latencies.
    """

    def __post_init__(self) -> None:
        if self.slo <= 0:
            raise ValueError("slo must be positive")
        if self.slope < 0:
            raise ValueError("slope must be >= 0 (latency grows with load)")
        if not 0 < self.floor_fraction <= 1:
            raise ValueError("floor_fraction must be in (0, 1]")

    def target(self, workload: float, lambda_max: float) -> float:
        """Eqn. (9): the reduction target for ``workload`` within a range."""
        if workload < 0 or lambda_max <= 0:
            raise ValueError("workload must be >= 0 and lambda_max > 0")
        raw = self.slope * (min(workload, lambda_max) - lambda_max) + self.slo
        return float(max(raw, self.floor_fraction * self.slo))


def learn_slope(
    workloads: Sequence[float], responses: Sequence[float]
) -> float:
    """Least-squares slope of response vs. workload, clamped at >= 0.

    Needs at least two distinct workload levels; with degenerate input the
    slope is 0 (the dynamic target then collapses to the plain SLO).
    """
    workloads = np.asarray(workloads, dtype=np.float64)
    responses = np.asarray(responses, dtype=np.float64)
    if workloads.shape != responses.shape:
        raise ValueError("workloads and responses must align")
    if workloads.size < 2 or np.ptp(workloads) < 1e-9:
        return 0.0
    slope, _intercept = np.polyfit(workloads, responses, deg=1)
    return float(max(slope, 0.0))
