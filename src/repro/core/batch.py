"""Vectorized PEMA bank: Algorithm 1 advanced for many cells per call.

:class:`PEMABatch` carries the state of ``B`` independent
:class:`~repro.core.controller.PEMAController` instances (one sweep cell
each, same application) in stacked arrays — allocations, learned
thresholds and SLOs are ``(B, S)``/``(B,)`` — and advances all of them
with one call per control interval.  The heavy per-step math (exploration
probabilities, Eqn. 5 inclusion probabilities, threshold ratcheting,
reductions) runs as whole-batch array operations; only the parts that are
inherently per-cell remain loops: the random draws (each cell owns the
same ``default_rng(seed)`` stream the scalar controller would consume, in
the same order) and the RHDb rollback/exploration scans (rare, and
``O(history)`` only when they fire).

Bit-exactness contract: cell ``i`` of a batch produces exactly the
allocation sequence of a scalar ``PEMAController`` with the same seed,
config, SLO and metrics — every float operation is the same IEEE op in
the same order, and the stochastic call sequence (explore gate draw,
exploration index draw, Bernoulli selection + uniform cut via the *same*
:func:`~repro.core.selection.select_targets`) is preserved branch by
branch.  ``tests/test_batched.py`` enforces byte-identical artifacts.

Unsupported (fall back to the scalar path): per-cell cost models, and
histories long enough to hit the RHDb's 100k-record trim.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.config import PEMAConfig
from repro.core.selection import select_targets
from repro.sim.batched import BatchObservation

__all__ = ["PEMABatch"]

#: Tolerance constants, matching :mod:`repro.core.selection`.
_SEL_EPS = 1e-9


def _window_mean(window: list) -> float:
    """``float(np.mean(tuple(window)))`` bit-for-bit.

    NumPy's pairwise reduction degenerates to a plain sequential sum
    (starting from 0.0) below 8 elements, which covers the default
    5-sample moving average without a NumPy call; longer windows take the
    real ``np.mean``.
    """
    n = len(window)
    if n < 8:
        s = 0.0
        for v in window:
            s = s + v
        return s / n
    return np.mean(np.asarray(window, dtype=np.float64))


class PEMABatch:
    """A bank of ``B`` PEMA controllers over one shared service set."""

    def __init__(
        self,
        services: Sequence[str],
        slos: Sequence[float],
        allocations: np.ndarray,
        configs: Sequence[PEMAConfig],
        seeds: Sequence[int],
    ) -> None:
        self.services = tuple(services)
        self._index = {name: j for j, name in enumerate(self.services)}
        n_cells = len(configs)
        allocations = np.array(allocations, dtype=np.float64)
        if allocations.shape != (n_cells, len(self.services)):
            raise ValueError(
                f"allocations must be ({n_cells}, {len(self.services)}): "
                f"{allocations.shape}"
            )
        if not (len(slos) == len(seeds) == n_cells):
            raise ValueError("slos/configs/seeds lengths must agree")
        self.slo = np.asarray([float(s) for s in slos], dtype=np.float64)
        if np.any(self.slo <= 0):
            raise ValueError("slo must be positive")
        self.allocation = allocations
        self.configs = tuple(configs)
        self.rngs = [np.random.default_rng(int(s)) for s in seeds]

        cfg = self.configs
        self._alpha = np.asarray([c.alpha for c in cfg])
        self._beta = np.asarray([c.beta for c in cfg])
        self._explore_a = np.asarray([c.explore_a for c in cfg])
        self._explore_b = np.asarray([c.explore_b for c in cfg])
        self._buffer = np.asarray([c.response_buffer for c in cfg])
        self._min_cpu = np.asarray([c.min_cpu for c in cfg])
        self._gain = np.asarray([c.rollback_severity_gain for c in cfg])
        self._window_len = [c.moving_average_window for c in cfg]
        self._use_filter = np.asarray([c.use_bottleneck_filter for c in cfg])
        self._dynamic = np.asarray([c.use_dynamic_thresholds for c in cfg])

        shape = allocations.shape
        self.util_th = np.empty(shape)
        self.util_th[:] = np.asarray([c.init_util_threshold for c in cfg])[:, None]
        self.thr_th = np.empty(shape)
        self.thr_th[:] = np.asarray(
            [c.init_throttle_threshold for c in cfg]
        )[:, None]

        self._windows: list[list[float]] = [[] for _ in range(n_cells)]
        self._tainted: list[set[bytes]] = [set() for _ in range(n_cells)]
        # Decision tracing: cells opted in via enable_decision_trace get
        # exactly one pema_decision_info per step, mirroring the scalar
        # controller's StepResult field-for-field (untraced cells pay
        # nothing).
        self._trace_cells: set[int] = set()
        self.decision_info: dict[int, list[dict]] = {}
        # RHDb, stacked: one (B,)/(B, S) snapshot per inserted step.
        self._hist_resp: list[np.ndarray] = []
        self._hist_total: list[np.ndarray] = []
        self._hist_alloc: list[np.ndarray] = []

    @property
    def n_cells(self) -> int:
        return len(self.configs)

    # -- decision tracing ---------------------------------------------------------
    def enable_decision_trace(self, cells: Sequence[int]) -> None:
        """Record per-step decision info for the given cells."""
        for cell in cells:
            self._trace_cells.add(int(cell))
            self.decision_info.setdefault(int(cell), [])

    # -- dynamic SLO (the Fig. 20 hook) -----------------------------------------
    def set_slo(self, cell: int, slo: float) -> None:
        """Change one cell's SLO mid-run, like ``PEMAController.set_slo``."""
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        self.slo[cell] = float(slo)
        self._windows[cell].clear()

    # -- RHDb queries ------------------------------------------------------------
    def _best_rollback(self, cell: int, ceiling: float) -> int | None:
        """First minimum-total safe record index (ties keep the oldest)."""
        tainted = self._tainted[cell]
        best: int | None = None
        best_total = math.inf
        for k in range(len(self._hist_resp)):
            if self._hist_resp[k][cell] > ceiling:
                continue
            if tainted and self._hist_alloc[k][cell].tobytes() in tainted:
                continue
            total = self._hist_total[k][cell]
            if total < best_total:
                best_total = total
                best = k
        return best

    def _safe_records(self, cell: int) -> list[int]:
        tainted = self._tainted[cell]
        slo = self.slo[cell]
        return [
            k
            for k in range(len(self._hist_resp))
            if self._hist_resp[k][cell] <= slo
            and not (
                tainted and self._hist_alloc[k][cell].tobytes() in tainted
            )
        ]

    # -- one control interval for the whole batch --------------------------------
    def step(self, obs: BatchObservation, totals: np.ndarray) -> np.ndarray:
        """Advance every cell one interval; returns the ``(B, S)`` allocations.

        ``obs`` is the batch observation produced under the *current*
        allocations; ``totals`` is ``allocation.sum(axis=1)`` for the same
        (the caller already computed it for its own records).
        """
        response = obs.latency_p95
        util = obs.utilization
        thr_seconds = obs.throttle_seconds
        n_services = len(self.services)

        # Line 3: log this interval into the stacked RHDb.
        self._hist_resp.append(np.array(response))
        self._hist_total.append(np.array(totals, dtype=np.float64))
        self._hist_alloc.append(self.allocation.copy())

        violated = response > self.slo
        # Eqn. (8), vectorized (identical elementwise to the scalar clip).
        p_explore = (
            self._explore_a
            * np.clip((self.slo - response) / (self._alpha * self.slo), 0.0, 1.0)
            + self._explore_b
        )
        # Eqn. (5) inputs, vectorized; rows are consumed only by cells
        # that reach the selection branch.
        u_star = np.minimum(
            util / np.maximum(self.util_th, _SEL_EPS), 1.0
        )
        eligible = thr_seconds <= self.thr_th + _SEL_EPS
        # Trace records need plain Python floats; one bulk (and exact)
        # tolist() beats a slow float(np.float64) per traced record.
        p_explore_row = p_explore.tolist() if self._trace_cells else None

        for i in range(self.n_cells):
            window = self._windows[i]
            window.append(response[i])
            if len(window) > self._window_len[i]:
                window.pop(0)

            alloc_row = self.allocation[i]
            if violated[i]:
                # Line 4: taint + rollback (no random draws on this path).
                self._tainted[i].add(alloc_row.tobytes())
                slo = self.slo[i]
                ceiling = slo
                if self._gain[i] > 0:
                    overshoot = max(response[i] / slo - 1.0, 0.0)
                    ceiling = slo * (1.0 - min(0.5, self._gain[i] * overshoot))
                k = self._best_rollback(i, ceiling)
                if k is None and ceiling != slo:
                    k = self._best_rollback(i, slo)
                if k is not None:
                    self.allocation[i] = self._hist_alloc[k][i]
                else:
                    self.allocation[i] = alloc_row * 1.25
                window.clear()
                if i in self._trace_cells:
                    # Scalar rollback returns before p_explore is even
                    # computed, so the record keeps the default 0.0.
                    # Records here and below are inlined dict literals
                    # matching pema_decision_info (the scalar path) key
                    # for key — the function-call + coercion cost is too
                    # hot for the batched per-step loop, and the
                    # scalar-vs-batched byte-parity tests pin the shape.
                    self.decision_info[i].append({
                        "kind": "pema",
                        "action": "rollback",
                        "violated": True,
                        "targets": [],
                        "n_targets": 0,
                        "delta": 0.0,
                        "signal": 0.0,
                        "p_explore": 0.0,
                        "probabilities": [],
                    })
                continue

            rng = self.rngs[i]
            # Line 6: exploration gate (always one uniform draw).
            if rng.random() < p_explore[i]:
                safe = self._safe_records(i)
                if safe:
                    k = safe[int(rng.integers(len(safe)))]
                    self.allocation[i] = self._hist_alloc[k][i]
                    window.clear()
                    if i in self._trace_cells:
                        self.decision_info[i].append({
                            "kind": "pema",
                            "action": "explore",
                            "violated": False,
                            "targets": [],
                            "n_targets": 0,
                            "delta": 0.0,
                            "signal": 0.0,
                            "p_explore": p_explore_row[i],
                            "probabilities": [],
                        })
                    continue

            # Line 7: reduction sizing from the moving-average response.
            r_avg = _window_mean(window)
            raw = (self._buffer[i] * self.slo[i] - r_avg) / (
                self._alpha[i] * self.slo[i]
            )
            signal = min(max(raw, 0.0), 1.0)
            n_t = int(math.floor(n_services * signal))
            delta = self._beta[i] * signal
            if n_t == 0 or delta <= 0.0:
                if i in self._trace_cells:
                    # The scalar early-hold result leaves n_targets/delta
                    # at their defaults, so the record does too.
                    self.decision_info[i].append({
                        "kind": "pema",
                        "action": "hold",
                        "violated": False,
                        "targets": [],
                        "n_targets": 0,
                        "delta": 0.0,
                        "signal": float(signal),
                        "p_explore": p_explore_row[i],
                        "probabilities": [],
                    })
                continue

            # Lines 8-9: bottleneck filter + inclusion probabilities.
            if self._use_filter[i]:
                idx = np.flatnonzero(eligible[i])
                if idx.size:
                    vals = u_star[i, idx]
                    u_min = vals.min()
                    denom = 1.0 - u_min
                    if denom <= _SEL_EPS:
                        probs = {self.services[j]: 1.0 for j in idx}
                    else:
                        # tolist() is value-exact; plain floats keep the
                        # selection draws identical and make the traced
                        # record's JSON coercion cheap.
                        p = np.clip(
                            1.0 - (vals - u_min) / denom, 0.0, 1.0
                        ).tolist()
                        probs = {
                            self.services[j]: p[pos]
                            for pos, j in enumerate(idx)
                        }
                else:
                    probs = {}
            else:
                probs = {name: 1.0 for name in self.services}

            # Line 10: the scalar selection routine drives the exact same
            # Bernoulli-draw + uniform-cut random sequence.
            targets = select_targets(probs, n_t, rng)
            if targets:
                if not 0.0 <= delta < 1.0:
                    raise ValueError(f"fraction must be in [0, 1): {delta}")
                cols = [self._index[t] for t in targets]
                self.allocation[i, cols] = np.maximum(
                    self._min_cpu[i], self.allocation[i, cols] * (1.0 - delta)
                )
            if i in self._trace_cells:
                self.decision_info[i].append({
                    "kind": "pema",
                    "action": "reduce" if targets else "hold",
                    "violated": False,
                    "targets": list(targets),
                    "n_targets": n_t,
                    "delta": float(delta),
                    "signal": float(signal),
                    "p_explore": p_explore_row[i],
                    "probabilities": [[n, p] for n, p in probs.items()],
                })

        # Eqns. (6)-(7): ratchet thresholds on every SLO-satisfying cell
        # (the scalar controller updates after selection, so this step's
        # selection used the pre-update values — same as here).
        ratchet = (~violated & self._dynamic)[:, None]
        self.util_th = np.where(
            ratchet & (util > self.util_th), util, self.util_th
        )
        self.thr_th = np.where(
            ratchet & (thr_seconds > self.thr_th), thr_seconds, self.thr_th
        )
        return self.allocation
