"""Reduction sizing: Eqns. (3), (4), (10), (11)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reduction import num_targets, reduction_fraction, reduction_signal


class TestReductionSignal:
    def test_full_headroom_saturates(self):
        # r=0, alpha=0.5: (R - 0)/(0.5 R) = 2 -> clipped to 1
        assert reduction_signal(0.0, target=1.0, alpha=0.5) == 1.0

    def test_at_target_is_zero(self):
        assert reduction_signal(1.0, target=1.0, alpha=0.5) == 0.0

    def test_above_target_clamps_to_zero(self):
        assert reduction_signal(1.5, target=1.0, alpha=0.5) == 0.0

    def test_paper_example(self):
        # SLO 250ms: more reduction at r=150 than at r=200 (paper §3.1).
        fast = reduction_signal(0.150, target=0.250, alpha=0.5,
                                response_buffer=1.0)
        slow = reduction_signal(0.200, target=0.250, alpha=0.5,
                                response_buffer=1.0)
        assert fast > slow > 0.0
        assert fast == pytest.approx((0.250 - 0.150) / (0.5 * 0.250))

    def test_moving_average_input(self):
        # Eqn (10): the K recent responses are averaged.
        single = reduction_signal(0.15, target=0.25, alpha=0.5)
        averaged = reduction_signal([0.10, 0.15, 0.20], target=0.25, alpha=0.5)
        assert averaged == pytest.approx(single)

    def test_buffer_scales_target(self):
        with_buffer = reduction_signal(0.20, target=0.25, alpha=0.5,
                                       response_buffer=0.95)
        without = reduction_signal(0.20, target=0.25, alpha=0.5,
                                   response_buffer=1.0)
        assert with_buffer < without

    def test_alpha_aggressiveness(self):
        # Smaller alpha -> larger signal for the same headroom.
        aggressive = reduction_signal(0.20, target=0.25, alpha=0.1)
        conservative = reduction_signal(0.20, target=0.25, alpha=0.9)
        assert aggressive > conservative

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0, "alpha": 0.5},
            {"target": 1.0, "alpha": 0.0},
            {"target": 1.0, "alpha": 1.5},
            {"target": 1.0, "alpha": 0.5, "response_buffer": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            reduction_signal(0.5, **kwargs)

    def test_negative_response_rejected(self):
        with pytest.raises(ValueError):
            reduction_signal(-0.1, target=1.0, alpha=0.5)

    @given(
        r=st.floats(min_value=0.0, max_value=2.0),
        alpha=st.floats(min_value=0.01, max_value=1.0),
        buffer=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_in_unit_interval(self, r, alpha, buffer):
        s = reduction_signal(r, target=1.0, alpha=alpha, response_buffer=buffer)
        assert 0.0 <= s <= 1.0


class TestNumTargets:
    def test_eqn3_floor(self):
        assert num_targets(10, 0.55) == 5
        assert num_targets(41, 1.0) == 41
        assert num_targets(13, 0.0) == 0

    def test_small_signal_gives_zero(self):
        assert num_targets(4, 0.2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            num_targets(0, 0.5)
        with pytest.raises(ValueError):
            num_targets(10, 1.5)


class TestReductionFraction:
    def test_eqn4(self):
        assert reduction_fraction(0.3, 0.5) == pytest.approx(0.15)
        assert reduction_fraction(0.3, 1.0) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            reduction_fraction(0.0, 0.5)
        with pytest.raises(ValueError):
            reduction_fraction(0.3, -0.1)

    @given(
        beta=st.floats(min_value=0.01, max_value=1.0),
        signal=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_beta(self, beta, signal):
        assert 0.0 <= reduction_fraction(beta, signal) <= beta
