"""Intra-repo link check for the Markdown docs.

Scans ``README.md`` and every Markdown file under ``docs/``,
``benchmarks/``, and ``examples/`` for Markdown links and inline-code
path references, and verifies that every *intra-repository* target
exists (external ``http(s)``/``mailto`` links are ignored; ``#anchors``
are stripped).  Inline-code references are backtick-quoted repo paths
like ```benchmarks/des_gate.py`` — any token rooted at a known top-level
directory resolves from the repo root, so renaming a gate or grid file
breaks CI instead of silently rotting the prose.  Exits non-zero listing
every dead link.

Usage::

    python tools/check_docs_links.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")

#: Backtick-quoted repo paths: `src/...py`, `benchmarks/grids/x.json`, ...
_CODE_PATH = re.compile(
    r"`((?:src|docs|tools|tests|benchmarks|examples)/[\w./-]+\.\w+)`"
)


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    for tree in ("docs", "benchmarks", "examples"):
        files += sorted((root / tree).rglob("*.md"))
    return [f for f in files if f.exists()]


def dead_links(root: Path) -> list[tuple[Path, str]]:
    """Every (source file, target) whose intra-repo target is missing."""
    missing: list[tuple[Path, str]] = []
    for source in doc_files(root):
        text = source.read_text()
        for target in _LINK.findall(text):
            if target.startswith(_EXTERNAL):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                missing.append((source, target))
        for target in _CODE_PATH.findall(text):
            if not (root / target).exists():
                missing.append((source, target))
    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=Path(__file__).resolve().parent.parent, type=Path
    )
    args = parser.parse_args(argv)
    files = doc_files(args.root)
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    missing = dead_links(args.root)
    for source, target in missing:
        print(
            f"DEAD LINK: {source.relative_to(args.root)} -> {target}",
            file=sys.stderr,
        )
    if missing:
        return 1
    print(f"docs link check passed: {len(files)} file(s), no dead links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
