"""Monitoring substrate: Prometheus/Linkerd-style metrics collection."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.export import (
    loop_result_from_dict,
    loop_result_to_csv,
    loop_result_to_dict,
    store_to_csv,
)
from repro.metrics.queries import (
    max_over_window,
    moving_average,
    percentile_over_window,
    rate,
)
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricsStore

__all__ = [
    "TimeSeries",
    "MetricsStore",
    "MetricsCollector",
    "percentile_over_window",
    "moving_average",
    "rate",
    "max_over_window",
    "store_to_csv",
    "loop_result_to_csv",
    "loop_result_to_dict",
    "loop_result_from_dict",
]
