"""CART decision tree classifier, implemented from scratch.

Binary classification with Gini impurity and axis-aligned threshold
splits — the standard tool for the paper's Table 1 study (which metrics
identify bottleneck services).  No external ML dependency is available in
this environment, and the task is small, so the plain O(n·d·log n)
exact-split implementation is more than enough.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: int = 0
    probability: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Greedy CART tree for binary labels {0, 1}."""

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        min_impurity_decrease: float = 1e-7,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self._root: _Node | None = None
        self.n_features_: int | None = None

    # -- fitting ------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples x features)")
        if y.shape != (X.shape[0],):
            raise ValueError("y must align with X rows")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary {0, 1}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        positives = int(y.sum())
        node = _Node(
            prediction=int(positives * 2 >= y.size),
            probability=positives / y.size,
        )
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_samples_leaf
            or positives == 0
            or positives == y.size
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n = y.size
        parent_counts = np.asarray([n - y.sum(), y.sum()], dtype=np.float64)
        parent_gini = _gini(parent_counts)
        best: tuple[float, int, float] | None = None
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative label counts left of each candidate boundary.
            ones_left = np.cumsum(ys)[:-1]
            counts_left = np.arange(1, n)
            valid = xs[1:] > xs[:-1] + 1e-12  # only between distinct values
            valid &= counts_left >= self.min_samples_leaf
            valid &= (n - counts_left) >= self.min_samples_leaf
            if not valid.any():
                continue
            zeros_left = counts_left - ones_left
            ones_right = ys.sum() - ones_left
            zeros_right = (n - counts_left) - ones_right
            with np.errstate(invalid="ignore", divide="ignore"):
                gini_left = 1.0 - (
                    (zeros_left / counts_left) ** 2 + (ones_left / counts_left) ** 2
                )
                right_n = n - counts_left
                gini_right = 1.0 - (
                    (zeros_right / right_n) ** 2 + (ones_right / right_n) ** 2
                )
            weighted = (counts_left * gini_left + right_n * gini_right) / n
            weighted = np.where(valid, weighted, np.inf)
            idx = int(np.argmin(weighted))
            decrease = parent_gini - weighted[idx]
            if decrease < self.min_impurity_decrease:
                continue
            threshold = 0.5 * (xs[idx] + xs[idx + 1])
            if best is None or weighted[idx] < best[0]:
                best = (float(weighted[idx]), feature, float(threshold))
        if best is None:
            return None
        return best[1], best[2]

    # -- inference -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() before predict()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("X shape does not match the fitted tree")
        return np.asarray([self._walk(row).prediction for row in X], dtype=np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() before predict_proba()")
        X = np.asarray(X, dtype=np.float64)
        return np.asarray([self._walk(row).probability for row in X])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y)
        return float((self.predict(X) == y).mean())

    def _walk(self, row: np.ndarray) -> _Node:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def depth(self) -> int:
        def _d(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("fit() before depth()")
        return _d(self._root)
