"""Jaeger-like tracing: per-visit spans.

The paper collects ``self_time`` and ``duration`` from Jaeger for its
bottleneck-classification study (Table 1) while stressing that PEMA itself
never consumes traces.  The DES mirrors that: tracing is opt-in and feeds
only the analysis package.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Span", "TraceLog"]


@dataclass(frozen=True, slots=True)
class Span:
    """One service visit inside one request."""

    request_id: int
    service: str
    start: float
    end: float
    cpu_time: float
    """Pure CPU execution time (Jaeger's self_time analogue)."""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def queue_wait(self) -> float:
        """Time not spent executing: throttle stalls + I/O waits."""
        return max(self.duration - self.cpu_time, 0.0)


class TraceLog:
    """Bounded in-memory span sink."""

    def __init__(self, max_spans: int = 500_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0

    def record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def by_service(self, service: str) -> list[Span]:
        return [s for s in self.spans if s.service == service]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
