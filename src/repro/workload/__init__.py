"""Workload generation: constant/step/burst/diurnal request-rate traces."""

from repro.workload.generators import (
    BurstWorkload,
    ConstantWorkload,
    RampWorkload,
    SinusoidalWorkload,
    StepWorkload,
)
from repro.workload.replay import ReplaySegment, ReplayTrace, rate_schedule
from repro.workload.trace import (
    NoisyTrace,
    PhasedTrace,
    ScaledTrace,
    WorkloadTrace,
    batch_rates,
    sample_range,
)
from repro.workload.wikipedia import WikipediaTrace

__all__ = [
    "WorkloadTrace",
    "NoisyTrace",
    "PhasedTrace",
    "ScaledTrace",
    "batch_rates",
    "sample_range",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "SinusoidalWorkload",
    "BurstWorkload",
    "WikipediaTrace",
    "ReplaySegment",
    "ReplayTrace",
    "rate_schedule",
]
