"""DES event queue."""

import pytest

from repro.sim.des.events import EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.CPU_DONE)
        q.push(2.0, EventKind.WAIT_DONE)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventKind.CPU_DONE, EventKind.WAIT_DONE,
                         EventKind.ARRIVAL]

    def test_fifo_for_ties(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, payload="first")
        q.push(1.0, EventKind.ARRIVAL, payload="second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_clock_advances(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL)
        q.pop()
        assert q.now == 5.0

    def test_cannot_schedule_past(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL)
        q.pop()
        with pytest.raises(ValueError):
            q.push(4.0, EventKind.ARRIVAL)

    def test_tiny_negative_jitter_clamped(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL)
        q.pop()
        q.push(5.0 - 1e-12, EventKind.ARRIVAL)  # within tolerance
        assert q.pop().time == 5.0

    def test_peek(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.peek_time()
        q.push(2.0, EventKind.ARRIVAL)
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_epoch_carried(self):
        q = EventQueue()
        q.push(1.0, EventKind.CPU_DONE, epoch=7)
        assert q.pop().epoch == 7
