"""CI gate for the DES engine: vectorized fidelity + speedup + batch coverage.

Three gates in one artifact:

* **fidelity** — the vectorized :class:`MicroserviceSimulator` must be
  bit-identical to the retained scalar :class:`ReferenceSimulator`
  (IntervalMetrics, started/completed counters, and every recorded span)
  across arrival processes and seeds, and a whole DES sweep-cell payload
  run through the experiment worker must be byte-identical between
  ``mode="reference"`` and ``mode="vectorized"``;
* **speedup** — the vectorized simulator must run at least
  ``--min-speedup`` times faster than the reference on the
  ``bench_des_validation`` workload shape (best-of ``--repeats``);
* **coverage** — every spec of every shipped grid in
  ``benchmarks/grids/*.json`` must classify as batchable
  (``classify_unit`` returns no fallback reason), so ``--batch`` never
  silently degrades to scalar on a shipped figure.

Writes a ``BENCH_des.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/des_gate.py \
        --out BENCH_des.json --min-speedup 3.0 --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps import build_app
from repro.experiments import ExperimentSpec
from repro.experiments.runner import _run_unit_worker
from repro.sim.des import MicroserviceSimulator, ReferenceSimulator, SimConfig
from repro.sim.types import Allocation
from repro.sweeps import SweepGrid
from repro.sweeps.batched import classify_unit

WORKLOAD = 200.0
SIM_SECONDS = 8.0
WARMUP_SECONDS = 2.0
SEEDS = (0, 1, 82)
ARRIVALS = ("mmpp", "poisson")


def _identity_pair(app, alloc, arrivals: str, seed: int):
    """(reference, vectorized) runs of one scenario, traces on."""
    pair = []
    for cls in (ReferenceSimulator, MicroserviceSimulator):
        cfg = SimConfig(arrivals=arrivals, trace=True)
        sim = cls(app, alloc, WORKLOAD, config=cfg, seed=seed)
        metrics = sim.run(SIM_SECONDS, warmup=WARMUP_SECONDS)
        pair.append((sim, metrics))
    return pair


def _spans(sim) -> list[tuple]:
    return [
        (s.request_id, s.service, s.start, s.end, s.cpu_time)
        for s in sim.traces.spans
    ]


def check_fidelity(app, alloc, failures: list[str]) -> dict:
    scenarios = 0
    for arrivals in ARRIVALS:
        for seed in SEEDS:
            tag = f"fidelity[{arrivals},seed={seed}]"
            (ref, m_ref), (vec, m_vec) = _identity_pair(
                app, alloc, arrivals, seed
            )
            scenarios += 1
            if m_ref != m_vec:
                failures.append(f"{tag}: IntervalMetrics diverge")
            if (ref.window.started, ref.window.completed) != (
                vec.window.started,
                vec.window.completed,
            ):
                failures.append(f"{tag}: request counters diverge")
            if _spans(ref) != _spans(vec):
                failures.append(f"{tag}: trace spans diverge")
    return {"scenarios": scenarios, "seeds": list(SEEDS),
            "arrivals": list(ARRIVALS)}


def check_payload_identity(failures: list[str]) -> dict:
    """One full sweep-cell payload, byte-compared across engine modes."""
    payloads = {}
    for mode in ("reference", "vectorized"):
        spec = ExperimentSpec(
            app="sockshop",
            workload=150.0,
            n_steps=2,
            seed=7,
            engine={
                "kind": "des",
                "params": {
                    "sim_seconds": 2.0,
                    "warmup_seconds": 0.5,
                    "mode": mode,
                },
            },
        )
        payloads[mode] = json.dumps(
            _run_unit_worker(spec.to_dict(), 0), sort_keys=True
        )
    if payloads["reference"] != payloads["vectorized"]:
        failures.append("payload: DES sweep-cell bytes differ across modes")
    return {"bytes": len(payloads["vectorized"])}


def timed_seconds(cls, app, alloc, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one mode over all seeds (no traces)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for seed in SEEDS:
            cfg = SimConfig(arrivals="mmpp")
            sim = cls(app, alloc, WORKLOAD, config=cfg, seed=seed)
            sim.run(SIM_SECONDS, warmup=WARMUP_SECONDS)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def check_grid_coverage(grids_dir: Path, failures: list[str]) -> dict:
    """Every shipped grid spec must classify as batchable."""
    coverage: dict = {}
    for grid_path in sorted(grids_dir.glob("*.json")):
        grid = SweepGrid.read(grid_path)
        reasons: dict[str, int] = {}
        for cell in grid.cells():
            _, reason = classify_unit(cell.spec)
            if reason is not None:
                reasons[reason] = reasons.get(reason, 0) + 1
        coverage[grid_path.name] = {
            "cells": grid.n_cells,
            "fallbacks": reasons,
        }
        if reasons:
            failures.append(
                f"coverage: {grid_path.name} would fall back under --batch: "
                f"{reasons}"
            )
    return coverage


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_des.json")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing runs per mode (best one counts)")
    parser.add_argument("--grids", default="benchmarks/grids")
    args = parser.parse_args(argv)

    failures: list[str] = []
    bench: dict = {
        "min_speedup": args.min_speedup,
        "workload_rps": WORKLOAD,
        "sim_seconds": SIM_SECONDS,
        "warmup_seconds": WARMUP_SECONDS,
    }

    app = build_app("sockshop")
    alloc = Allocation({name: 2.0 for name in app.service_names})

    bench["fidelity"] = check_fidelity(app, alloc, failures)
    bench["payload"] = check_payload_identity(failures)
    bench["coverage"] = check_grid_coverage(Path(args.grids), failures)

    repeats = max(args.repeats, 1)
    ref_seconds = timed_seconds(ReferenceSimulator, app, alloc, repeats)
    vec_seconds = timed_seconds(MicroserviceSimulator, app, alloc, repeats)
    speedup = ref_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    if speedup < args.min_speedup:
        failures.append(
            f"vectorized speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x ({ref_seconds * 1000:.1f} ms vs "
            f"{vec_seconds * 1000:.1f} ms best-of-{repeats})"
        )
    bench["timed"] = {
        "reference_seconds": ref_seconds,
        "vectorized_seconds": vec_seconds,
        "repeats": repeats,
    }
    bench["speedup"] = speedup
    bench["passed"] = not failures
    bench["failures"] = failures

    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"des gate passed: vectorized {speedup:.2f}x reference "
          f"({ref_seconds * 1000:.1f} vs {vec_seconds * 1000:.1f} ms), "
          f"all shipped grids batchable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
