"""Chunked, cache-aware sweep execution.

``run_sweep_cached`` is the resumable counterpart of
:func:`repro.experiments.run_sweep`: it expands specs to (spec, repeat)
unit tasks, satisfies whatever it can from a :class:`SweepStore`, and fans
the remainder out over processes in bounded chunks — each chunk's results
are persisted and reported through a progress callback as soon as the
chunk lands, instead of one giant end-of-run gather.  Killing a sweep
between chunks therefore loses at most one chunk of work, and re-running
with the same store recomputes only the units that never completed.

``batch=True`` additionally partitions every chunk into compatible
groups (same app, autoscaler kind, and horizon — see
:func:`repro.sweeps.batched.batch_key`) and evaluates each group as one
NumPy-vectorized batch inside a single worker call; units no group can
hold (DES engine, custom engine params, unknown hooks) fall back to the
scalar worker, with per-reason counts reported in
``SweepReport.fallbacks``.  Batched and scalar execution produce byte-identical
payloads, so a store is freely shared between the two modes.

Every unit rebuilds its components from the serialized spec whether it
runs inline, in a worker, or comes back from the cache (results round-trip
losslessly through JSON), so serial, parallel, cold, resumed, and batched
runs all produce byte-identical artifacts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.bench.parallel import run_parallel
from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.runner import (
    _run_unit_worker,
    optimum_cache_info,
    optimum_store,
)
from repro.experiments.spec import ExperimentSpec
from repro.sweeps.grid import SweepCell, SweepGrid
from repro.sweeps.store import SweepStore

__all__ = [
    "SweepProgress",
    "SweepReport",
    "GridRun",
    "run_sweep_cached",
    "run_grid",
]

OnProgress = Callable[["SweepProgress"], None]


@dataclass(frozen=True)
class SweepProgress:
    """A snapshot delivered after the cache scan and after every chunk.

    ``completed``/``cached``/``computed`` count *units* — (spec, repeat)
    pairs — and are exact even when the final chunk is partial or a chunk
    mixes batched groups with scalar units.  ``cells_completed`` counts
    specs whose every repeat has finished, so multi-repeat sweeps can
    report cell-level progress too.
    """

    total: int
    completed: int
    cached: int
    computed: int
    chunk: int
    n_chunks: int
    cells_total: int = 0
    cells_completed: int = 0

    @property
    def done(self) -> bool:
        return self.completed >= self.total


@dataclass
class SweepReport:
    """What one ``run_sweep_cached`` call did (for logs and CI trends)."""

    specs: int
    units: int
    cache_hits: int
    computed: int
    chunks: int
    seconds: float
    batched_units: int = 0
    scalar_units: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)
    """Why computed units ran scalar under ``batch=True``: reason slug →
    unit count (see :func:`repro.sweeps.batched.batch_fallback_reason`).
    Empty when every unit batched, or when batching was off."""
    replay_units: int = 0
    """Units whose workload is the ``replay`` kind (trace-replay cells)."""
    manager_states: int = 0
    """Units that captured a non-null ``manager_state`` payload."""
    optimum: dict[str, Any] = field(default_factory=dict)
    """In-process OPTM cache activity during the sweep: hits, misses,
    store-backed loads, and fresh solves (``optimum_cache_info`` deltas;
    solves inside scalar worker processes are not visible here)."""

    @property
    def units_per_sec(self) -> float:
        return self.units / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "specs": self.specs,
            "units": self.units,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "chunks": self.chunks,
            "seconds": self.seconds,
            "units_per_sec": self.units_per_sec,
            "batched_units": self.batched_units,
            "scalar_units": self.scalar_units,
            "fallbacks": dict(self.fallbacks),
            "replay_units": self.replay_units,
            "manager_states": self.manager_states,
            "optimum": dict(self.optimum),
        }


def _chunked(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _partition_chunk(
    chunk: Sequence[tuple[int, ExperimentSpec, int]],
    batch: bool,
    parallel: int,
    fallbacks: dict[str, int] | None = None,
) -> list[tuple[bool, list[tuple[int, ExperimentSpec, int]]]]:
    """Split one chunk of units into ``(batched?, units)`` worker tasks.

    Scalar mode keeps the historical one-unit-per-task granularity.
    Batch mode groups compatible units (first-appearance order) and caps
    each group at an even share of the chunk so ``parallel`` workers all
    get work even when the whole chunk is one compatible family; each
    incompatible unit's reason slug is tallied into ``fallbacks``.
    """
    if not batch:
        return [(False, [unit]) for unit in chunk]
    from repro.sweeps.batched import classify_unit

    tasks: list[tuple[bool, list[tuple[int, ExperimentSpec, int]]]] = []
    groups: dict[tuple, list[tuple[int, ExperimentSpec, int]]] = {}
    for unit in chunk:
        key, reason = classify_unit(unit[1])
        if key is None:
            if fallbacks is not None:
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
            tasks.append((False, [unit]))
        else:
            groups.setdefault(key, []).append(unit)
    cap = max(1, -(-len(chunk) // max(parallel, 1)))  # ceil division
    for units in groups.values():
        for start in range(0, len(units), cap):
            tasks.append((True, units[start : start + cap]))
    return tasks


def _run_sweep_task(task: dict[str, Any]) -> list[dict]:
    """Worker entry point: one scalar unit or one batched group of units.

    Returns one payload per unit, in task order (plain data in/out, so it
    pickles under any start method).
    """
    units = task["units"]
    if task["batched"]:
        from repro.sweeps.batched import _run_batch_worker

        return _run_batch_worker(units)
    return [
        _run_unit_worker(spec_data, repeat) for spec_data, repeat in units
    ]


def run_sweep_cached(
    specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    batch: bool = False,
    on_progress: OnProgress | None = None,
) -> tuple[list[ExperimentArtifact], SweepReport]:
    """Run every (spec, repeat) unit, reusing and filling ``store``.

    ``reuse=False`` ignores existing entries (a refresh run) but still
    persists fresh results.  ``chunk_size`` bounds how much work is in
    flight between persistence points; the default keeps every worker busy
    without batching the whole sweep into one gather.  ``batch=True``
    evaluates compatible unit groups as vectorized batches (byte-identical
    results; un-batchable units silently run scalar) — the default chunk
    grows accordingly, since a chunk is also the largest possible batch.
    """
    start_time = perf_counter()
    optimum_before = optimum_cache_info()
    specs = list(specs)
    if parallel < 1:
        raise ValueError("parallel must be >= 1")
    if chunk_size is None:
        chunk_size = max(parallel, 1) * (256 if batch else 4)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    tasks = [
        (spec_index, spec, repeat)
        for spec_index, spec in enumerate(specs)
        for repeat in range(spec.repeats)
    ]
    results: dict[tuple[int, int], dict] = {}
    pending: list[tuple[int, ExperimentSpec, int]] = []
    unit_counts = [spec.repeats for spec in specs]
    remaining = list(unit_counts)
    cached = 0
    for spec_index, spec, repeat in tasks:
        payload = (
            store.get_result(spec, repeat) if store and reuse else None
        )
        if payload is not None:
            results[(spec_index, repeat)] = payload
            remaining[spec_index] -= 1
            cached += 1
        else:
            pending.append((spec_index, spec, repeat))

    def cells_completed() -> int:
        return sum(1 for left in remaining if left == 0)

    chunks = list(_chunked(pending, chunk_size))
    if on_progress is not None:
        on_progress(
            SweepProgress(
                total=len(tasks),
                completed=cached,
                cached=cached,
                computed=0,
                chunk=0,
                n_chunks=len(chunks),
                cells_total=len(specs),
                cells_completed=cells_completed(),
            )
        )
    computed = 0
    batched_units = 0
    scalar_units = 0
    fallbacks: dict[str, int] = {}
    # One long-lived pool for the whole sweep: workers are spawned once,
    # not once per chunk (chunking only bounds the persistence interval).
    pool = (
        ProcessPoolExecutor(max_workers=min(parallel, len(pending)))
        if parallel > 1 and len(pending) > 1
        else None
    )
    try:
        for chunk_index, chunk in enumerate(chunks, start=1):
            worker_tasks = _partition_chunk(chunk, batch, parallel, fallbacks)
            raw = run_parallel(
                _run_sweep_task,
                [
                    dict(
                        task={
                            "batched": batched,
                            "units": [
                                [spec.to_dict(), repeat]
                                for _, spec, repeat in units
                            ],
                        }
                    )
                    for batched, units in worker_tasks
                ],
                max_workers=parallel,
                pool=pool,
            )
            for (batched, units), payloads in zip(worker_tasks, raw):
                for (spec_index, spec, repeat), payload in zip(
                    units, payloads
                ):
                    if store is not None:
                        store.put_result(spec, repeat, payload)
                    results[(spec_index, repeat)] = payload
                    remaining[spec_index] -= 1
                    computed += 1
                    if batched:
                        batched_units += 1
                    else:
                        scalar_units += 1
            if on_progress is not None:
                on_progress(
                    SweepProgress(
                        total=len(tasks),
                        completed=cached + computed,
                        cached=cached,
                        computed=computed,
                        chunk=chunk_index,
                        n_chunks=len(chunks),
                        cells_total=len(specs),
                        cells_completed=cells_completed(),
                    )
                )
    finally:
        if pool is not None:
            pool.shutdown()

    artifacts = [
        ExperimentArtifact.from_payloads(
            spec,
            [results[(spec_index, repeat)] for repeat in range(spec.repeats)],
        )
        for spec_index, spec in enumerate(specs)
    ]
    optimum_after = optimum_cache_info()
    report = SweepReport(
        specs=len(specs),
        units=len(tasks),
        cache_hits=cached,
        computed=computed,
        chunks=len(chunks),
        seconds=perf_counter() - start_time,
        batched_units=batched_units,
        scalar_units=scalar_units,
        fallbacks=dict(sorted(fallbacks.items())),
        replay_units=sum(
            spec.repeats for spec in specs if spec.workload.kind == "replay"
        ),
        manager_states=sum(
            1
            for payload in results.values()
            if payload.get("manager_state") is not None
        ),
        optimum={
            counter: optimum_after[counter] - optimum_before[counter]
            for counter in ("hits", "misses", "store_hits", "solved")
        },
    )
    return artifacts, report


@dataclass(frozen=True)
class GridRun:
    """An expanded grid together with one artifact per cell."""

    grid: SweepGrid
    cells: tuple[SweepCell, ...]
    artifacts: tuple[ExperimentArtifact, ...]
    report: SweepReport

    def __iter__(self):
        return iter(zip(self.cells, self.artifacts))

    def artifact(self, **coords: str) -> ExperimentArtifact:
        """The artifact of the unique cell matching the given coordinates."""
        matches = [
            artifact
            for cell, artifact in zip(self.cells, self.artifacts)
            if all(cell.coords.get(k) == v for k, v in coords.items())
        ]
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} cells match {coords} in grid "
                f"{self.grid.name!r}"
            )
        return matches[0]


def run_grid(
    grid: SweepGrid,
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    batch: bool = False,
    on_progress: OnProgress | None = None,
    cells: Sequence[SweepCell] | None = None,
) -> GridRun:
    """Expand ``grid`` and execute every cell through the cached scheduler.

    While the sweep runs, ``store`` also backs the optimum-search cache, so
    OPTM baselines computed alongside grid cells persist across runs too.
    Callers that already expanded the grid (e.g. to validate or count it)
    pass their ``cells`` list to avoid re-expanding.
    """
    cells = tuple(grid.cells() if cells is None else cells)
    with optimum_store(store):
        artifacts, report = run_sweep_cached(
            [cell.spec for cell in cells],
            store=store,
            reuse=reuse,
            parallel=parallel,
            chunk_size=chunk_size,
            batch=batch,
            on_progress=on_progress,
        )
    return GridRun(
        grid=grid, cells=cells, artifacts=tuple(artifacts), report=report
    )
