"""Value objects of the streaming control plane.

A :class:`MetricSample` is what flows *into* the service: one app's
offered load for one control interval, produced by a load driver (or, in
a deployment, a metrics pipeline).  A :class:`Decision` is what flows
*out*: the interval record the autoscaler observed plus the allocation
it chose for the next interval.  Decision records use exactly the
offline runner's JSON encoding
(:func:`repro.metrics.export.loop_record_to_dict`), so a streamed
decision history and an offline :class:`~repro.core.loop.LoopResult`
compare byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.loop import LoopRecord
from repro.metrics.export import loop_record_to_dict
from repro.sim.types import Allocation

__all__ = ["MetricSample", "Decision", "ServiceError"]


class ServiceError(RuntimeError):
    """A control-plane protocol violation (bad app id, out-of-order tick)."""


@dataclass(frozen=True)
class MetricSample:
    """One app's offered load for one control interval.

    ``step`` is the interval index the sample belongs to; ``None`` lets
    the guardian assign the next expected step (the common case for live
    drivers).  An explicit ``step`` that does not match the guardian's
    clock is a :class:`ServiceError` — a skipped or duplicated interval
    would silently break the determinism contract, so it fails loudly.
    """

    app: str
    rps: float
    step: int | None = None


@dataclass(frozen=True)
class Decision:
    """One autoscaling decision: the observed interval and what comes next.

    ``record`` is the interval the allocation *served* (the offline
    loop's :class:`~repro.core.loop.LoopRecord` for the same step);
    ``next_allocation`` is what the autoscaler chose for the following
    interval.
    """

    app: str
    step: int
    record: LoopRecord
    next_allocation: Allocation

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``/decisions`` endpoint's rows).

        The ``record`` sub-object is byte-compatible with the offline
        runner's history encoding; the ``next_*`` fields are the
        service-only additions.
        """
        return {
            "app": self.app,
            "step": self.step,
            "record": loop_record_to_dict(self.record),
            "next_allocation": [
                [name, self.next_allocation[name]]
                for name in self.next_allocation.names
            ],
            "next_total_cpu": self.next_allocation.total(),
        }
