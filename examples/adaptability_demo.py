#!/usr/bin/env python
"""Adaptability: PEMA re-converges after hardware and SLO changes.

Reproduces the paper's Figs. 19-20 story in one run on SockShop, with
every mid-run intervention declared as a hook in the experiment spec:

* at iteration 25 the cluster's clock drops 1.8 -> 1.6 GHz (speed 0.889
  relative to nominal — a hardware change that raises CPU demand);
* at iteration 45 it rises to 2.0 GHz (speed 1.111);
* at iteration 65 the SLO tightens 250 -> 200 ms;
* at iteration 85 it relaxes to 300 ms.

No retraining happens anywhere — the same feedback loop just keeps
navigating.  Because the hooks live in the spec, the whole scenario
round-trips through JSON and replays identically from the CLI.

Run:  python examples/adaptability_demo.py
"""

from repro.experiments import ExperimentSpec, HookSpec, run_experiment

NOMINAL_GHZ = 1.8
SPEC = ExperimentSpec(
    name="adaptability-sockshop",
    app="sockshop",
    workload=700.0,
    n_steps=105,
    seed=5,
    hooks=(
        HookSpec("set_cpu_speed", {"at": 25, "speed": 1.6 / NOMINAL_GHZ}),
        HookSpec("set_cpu_speed", {"at": 45, "speed": 2.0 / NOMINAL_GHZ}),
        HookSpec("set_slo", {"at": 65, "slo": 0.200}),
        HookSpec("set_slo", {"at": 85, "slo": 0.300}),
    ),
)

def event_labels(spec: ExperimentSpec) -> dict[int, str]:
    """Printable annotations derived from the spec's own hook schedule."""
    labels = {}
    for hook in spec.hooks:
        if hook.kind == "set_cpu_speed":
            ghz = hook.params["speed"] * NOMINAL_GHZ
            labels[hook.params["at"]] = f"clock -> {ghz:.1f} GHz"
        elif hook.kind == "set_slo":
            labels[hook.params["at"]] = f"SLO -> {hook.params['slo'] * 1000:.0f} ms"
    return labels


def main() -> None:
    print("spec (hooks declare the mid-run events):")
    print(SPEC.to_json())

    artifact = run_experiment(SPEC)
    result = artifact.results[0]
    labels = event_labels(SPEC)

    print("\niter  slo_ms  total_cpu  p95_ms  violated")
    for record in result.records[::5]:
        label = labels.get(record.step)
        print(f"{record.step:4d}  {record.slo * 1000:6.0f}  "
              f"{record.total_cpu:9.2f}  {record.response * 1000:6.0f}  "
              f"{'x' if record.violated else ''}"
              + (f"   <- {label}" if label else ""))

    segs = {
        "baseline (1.8 GHz, 250 ms)": slice(18, 25),
        "slow clock (1.6 GHz)": slice(38, 45),
        "fast clock (2.0 GHz)": slice(58, 65),
        "tight SLO (200 ms)": slice(78, 85),
        "loose SLO (300 ms)": slice(100, 105),
    }
    print("\nsettled total CPU by regime:")
    for label, seg in segs.items():
        cpu = result.total_cpu[seg].mean()
        print(f"  {label:28s} {cpu:6.2f}")


if __name__ == "__main__":
    main()
