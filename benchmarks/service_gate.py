"""CI gate: the always-on control plane, streaming vs offline.

Boots a :class:`repro.service.ServiceRuntime` (HTTP API on an ephemeral
port), registers several apps, streams each app's own trace through the
``replay`` load driver, and asserts the service's core guarantees:

* **decision parity** — every app's streamed decision history must be
  byte-identical (canonical JSON) to the offline runner's unit payload
  for the same (spec, repeat);
* **cache warm-up** — the shutdown flush must land each complete run
  under the sweep-store unit key, byte-identical to the offline bytes;
* **HTTP surface** — ``/apps``, ``/decisions``, and ``/state`` must
  answer consistently with the streamed run;
* **throughput** — the service must sustain at least ``--min-ticks-sec``
  control-loop ticks per second across the fleet (best-of
  ``--repeats`` storeless drives).

Writes a ``BENCH_service.json`` artifact with the measured numbers
either way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/service_gate.py \
        --out BENCH_service.json --min-ticks-sec 200
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import urllib.request
from pathlib import Path
from time import perf_counter

from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.service import ServiceRuntime, ServiceStateStore, service_session
from repro.sweeps import SweepStore

APPS = ("sockshop", "hotelreservation", "trainticket")


def gate_specs(n_steps: int) -> list[ExperimentSpec]:
    """One spec per prototype app, diverse traces and autoscalers."""
    return [
        ExperimentSpec.from_dict({
            "name": "sockshop-svc",
            "app": "sockshop",
            "workload": {"kind": "sinusoid",
                         "params": {"low": 200.0, "high": 700.0,
                                    "period": 6000.0}},
            "n_steps": n_steps,
            "seed": 11,
            "capture": ["manager_state"],
        }),
        ExperimentSpec.from_dict({
            "name": "hotelreservation-svc",
            "app": "hotelreservation",
            "workload": {"kind": "wikipedia",
                         "params": {"low_rps": 250.0, "high_rps": 900.0}},
            "n_steps": n_steps,
            "seed": 7,
        }),
        ExperimentSpec.from_dict({
            "name": "trainticket-svc",
            "app": "trainticket",
            "workload": {"kind": "ramp",
                         "params": {"start_rps": 120.0, "end_rps": 260.0,
                                    "duration": 6000.0}},
            "n_steps": n_steps,
            "autoscaler": {"kind": "rule"},
            "engine": {"seed_offset": 2000},
            "seed": 3,
        }),
    ]


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def http_get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def timed_ticks_per_sec(specs, repeats: int) -> dict:
    """Best-of-``repeats`` streaming throughput (no store, no HTTP)."""
    total = sum(spec.n_steps for spec in specs)
    best = None
    for _ in range(repeats):
        runtime = ServiceRuntime()
        runtime.start()
        for spec in specs:
            runtime.register(spec)
        start = perf_counter()
        runtime.drive()
        seconds = perf_counter() - start
        runtime.shutdown()
        if best is None or seconds < best:
            best = seconds
    return {
        "ticks": total,
        "seconds": best,
        "ticks_per_sec": total / best if best > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--steps", type=int, default=40,
                        help="control intervals streamed per app")
    parser.add_argument("--min-ticks-sec", type=float, default=200.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing drives (best one counts)")
    parser.add_argument("--state-root", default=None,
                        help="state-store directory (default: a fresh "
                        "temporary directory)")
    args = parser.parse_args(argv)

    tmp_state = None
    if args.state_root:
        state_root = Path(args.state_root)
    else:  # don't litter the working tree with state entries
        tmp_state = tempfile.TemporaryDirectory(prefix="service-gate-state-")
        state_root = Path(tmp_state.name)

    failures: list[str] = []
    bench: dict = {
        "apps": len(APPS),
        "steps_per_app": args.steps,
        "min_ticks_sec": args.min_ticks_sec,
    }

    specs = gate_specs(args.steps)
    offline = {
        spec.name: dumps(_run_unit_worker(spec.to_dict(), 0))
        for spec in specs
    }

    store_backend = SweepStore(state_root)
    store_backend.clear()
    store = ServiceStateStore(store_backend)
    with service_session(specs, store=store, http=True) as runtime:
        submitted = runtime.drive()
        expected = len(specs) * args.steps
        if submitted != expected:
            failures.append(
                f"drive submitted {submitted} ticks, expected {expected}"
            )
        base = runtime.url
        status = http_get(base, "/apps")
        if status["ticks"] != expected:
            failures.append(
                f"/apps reports {status['ticks']} ticks, "
                f"expected {expected}"
            )
        for spec in specs:
            guardian = runtime.orchestrator.guardians[spec.name]
            streamed = dumps(guardian.result_payload())
            if streamed != offline[spec.name]:
                failures.append(
                    f"{spec.name}: streamed decision history differs "
                    f"from the offline runner's payload"
                )
            row = http_get(base, f"/apps/{spec.name}")
            if not row["complete"] or row["error"]:
                failures.append(
                    f"{spec.name}: /apps row not complete/clean: "
                    f"{row['steps_done']} steps, error {row['error']!r}"
                )
            feed = http_get(base, f"/decisions?app={spec.name}")
            if feed["total"] != args.steps:
                failures.append(
                    f"{spec.name}: /decisions total {feed['total']} != "
                    f"{args.steps}"
                )
            last = feed["decisions"][-1]["record"]
            offline_last = json.loads(offline[spec.name])["records"][-1]
            if dumps(last) != dumps(offline_last):
                failures.append(
                    f"{spec.name}: /decisions last record differs from "
                    f"the offline history"
                )
            state = http_get(base, f"/state?app={spec.name}")
            if state["step"] != args.steps:
                failures.append(
                    f"{spec.name}: /state step {state['step']} != "
                    f"{args.steps}"
                )

    # After shutdown: every complete run warmed the sweep cache.
    check_store = SweepStore(state_root)
    for spec in specs:
        cached = check_store.get_result(spec, 0)
        if cached is None:
            failures.append(f"{spec.name}: no sweep-store unit entry")
        elif dumps(cached) != offline[spec.name]:
            failures.append(
                f"{spec.name}: flushed unit entry differs from the "
                f"offline bytes"
            )
    bench["unit_entries"] = store.unit_entries
    bench["snapshots"] = store.snapshots

    timed = timed_ticks_per_sec(specs, max(args.repeats, 1))
    bench["timed"] = timed
    bench["timing_repeats"] = max(args.repeats, 1)
    if timed["ticks_per_sec"] < args.min_ticks_sec:
        failures.append(
            f"service throughput {timed['ticks_per_sec']:.1f} ticks/sec "
            f"< required {args.min_ticks_sec:.1f}"
        )

    bench["passed"] = not failures
    bench["failures"] = failures
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if tmp_state is not None:
        tmp_state.cleanup()
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"service gate passed: {len(APPS)} apps, streaming equals "
          f"offline, {timed['ticks_per_sec']:.0f} ticks/sec")
    return 0


if __name__ == "__main__":
    sys.exit(main())
