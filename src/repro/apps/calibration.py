"""Per-application calibration constants.

The paper reports absolute CPU totals for each prototype (optimum ≈ 8.8 CPU
for SockShop at 700 rps, Fig. 11; the Fig. 5 totals per workload level).
Two scale factors per app map our relative service parameters onto those
magnitudes:

* ``demand_scale`` multiplies every service's CPU demand per visit — sets
  where the optimum total CPU lands;
* ``floor_scale`` multiplies every latency floor — sets where the
  amply-provisioned latency sits relative to the SLO (the paper's runs
  start at roughly 0.5-0.7 × SLO).

Values were fitted numerically with :func:`fit_scales` (run offline; see
EXPERIMENTS.md) and are applied by :func:`repro.apps.registry.build_app`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AppCalibration", "CALIBRATIONS", "fit_scales"]


@dataclass(frozen=True)
class AppCalibration:
    demand_scale: float
    floor_scale: float
    # Reference points from the paper used during fitting:
    reference_workload: float
    target_optimum_total: float


# Fitted so that the OPTM search (paper's definition: any further -0.1 CPU
# step on any service violates the SLO) lands near the paper's totals at the
# reference workloads, and generous allocations sit at ~0.5-0.7 x SLO.
CALIBRATIONS: dict[str, AppCalibration] = {
    "sockshop": AppCalibration(
        demand_scale=0.0617,
        floor_scale=2.4967,
        reference_workload=700.0,
        target_optimum_total=8.8,
    ),
    "trainticket": AppCalibration(
        demand_scale=0.3221,
        floor_scale=1.1386,
        reference_workload=200.0,
        target_optimum_total=42.0,
    ),
    "hotelreservation": AppCalibration(
        demand_scale=0.1830,
        floor_scale=1.9410,
        reference_workload=500.0,
        target_optimum_total=6.9,
    ),
}


def fit_scales(
    app_name: str,
    *,
    demand_grid: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    verbose: bool = False,
) -> tuple[float, float]:
    """Offline helper that fits (demand_scale, floor_scale) for one app.

    Coarse grid over demand_scale targeting the paper's optimum total, then
    a floor_scale that puts the bottleneck-knee latency at the SLO.  Used
    during development to produce the constants above; not needed at
    runtime.
    """
    from repro.apps.registry import build_app
    from repro.baselines.optm import OptimumSearch
    from repro.sim.engine import AnalyticalEngine

    cal = CALIBRATIONS[app_name]
    best: tuple[float, float, float] | None = None
    for ds in demand_grid:
        app = build_app(app_name, demand_scale=ds, floor_scale=1.0)
        engine = AnalyticalEngine(app)
        search = OptimumSearch(engine)
        result = search.find(cal.reference_workload)
        err = abs(result.allocation.total() - cal.target_optimum_total)
        if verbose:  # pragma: no cover - dev tooling
            print(f"demand_scale={ds}: total={result.allocation.total():.2f}")
        if best is None or err < best[2]:
            best = (ds, 1.0, err)
    assert best is not None
    return best[0], best[1]
