"""SockShop — 13-microservice e-commerce prototype (paper Fig. 2).

Front-end in NodeJS, ``orders``/``carts``/``queue-master`` in Java, the rest
in Go; MySQL behind the catalogue and MongoDB behind user/orders/carts;
RabbitMQ connects shipping to queue-master.  SLO: p95 end-to-end response
of **250 ms** (paper §2.1).

Demand/floor scales are calibrated in :mod:`repro.apps.calibration` so that
the optimum total CPU lands near the paper's reported values (≈8.8 CPU at
700 rps, Fig. 11; 6.3/7.7/14.1 at 250/550/950 rps, Fig. 5).
"""

from __future__ import annotations

from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage

__all__ = ["sockshop"]

SLO_SECONDS = 0.250

# (name, cpu_demand_ms, floor_ms, burstiness, tier, language)
_SERVICES: tuple[tuple[str, float, float, float, str, str], ...] = (
    ("frontend", 3.0, 16.0, 7.0, "frontend", "nodejs"),
    ("catalogue", 1.2, 8.0, 3.0, "logic", "go"),
    ("catalogue-db", 1.5, 10.0, 4.0, "db", "mysql"),
    ("user", 0.8, 6.0, 3.0, "logic", "go"),
    ("user-db", 1.0, 8.0, 4.0, "db", "mongodb"),
    ("carts", 2.2, 12.0, 6.0, "logic", "java"),
    ("carts-db", 1.2, 8.0, 4.0, "db", "mongodb"),
    ("orders", 2.5, 14.0, 6.0, "logic", "java"),
    ("orders-db", 1.2, 8.0, 4.0, "db", "mongodb"),
    ("payment", 0.5, 5.0, 2.5, "logic", "go"),
    ("shipping", 0.6, 5.0, 2.5, "logic", "go"),
    ("queue", 0.4, 4.0, 2.0, "queue", "rabbitmq"),
    ("queue-master", 0.8, 6.0, 3.0, "logic", "java"),
)


def _classes() -> tuple[RequestClass, ...]:
    browse = RequestClass(
        name="browse",
        weight=0.45,
        stages=(
            Stage.seq("frontend"),
            Stage.seq("catalogue"),
            Stage.seq("catalogue-db", 2.0),
        ),
    )
    login = RequestClass(
        name="login",
        weight=0.20,
        stages=(
            Stage.seq("frontend"),
            Stage.seq("user"),
            Stage.seq("user-db"),
        ),
    )
    cart = RequestClass(
        name="cart",
        weight=0.20,
        stages=(
            Stage.seq("frontend"),
            Stage.fanout("carts", ("user", 0.5)),
            Stage.seq("carts-db"),
        ),
    )
    checkout = RequestClass(
        name="checkout",
        weight=0.15,
        stages=(
            Stage.seq("frontend"),
            Stage.seq("orders"),
            Stage.fanout("carts", "user", "payment"),
            Stage.seq("orders-db"),
            Stage.seq("shipping"),
            Stage.seq("queue"),
            Stage.seq("queue-master"),
        ),
    )
    return (browse, login, cart, checkout)


# Fixed runtime overhead per service (smaller stack than TrainTicket's
# JVM fleet, but the Java services still idle-burn CPU).
_BASELINE_BY_LANGUAGE = {
    "nodejs": 0.10,
    "java": 0.12,
    "go": 0.03,
    "mysql": 0.06,
    "mongodb": 0.05,
    "rabbitmq": 0.04,
}


def sockshop(demand_scale: float = 1.0, floor_scale: float = 1.0) -> AppSpec:
    """Build the SockShop application spec.

    ``demand_scale``/``floor_scale`` multiply every service's CPU demand and
    latency floor; callers normally leave them at 1.0 and rely on
    :func:`repro.apps.registry.build_app`, which applies the calibrated
    values.
    """
    services = tuple(
        ServiceSpec(
            name=name,
            cpu_demand=demand_ms * 1e-3 * demand_scale,
            latency_floor=floor_ms * 1e-3 * floor_scale,
            burstiness=burst,
            baseline_cores=_BASELINE_BY_LANGUAGE[lang],
            tier=tier,
            language=lang,
        )
        for name, demand_ms, floor_ms, burst, tier, lang in _SERVICES
    )
    return AppSpec(
        name="sockshop",
        services=services,
        request_classes=_classes(),
        slo=SLO_SECONDS,
        hop_latency=0.001,
        reference_workload=700.0,
        description="E-commerce demo: catalogue browsing, carts, checkout.",
    )
