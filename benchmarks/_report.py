"""Report sink for benchmark output.

Every benchmark regenerates one of the paper's tables/figures as text and
emits it through :func:`emit`: printed to stdout (visible with ``pytest
-s``) and persisted under ``benchmarks/reports/`` so the series survive
the run regardless of output capture.
"""

from __future__ import annotations

from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's report."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} (saved to {path}) ===")
    print(text)
