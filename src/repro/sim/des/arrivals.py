"""Arrival processes: Poisson and Markov-modulated Poisson (MMPP).

Real user traffic is burstier than Poisson; the paper's latency tails come
from exactly that burstiness interacting with CFS quotas.  The 2-state MMPP
alternates between a quiet and a burst state with exponential dwell times,
preserving the requested mean rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PoissonArrivals", "MMPPArrivals"]


class PoissonArrivals:
    """Exponential inter-arrival times at a fixed mean rate."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.rate = rate
        self.rng = rng

    def next_gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))


class MMPPArrivals:
    """2-state Markov-modulated Poisson process with mean rate ``rate``.

    In the burst state the instantaneous rate is ``burst_factor`` times the
    quiet state's; ``burst_fraction`` of time is spent bursting.  Dwell
    times are exponential with mean ``dwell`` seconds in the burst state —
    sub-second by default, the time scale at which bursts interact with
    100 ms CFS periods (and short enough that multi-second measurement
    windows average the modulation out).
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        *,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        dwell: float = 0.25,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if dwell <= 0:
            raise ValueError("dwell must be positive")
        self.rng = rng
        self.dwell_burst = dwell
        self.dwell_quiet = dwell * (1.0 - burst_fraction) / burst_fraction
        # Solve rates so the time-average equals `rate`.
        quiet_weight = (1.0 - burst_fraction) + burst_fraction * burst_factor
        self.rate_quiet = rate / quiet_weight
        self.rate_burst = self.rate_quiet * burst_factor
        self._bursting = False
        self._state_left = float(rng.exponential(self.dwell_quiet))

    def next_gap(self) -> float:
        """Inter-arrival gap, stepping the modulating chain as time passes."""
        gap = 0.0
        while True:
            rate = self.rate_burst if self._bursting else self.rate_quiet
            candidate = float(self.rng.exponential(1.0 / rate))
            if candidate <= self._state_left:
                self._state_left -= candidate
                return gap + candidate
            # State flips before the candidate arrival: discard and redraw
            # in the new state (memorylessness makes this exact).
            gap += self._state_left
            self._bursting = not self._bursting
            mean_dwell = self.dwell_burst if self._bursting else self.dwell_quiet
            self._state_left = float(self.rng.exponential(mean_dwell))
