"""Measurement-noise model."""

import numpy as np
import pytest

from repro.sim.noise import NoiseModel


class TestNoiseModel:
    def test_none_is_identity(self, rng):
        n = NoiseModel.none()
        assert all(n.sample(rng) == 1.0 for _ in range(10))

    def test_mean_near_one(self):
        n = NoiseModel(sigma=0.04, anomaly_prob=0.0)
        rng = np.random.default_rng(0)
        samples = [n.sample(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_anomalies_occur_at_configured_rate(self):
        n = NoiseModel(sigma=0.0, anomaly_prob=0.25, anomaly_low=0.5,
                       anomaly_high=0.5)
        rng = np.random.default_rng(1)
        hits = sum(n.sample(rng) != 1.0 for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(anomaly_prob=1.5)
        with pytest.raises(ValueError):
            NoiseModel(anomaly_low=1.2, anomaly_high=1.1)
        with pytest.raises(ValueError):
            NoiseModel(anomaly_low=0.0)

    def test_determinism_by_seed(self):
        n = NoiseModel()
        a = [n.sample(np.random.default_rng(7)) for _ in range(1)]
        b = [n.sample(np.random.default_rng(7)) for _ in range(1)]
        assert a == b
