"""Extension — vertical vs horizontal scaling (paper §6, unaddressed).

The paper manages CPU purely vertically and defers the horizontal
(replica) dimension.  We quantify the trade-off it hints at, which turns
out to cut both ways:

* small pods ⇒ many replicas ⇒ the per-replica baseline demand (JVM/GC
  overhead per copy) is duplicated — raw CPU exceeds effective CPU;
* large pods ⇒ integer quantization — each of TrainTicket's many small
  services still needs ≥ 1 pod, so coarse pods strand capacity;
* either way, an HPA holding the same QoS provisions substantially more
  raw CPU than vertical RULE, let alone vertical PEMA.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table, optimum_total, pema_run, rule_total
from repro.cluster import HorizontalRuleAutoscaler, ReplicaAllocator
from repro.core import ControlLoop
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload

WORKLOAD = 225.0
POD_SIZES = (0.5, 1.0, 2.0)


def run_ext_horizontal():
    app = build_app("trainticket")
    rows = []
    raw_totals = {}
    for pod in POD_SIZES:
        allocator = ReplicaAllocator(app, pod_cpu=pod, max_replicas=32)
        hpa = HorizontalRuleAutoscaler(
            allocator, target_utilization=0.10, initial_replicas=4
        )
        engine = AnalyticalEngine(app, seed=400)
        result = ControlLoop(
            engine, hpa, ConstantWorkload(WORKLOAD), slo=app.slo
        ).run(30)
        raw = hpa.raw_total()
        raw_totals[pod] = raw
        rows.append(
            [
                f"HPA pod={pod:g}",
                round(raw, 1),
                round(hpa.allocation.total(), 1),
                int(sum(hpa.replicas.values())),
                f"{result.violation_rate() * 100:.0f}%",
            ]
        )
    vertical_rule = rule_total("trainticket", WORKLOAD)
    pema = pema_run("trainticket", WORKLOAD, 60, seed=401).result.settled_total()
    opt = optimum_total("trainticket", WORKLOAD)
    rows.append(["RULE (vertical)", round(vertical_rule, 1), "-", "-", "-"])
    rows.append(["PEMA (vertical)", round(pema, 1), "-", "-", "-"])
    rows.append(["OPTM", round(opt, 1), "-", "-", "-"])
    return rows, raw_totals, vertical_rule, pema


def test_ext_horizontal(benchmark):
    rows, raw_totals, vertical_rule, pema = benchmark.pedantic(
        run_ext_horizontal, rounds=1, iterations=1
    )
    emit(
        "ext_horizontal",
        format_table(
            ["strategy", "raw_cpu", "effective_cpu", "replicas", "violations"],
            rows,
            title="Extension (§6) — horizontal vs vertical scaling, "
            f"TrainTicket @ {WORKLOAD:.0f} rps (per-replica baseline "
            "overhead drives the gap)",
        ),
    )
    # Coarse pods strand capacity on the many small services.
    assert raw_totals[2.0] > raw_totals[1.0]
    # Every horizontal configuration costs more raw CPU than vertical RULE.
    assert min(raw_totals.values()) > vertical_rule
    # Vertical PEMA beats every horizontal configuration on raw CPU.
    assert pema < min(raw_totals.values())
