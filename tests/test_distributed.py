"""Distributed sweep execution: the lease/claim protocol under chaos.

The contract under test: any number of independent workers — claiming,
racing, dying mid-task, being SIGKILLed — pull units from one shared
``SweepStore``, and the merged run is *byte-identical* to an
uninterrupted serial ``run_grid``.  Leases only bound wasted work; the
content-addressed store's idempotent writes carry correctness, which is
why every chaos schedule below must converge with nothing lost and
nothing persisted twice.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.metrics import default_registry
from repro.sweeps import (
    LeaseNamespace,
    SweepStore,
    grid_summary_json,
    merge_grid,
    missing_units,
    plan_tasks,
    run_distributed,
    run_grid,
    run_worker,
    wait_for_grid,
    worker_reports,
)
from tests.conftest import make_small_grid, make_sweep_spec


def entry_bytes(store: SweepStore) -> dict[str, bytes]:
    """Relative path -> bytes of every cache entry (the parity oracle)."""
    return {
        p.relative_to(store.root).as_posix(): p.read_bytes()
        for p in store.entry_paths()
    }


def serial_baseline(grid, root):
    """Uninterrupted serial run: the bytes every chaos run must match."""
    store = SweepStore(root)
    run = run_grid(grid, store=store)
    return grid_summary_json(run), entry_bytes(store)


def grid_specs(grid):
    return [cell.spec for cell in grid.cells()]


class Die(RuntimeError):
    """Raised from the on_task seam: abandons the lease like SIGKILL."""


def dying_worker(specs, store, worker_id, die_after, *, batch=False,
                 chunk_size=1, lease_ttl=0.0):
    """Run a worker that dies after ``die_after`` claim/unit events.

    Returns True if it died mid-task (lease left on disk, unreleased).
    """
    events = 0

    def on_task(stage, task):
        nonlocal events
        if stage in ("claimed", "unit"):
            events += 1
            if events > die_after:
                raise Die(task.task_id)

    try:
        run_worker(
            specs, store, worker_id=worker_id, lease_ttl=lease_ttl,
            chunk_size=chunk_size, batch=batch, poll_interval=0.0,
            on_task=on_task,
        )
    except Die:
        return True
    return False


class TestLeaseNamespace:
    def test_fresh_acquire_is_exclusive(self, tmp_path):
        ns = LeaseNamespace(tmp_path / "leases")
        lease = ns.acquire("task-00000", "alice", ttl=60.0)
        assert lease is not None and not lease.stolen
        assert ns.acquire("task-00000", "bob", ttl=60.0) is None
        record = ns.read("task-00000")
        assert record["worker"] == "alice"
        assert record["token"] == lease.token

    def test_expired_lease_stolen_and_holder_recorded(self, tmp_path):
        ns = LeaseNamespace(tmp_path / "leases")
        now = 1000.0
        assert ns.acquire("t", "alice", ttl=5.0, now=now) is not None
        assert ns.acquire("t", "bob", ttl=5.0, now=now + 4.9) is None
        stolen = ns.acquire("t", "bob", ttl=5.0, now=now + 5.1)
        assert stolen is not None
        assert stolen.stolen and stolen.stolen_from == "alice"
        assert ns.read("t")["worker"] == "bob"

    def test_renew_extends_and_checks_token(self, tmp_path):
        ns = LeaseNamespace(tmp_path / "leases")
        lease = ns.acquire("t", "alice", ttl=5.0, now=1000.0)
        renewed = ns.renew(lease, ttl=5.0, now=1003.0)
        assert renewed.expires == 1008.0
        assert renewed.renewals == 1
        # A stealer takes over; the old holder's renew/release must fail.
        thief = ns.acquire("t", "bob", ttl=5.0, now=2000.0)
        assert thief.stolen
        assert ns.renew(renewed, ttl=5.0, now=2001.0) is None
        assert ns.release(renewed) is False
        assert ns.read("t")["worker"] == "bob"
        assert ns.release(thief) is True
        assert ns.read("t") is None

    def test_unreadable_fresh_file_is_not_stolen(self, tmp_path):
        # A reader can catch a lease between exclusive create and content
        # write; a fresh-by-mtime garbage file must be left alone.
        ns = LeaseNamespace(tmp_path / "leases")
        ns.path_for("t").write_text("{not json")
        assert ns.acquire("t", "bob", ttl=60.0) is None

    def test_unreadable_stale_file_is_reclaimed(self, tmp_path):
        ns = LeaseNamespace(tmp_path / "leases")
        path = ns.path_for("t")
        path.write_text("{not json")
        old = time.time() - 120.0
        os.utime(path, (old, old))
        lease = ns.acquire("t", "bob", ttl=60.0)
        assert lease is not None
        # Garbage has no recorded holder, so there's nobody to be
        # "stolen from" — the takeover reads as a fresh claim.
        assert not lease.stolen
        assert ns.read("t")["worker"] == "bob"

    def test_zero_ttl_makes_leases_instantly_stale(self, tmp_path):
        ns = LeaseNamespace(tmp_path / "leases")
        assert ns.acquire("t", "alice", ttl=0.0, now=1000.0) is not None
        stolen = ns.acquire("t", "bob", ttl=0.0, now=1000.0)
        assert stolen is not None and stolen.stolen_from == "alice"


class TestPlan:
    def test_plan_is_deterministic(self):
        specs = grid_specs(make_small_grid())
        a = plan_tasks(specs, 3)
        b = plan_tasks(list(specs), 3)
        assert a == b

    def test_chunk_size_changes_namespace(self):
        specs = grid_specs(make_small_grid())
        assert plan_tasks(specs, 2).plan_id != plan_tasks(specs, 4).plan_id

    def test_chunking_covers_every_unit_once(self):
        specs = grid_specs(make_small_grid())  # 4 cells x 2 repeats
        plan = plan_tasks(specs, 3)
        assert plan.n_units == 8
        sizes = [len(task.units) for task in plan.tasks]
        assert sizes == [3, 3, 2]
        assert [t.task_id for t in plan.tasks] == [
            "task-00000", "task-00001", "task-00002"
        ]
        flat = [unit for task in plan.tasks for unit in task.units]
        assert sorted(flat) == sorted(set(flat))
        assert len(flat) == plan.n_units

    def test_queue_namespace_disjoint_from_entries(self, sweep_store):
        grid = make_small_grid()
        run_worker(grid_specs(grid), sweep_store, worker_id="w0")
        assert len(sweep_store) == 8
        for path in sweep_store.entry_paths():
            assert "_queue" not in path.parts


class TestSingleWorker:
    def test_byte_identical_to_serial(self, tmp_path, sweep_store):
        grid = make_small_grid()
        summary, payload_bytes = serial_baseline(grid, tmp_path / "serial")
        report = run_worker(grid_specs(grid), sweep_store, worker_id="w0")
        assert report.tasks_done == report.tasks_total
        assert report.units_computed == 8
        run = merge_grid(grid, sweep_store)
        assert grid_summary_json(run) == summary
        assert entry_bytes(sweep_store) == payload_bytes
        # Merge is a pure read: byte-stable on every call.
        assert grid_summary_json(merge_grid(grid, sweep_store)) == summary

    def test_batched_worker_byte_identical(self, tmp_path, sweep_store):
        grid = make_small_grid()
        summary, payload_bytes = serial_baseline(grid, tmp_path / "serial")
        report = run_worker(
            grid_specs(grid), sweep_store, worker_id="w0", batch=True
        )
        assert report.units_batched == 8
        assert grid_summary_json(merge_grid(grid, sweep_store)) == summary
        assert entry_bytes(sweep_store) == payload_bytes

    def test_fast_forward_prepopulated_store(self, sweep_store):
        grid = make_small_grid()
        run_grid(grid, store=sweep_store)
        specs = grid_specs(grid)
        report = run_worker(specs, sweep_store, worker_id="late")
        assert report.tasks_claimed == 0
        assert report.units_computed == 0
        plan = plan_tasks(specs)
        done_dir = sweep_store.queue_root(plan.plan_id) / "done"
        markers = [
            json.loads(p.read_text()) for p in sorted(done_dir.glob("*.json"))
        ]
        assert len(markers) == len(plan.tasks)
        assert all(m.get("fast_forward") for m in markers)

    def test_max_tasks_bounds_claims_then_resume(self, tmp_path, sweep_store):
        grid = make_small_grid()
        summary, _ = serial_baseline(grid, tmp_path / "serial")
        specs = grid_specs(grid)
        first = run_worker(
            specs, sweep_store, worker_id="w0", chunk_size=2, max_tasks=1
        )
        assert first.tasks_claimed == 1
        assert missing_units(specs, sweep_store)
        second = run_worker(specs, sweep_store, worker_id="w1", chunk_size=2)
        assert second.tasks_done == 3
        assert not missing_units(specs, sweep_store)
        assert grid_summary_json(merge_grid(grid, sweep_store)) == summary

    def test_worker_report_persisted(self, sweep_store):
        grid = make_small_grid()
        specs = grid_specs(grid)
        run_worker(specs, sweep_store, worker_id="w0")
        reports = worker_reports(sweep_store, plan_tasks(specs).plan_id)
        assert [r["worker"] for r in reports] == ["w0"]
        assert reports[0]["tasks_done"] == reports[0]["tasks_total"]


class TestMergeAndWait:
    def test_merge_names_missing_units(self, sweep_store):
        grid = make_small_grid()
        with pytest.raises(LookupError, match="missing"):
            merge_grid(grid, sweep_store)

    def test_wait_times_out(self, sweep_store):
        grid = make_small_grid()
        with pytest.raises(TimeoutError, match="missing"):
            wait_for_grid(
                grid, sweep_store, timeout=0.05, poll_interval=0.01
            )

    def test_wait_merges_once_worker_finishes(self, tmp_path, sweep_store):
        grid = make_small_grid()
        summary, _ = serial_baseline(grid, tmp_path / "serial")
        worker = threading.Thread(
            target=run_worker,
            args=(grid_specs(grid), sweep_store),
            kwargs=dict(worker_id="bg"),
        )
        progress = []
        worker.start()
        try:
            run = wait_for_grid(
                grid, sweep_store, timeout=60.0, poll_interval=0.01,
                on_progress=lambda present, total: progress.append(
                    (present, total)
                ),
            )
        finally:
            worker.join()
        assert grid_summary_json(run) == summary
        assert progress[-1] == (8, 8)


class TestChaosInProcess:
    def test_dead_worker_lease_stolen_and_sweep_healed(
        self, tmp_path, sweep_store
    ):
        grid = make_small_grid()
        summary, payload_bytes = serial_baseline(grid, tmp_path / "serial")
        specs = grid_specs(grid)
        assert dying_worker(specs, sweep_store, "victim", die_after=2)
        plan = plan_tasks(specs, 1)
        leases = sweep_store.queue_root(plan.plan_id) / "leases"
        assert list(leases.glob("*.json"))  # the abandoned claim
        healer = run_worker(
            specs, sweep_store, worker_id="healer", lease_ttl=0.0,
            chunk_size=1, poll_interval=0.0,
        )
        assert healer.tasks_stolen >= 1
        assert not missing_units(specs, sweep_store)
        assert grid_summary_json(merge_grid(grid, sweep_store)) == summary
        assert entry_bytes(sweep_store) == payload_bytes

    def test_metrics_counters_increment(self, sweep_store):
        registry = default_registry()
        names = (
            "repro_dist_claims_total",
            "repro_dist_steals_total",
            "repro_dist_tasks_done_total",
            "repro_dist_heartbeats_total",
        )
        before = {n: registry.get(n).value() or 0.0 for n in names}
        grid = make_small_grid()
        specs = grid_specs(grid)
        dying_worker(specs, sweep_store, "victim", die_after=0)
        run_worker(
            specs, sweep_store, worker_id="healer", lease_ttl=0.0,
            chunk_size=1, poll_interval=0.0,
        )
        after = {n: registry.get(n).value() or 0.0 for n in names}
        for name in names:
            assert after[name] > before[name], name


class TestRunDistributed:
    def test_two_process_run_byte_identical(self, tmp_path, sweep_store):
        grid = make_small_grid()
        summary, payload_bytes = serial_baseline(grid, tmp_path / "serial")
        run, reports = run_distributed(
            grid, sweep_store, workers=2, chunk_size=2
        )
        assert grid_summary_json(run) == summary
        assert entry_bytes(sweep_store) == payload_bytes
        by_worker = {r["worker"]: r for r in reports if "worker" in r}
        assert set(by_worker) == {"worker-0", "worker-1"}
        assert not any("worker_exit_codes" in r for r in reports)
        assert sum(r["tasks_done"] for r in by_worker.values()) >= 4
        assert run.report.units == 8 and run.report.cache_hits == 8


def _victim_entry(specs_data, store_root, flag_path, kwargs):
    """A worker that freezes after its second claim (module-level for mp).

    It completes one task, claims the next, touches ``flag_path`` and then
    hangs while holding that live lease — the parent SIGKILLs it there, so
    the kill deterministically lands mid-chunk with an uncomputed unit
    behind a held lease.
    """
    from pathlib import Path

    from repro.experiments.spec import ExperimentSpec

    specs = [ExperimentSpec.from_dict(data) for data in specs_data]
    claims = 0

    def on_task(stage, task):
        nonlocal claims
        if stage == "claimed":
            claims += 1
            if claims == 2:
                Path(flag_path).touch()
                time.sleep(300.0)

    run_worker(specs, SweepStore(store_root), on_task=on_task, **kwargs)


@pytest.mark.slow
class TestSigkillChaos:
    def test_sigkill_mid_chunk_heals_byte_identical(self, tmp_path):
        grid = make_small_grid(base=make_sweep_spec(repeats=1))
        summary, payload_bytes = serial_baseline(grid, tmp_path / "serial")
        specs = grid_specs(grid)
        store = SweepStore(tmp_path / "shared")
        flag = tmp_path / "victim-blocked"
        ctx = multiprocessing.get_context()
        victim = ctx.Process(
            target=_victim_entry,
            args=(
                [spec.to_dict() for spec in specs],
                str(store.root),
                str(flag),
                dict(worker_id="victim", lease_ttl=1.0, chunk_size=1),
            ),
        )
        victim.start()
        try:
            deadline = time.time() + 60.0
            while not flag.exists():
                assert time.time() < deadline, "victim never blocked"
                assert victim.is_alive(), "victim exited prematurely"
                time.sleep(0.005)
            # Mid-chunk by construction: one task finished, a live lease
            # held on the next, its unit not yet computed.
            plan = plan_tasks(specs, 1)
            leases_dir = store.queue_root(plan.plan_id) / "leases"
            assert len(list(leases_dir.glob("*.json"))) == 1
            assert len(store) >= 1
            assert missing_units(specs, store)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            assert victim.exitcode == -signal.SIGKILL
        finally:
            if victim.is_alive():
                victim.kill()
                victim.join()

        healer = run_worker(
            specs, store, worker_id="healer", lease_ttl=0.2,
            chunk_size=1, poll_interval=0.01,
        )
        # The abandoned lease was reclaimed, no cell was lost, and the
        # merged bytes match the uninterrupted serial run.
        assert healer.tasks_stolen >= 1
        assert not missing_units(specs, store)
        assert grid_summary_json(merge_grid(grid, store)) == summary
        assert entry_bytes(store) == payload_bytes
        reports = worker_reports(store, plan.plan_id)
        assert [r["worker"] for r in reports] == ["healer"]


@pytest.mark.slow
class TestDistributedProperty:
    """Random fleets x random death schedules ≡ one serial run."""

    _BASELINE: dict[str, object] = {}

    @classmethod
    def tiny_grid(cls):
        return make_small_grid(
            base=make_sweep_spec(repeats=1, n_steps=2),
            axes=(
                {"name": "workload", "path": "workload",
                 "values": [600.0, 650.0, 700.0]},
            ),
        )

    @classmethod
    def baseline(cls):
        if not cls._BASELINE:
            with tempfile.TemporaryDirectory() as root:
                summary, payload_bytes = serial_baseline(
                    cls.tiny_grid(), root
                )
            cls._BASELINE["summary"] = summary
            cls._BASELINE["bytes"] = payload_bytes
        return cls._BASELINE["summary"], cls._BASELINE["bytes"]

    @settings(max_examples=12, deadline=None)
    @given(
        chunk_size=st.integers(min_value=1, max_value=3),
        batch=st.booleans(),
        deaths=st.lists(
            st.integers(min_value=0, max_value=3), min_size=0, max_size=3
        ),
        survivors=st.integers(min_value=1, max_value=2),
    )
    def test_any_schedule_converges_byte_identical(
        self, chunk_size, batch, deaths, survivors
    ):
        grid = self.tiny_grid()
        summary, payload_bytes = self.baseline()
        specs = grid_specs(grid)
        with tempfile.TemporaryDirectory() as root:
            store = SweepStore(root)
            for index, die_after in enumerate(deaths):
                dying_worker(
                    specs, store, f"victim-{index}", die_after,
                    batch=batch, chunk_size=chunk_size,
                )
            for index in range(survivors):
                run_worker(
                    specs, store, worker_id=f"survivor-{index}",
                    lease_ttl=0.0, chunk_size=chunk_size, batch=batch,
                    poll_interval=0.0,
                )
            # Every unit computed at least once, persisted exactly once,
            # and the merged aggregates match the serial bytes.
            assert not missing_units(specs, store)
            assert len(store) == 3
            assert entry_bytes(store) == payload_bytes
            assert grid_summary_json(merge_grid(grid, store)) == summary


class TestCliValidation:
    def _grid_file(self, tmp_path):
        return str(make_small_grid().write(tmp_path / "grid.json"))

    def test_worker_and_coordinator_exclusive(self, tmp_path, capsys):
        code = main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--cache", str(tmp_path / "c"),
                     "--worker", "--coordinator"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_worker_needs_cache(self, tmp_path, capsys):
        code = main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--worker"])
        assert code == 2
        assert "--cache" in capsys.readouterr().err

    def test_workers_needs_coordinator(self, tmp_path, capsys):
        code = main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--cache", str(tmp_path / "c"), "--workers", "2"])
        assert code == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_lease_ttl_must_be_positive(self, tmp_path, capsys):
        code = main(["sweep", "--grid", self._grid_file(tmp_path),
                     "--cache", str(tmp_path / "c"), "--worker",
                     "--lease-ttl", "0"])
        assert code == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_worker_then_coordinator_merge(self, tmp_path, capsys):
        grid_file = self._grid_file(tmp_path)
        cache = str(tmp_path / "cache")
        out = str(tmp_path / "run.json")
        assert main(["sweep", "--grid", grid_file, "--cache", cache,
                     "--worker", "--worker-id", "w0"]) == 0
        assert "task(s) claimed" in capsys.readouterr().out
        assert main(["sweep", "--grid", grid_file, "--cache", cache,
                     "--coordinator", "--wait-timeout", "30",
                     "--out", out]) == 0
        capsys.readouterr()
        summary = json.loads((tmp_path / "run.json").read_text())
        assert len(summary["cells"]) == 4
