"""Event heap for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    ARRIVAL = "arrival"
    CPU_DONE = "cpu_done"
    WAIT_DONE = "wait_done"
    QUOTA_EXHAUST = "quota_exhaust"
    PERIOD_END = "period_end"
    STAGE_START = "stage_start"
    BACKGROUND = "background"


@dataclass(order=True)
class Event:
    """A scheduled event; ordering is (time, sequence number)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
    epoch: int = field(compare=False, default=-1)
    """Staleness guard: events carrying an epoch are dropped when the
    target's epoch has advanced since scheduling."""


class EventQueue:
    """Min-heap of events with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, kind: EventKind, payload: Any = None, epoch: int = -1
    ) -> None:
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(
            self._heap,
            Event(time=max(time, self.now), seq=next(self._seq), kind=kind,
                  payload=payload, epoch=epoch),
        )

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def peek_time(self) -> float:
        """Timestamp of the next event (raises IndexError when empty)."""
        return self._heap[0].time
