"""Vectorized batched evaluation of compatible sweep units.

The scheduler's ``batch=True`` path partitions each chunk of pending
(spec, repeat) units into *compatible groups* — same application, same
autoscaler kind, same horizon, analytical engine — and hands every group
to :func:`run_units_batched`, which advances the whole group through the
control loop as one stack of arrays: one
:class:`~repro.sim.batched.BatchedAnalyticalEngine` observation and one
:class:`~repro.core.batch.PEMABatch`/
:class:`~repro.baselines.rule.RuleBatch` decision per interval, instead
of one full scalar Python loop per cell.

Byte-identity: every per-cell float operation and random draw is
replicated in the scalar order (see the bit-exactness notes in
:mod:`repro.sim.batched` and :mod:`repro.core.batch`), so the payload
dicts returned here are exactly what
``repro.experiments.runner._run_unit_worker`` returns for the same unit —
the same JSON bytes land in the sweep store either way.

Cells that :func:`batch_key` cannot place in a group (DES engine,
non-noise engine params, unknown autoscalers/hooks, invalid component
params) run
through the scalar worker unchanged — a fallback, never an error.  Each
fallback carries a machine-readable reason slug
(:func:`batch_fallback_reason`), which the scheduler tallies into
``SweepReport.fallbacks`` so batch coverage is visible instead of
silently degrading.
"""

from __future__ import annotations

import gc
from typing import Any, Hashable, Sequence

import numpy as np

from repro.apps import build_app
from repro.baselines.brownout import BrownoutController
from repro.baselines.pid import PIDController
from repro.baselines.rule import RuleBasedAutoscaler, RuleBatch
from repro.core.batch import PEMABatch
from repro.core.config import PEMAConfig
from repro.experiments.registry import AUTOSCALERS, HOOKS, WORKLOADS
from repro.experiments.runner import capture_manager_state
from repro.experiments.spec import ExperimentSpec
from repro.faults import (
    ENGINE_FAULT_KINDS,
    STREAM_FAULT_KINDS,
    apply_fault_actions,
    fault_actions,
    normalize_fault_params,
)
from repro.obs.decision import capture_decision_info
from repro.sim.batched import BatchObservation, BatchedAnalyticalEngine
from repro.sim.concurrency import gamma_quantile
from repro.sim.noise import NoiseModel
from repro.sim.types import Allocation, IntervalMetrics, ServiceMetrics
from repro.workload.replay import rate_schedule

__all__ = [
    "BATCHABLE_AUTOSCALERS",
    "batch_key",
    "batch_fallback_reason",
    "batch_from_env",
    "classify_unit",
    "run_units_batched",
]


def batch_from_env(default: bool = False) -> bool:
    """The ``REPRO_SWEEP_BATCH`` default: ``1/true/yes/on`` enable it."""
    import os

    value = os.environ.get("REPRO_SWEEP_BATCH")
    if value is None:
        return default
    return value.strip().lower() in ("1", "true", "yes", "on")

#: Autoscaler kinds a batch group can hold.  ``pema``/``rule`` decide
#: through fully vectorized banks; ``optimum``, ``workload_aware_pema``,
#: ``pid``, and ``brownout`` ride the vectorized engine with bank-driven
#: scalar decisions (the expensive closed-form observation is still one
#: call per batch).
BATCHABLE_AUTOSCALERS = (
    "pema", "rule", "static", "optimum", "workload_aware_pema",
    "pid", "brownout",
)

#: Hook kinds the batched loop can dispatch.  ``set_slo`` only drives a
#: PEMA bank (other autoscalers have no ``set_slo``, exactly as scalar);
#: engine faults go through the shared :func:`repro.faults.fault_actions`
#: schedule; stream faults are delivery disturbances, offline no-ops.
_BATCHABLE_HOOKS = (
    ("set_slo", "set_cpu_speed") + ENGINE_FAULT_KINDS + STREAM_FAULT_KINDS
)


def classify_unit(
    spec: ExperimentSpec,
) -> tuple[tuple[Hashable, ...] | None, str | None]:
    """``(batch key, None)`` for batchable specs, ``(None, reason)`` else.

    Units sharing a key can be stacked into one batch: same app (service
    set and calibration), same autoscaler kind (one vectorized bank),
    same horizon (one time loop), and same engine noise model (one
    vectorized observation).  Everything else — workload level and kind,
    α/β and other autoscaler params, CPU speed and SLO hooks, interval,
    SLO, headroom, seeds — varies freely *within* a batch.

    The reason is a stable machine-readable slug (``engine:des``,
    ``autoscaler:fast_pema``, ``hook:my_hook``, ``pema_horizon``,
    ``engine_params``, ``engine_params:noise``, ``hook_params:set_slo``,
    ``autoscaler_params:rule``, ``set_slo_without_pema``) — the
    scheduler tallies these into ``SweepReport.fallbacks`` and the CLI
    prints them, so nobody mistakes a mostly-scalar "batched" sweep for
    a vectorized one.

    Component params are probed against their scalar constructors so a
    spec the scalar path would reject at build time falls back to the
    scalar path and fails there, with the same error.
    """
    if spec.engine.kind != "analytical":
        return None, f"engine:{spec.engine.kind}"
    noise_model: NoiseModel | None = None
    if spec.engine.params:
        engine_params = dict(spec.engine.params)
        noise = engine_params.pop("noise", None)
        if engine_params:
            # latency_params/cfs overrides stay scalar: they change the
            # closed-form kernel itself, not just the noise stream.
            return None, "engine_params"
        if noise is not None:
            try:
                noise_model = NoiseModel(**noise)
            except (TypeError, ValueError):
                return None, "engine_params:noise"
    kind = spec.autoscaler.kind
    if kind not in BATCHABLE_AUTOSCALERS:
        return None, f"autoscaler:{kind}"
    # PEMABatch keeps the full history; past the scalar RHDb's trim point
    # (ResourceHistoryDB.max_records) the two would diverge.
    if kind == "pema" and spec.n_steps > 100_000:
        return None, "pema_horizon"
    for hook in spec.hooks:
        if hook.kind not in _BATCHABLE_HOOKS:
            return None, f"hook:{hook.kind}"
        if hook.kind == "set_slo" and kind != "pema":
            return None, "set_slo_without_pema"
        try:
            HOOKS.build(hook.kind, **hook.params)
        except (TypeError, ValueError, KeyError):
            return None, f"hook_params:{hook.kind}"
    bad_params = (None, f"autoscaler_params:{kind}")
    try:
        if kind == "pema":
            PEMAConfig(**spec.autoscaler.params)
        elif kind == "rule":
            RuleBasedAutoscaler(
                Allocation({"probe": 1.0}), **spec.autoscaler.params
            )
        elif kind == "pid":
            PIDController(
                Allocation({"probe": 1.0}), 1.0, **spec.autoscaler.params
            )
        elif kind == "brownout":
            BrownoutController(
                Allocation({"probe": 1.0}), 1.0, **spec.autoscaler.params
            )
        elif kind == "optimum":
            params = dict(spec.autoscaler.params)
            restarts = params.pop("restarts", 2)
            if params or not isinstance(restarts, int) or restarts < 1:
                return bad_params
        elif kind == "workload_aware_pema":
            from repro.core import WorkloadAwarePEMA

            params = dict(spec.autoscaler.params)
            start_rps = params.pop("start_rps", None)
            if start_rps is not None:
                float(start_rps)
            config = params.pop("config", None)
            if config is not None:
                config = PEMAConfig(**config)
            WorkloadAwarePEMA(
                ("probe",),
                1.0,
                Allocation({"probe": 1.0}),
                config=config,
                seed=0,
                **params,
            )
        elif spec.autoscaler.params:  # static: bottleneck_rps [+ scale]
            params = dict(spec.autoscaler.params)
            bottleneck_rps = params.pop("bottleneck_rps", None)
            scale = params.pop("scale", 1.0)
            if params:  # unknown key → scalar factory raises TypeError
                return bad_params
            if bottleneck_rps is None:
                if scale != 1.0:  # "'scale' needs 'bottleneck_rps'"
                    return bad_params
            else:
                float(bottleneck_rps)
                float(scale)
    except (TypeError, ValueError):
        return bad_params
    return (spec.app, kind, spec.n_steps, noise_model), None


def batch_key(spec: ExperimentSpec) -> tuple[Hashable, ...] | None:
    """The compatibility-group key of ``spec``, or None if un-batchable.

    The key/reason split lives in :func:`classify_unit`; this is the
    key-only view the batch runner and older call sites use.
    """
    return classify_unit(spec)[0]


def batch_fallback_reason(spec: ExperimentSpec) -> str | None:
    """Why ``spec`` runs scalar under ``batch=True`` (None: it batches)."""
    return classify_unit(spec)[1]


class _OptimumBank:
    """Vectorized :class:`~repro.baselines.OptimumAllocator` bank.

    Each cell pins the cached noiseless optimum for its observed
    workload, re-solving only when the workload changes.  All cells'
    pending solves go through one ``optimum_results`` call per step —
    cache/store read-through plus a single lockstep
    :class:`~repro.baselines.OptimumBatch` frontier drive for the misses
    — so a sweep's OPTM column warms exactly the entries the scalar
    allocator would.
    """

    def __init__(self, app, restarts: Sequence[int], start: np.ndarray) -> None:
        self._app = app
        self._restarts = list(restarts)
        self.allocation = start.copy()
        self._workloads: list[float | None] = [None] * len(self._restarts)
        self._order = {name: j for j, name in enumerate(app.service_names)}

    def step(self, workloads: np.ndarray) -> np.ndarray:
        pending = [
            i
            for i, w in enumerate(workloads)
            if self._workloads[i] is None or float(w) != self._workloads[i]
        ]
        if pending:
            from repro.experiments.runner import optimum_results

            payloads = optimum_results(
                self._app.name,
                [(float(workloads[i]), self._restarts[i]) for i in pending],
            )
            allocation = self.allocation.copy()
            for i, payload in zip(pending, payloads):
                values = dict(payload["allocation"])
                allocation[i] = [
                    values[name] for name in self._app.service_names
                ]
                self._workloads[i] = float(workloads[i])
            self.allocation = allocation
        return self.allocation


class _CellEnvironment:
    """One batch row presented through the scalar engine's channel API.

    Exposes the scalar :class:`~repro.sim.engine.AnalyticalEngine` setter
    signatures for a single cell of a batched engine, so the shared fault
    schedule (:func:`repro.faults.apply_fault_actions`) and actuating
    controllers (brownout's service-level dimmer) drive the batched
    engine through exactly the calls they make against a scalar one.
    """

    def __init__(self, engine: BatchedAnalyticalEngine, cell: int) -> None:
        self._engine = engine
        self._cell = cell

    def set_capacity_scale(
        self, scale: float, service: str | None = None
    ) -> None:
        self._engine.set_capacity_scale(self._cell, scale, service=service)

    def set_demand_scale(
        self, scale: float, service: str | None = None
    ) -> None:
        self._engine.set_demand_scale(self._cell, scale, service=service)

    def set_service_level(self, level: float) -> None:
        self._engine.set_service_level(self._cell, level)


class _ManagerBank:
    """Bank of scalar decision-makers (manager, PID, brownout cells).

    The dynamic-range manager's decision logic is a per-cell state
    machine over a growing range tree — not array math — and the PID and
    brownout baselines are tiny per-cell feedback laws, so, in the
    :class:`_OptimumBank` style, the bank keeps one *scalar* controller
    per cell and only the engine observation is vectorized.  Each step
    rebuilds the exact :class:`~repro.sim.types.IntervalMetrics` the
    scalar control loop would pass (row ``i`` of a batched observation
    is bit-identical to the scalar engine's), so every controller
    consumes the same floats and the same private RNG stream as its
    scalar run — decisions, range splits, dimmer writes, and captured
    manager state included.
    """

    def __init__(self, managers: Sequence[Any], names: tuple[str, ...]) -> None:
        self._managers = list(managers)
        self._names = names
        self.allocation = np.stack(
            [m.allocation.as_array(names) for m in self._managers]
        )
        self._trace_cells: set[int] = set()
        self.decision_info: dict[int, list] = {}

    def enable_decision_trace(self, cells: Sequence[int]) -> None:
        """Record each traced cell's manager decision info per step."""
        for cell in cells:
            self._trace_cells.add(int(cell))
            self.decision_info.setdefault(int(cell), [])

    def manager(self, cell: int) -> Any:
        return self._managers[cell]

    def step(self, obs: BatchObservation) -> np.ndarray:
        rows = []
        for i, manager in enumerate(self._managers):
            metrics = IntervalMetrics(
                latency_p95=float(obs.latency_p95[i]),
                workload_rps=float(obs.workload_rps[i]),
                services={
                    name: ServiceMetrics(
                        utilization=float(obs.utilization[i, j]),
                        throttle_seconds=float(obs.throttle_seconds[i, j]),
                        usage_cores=float(obs.usage_cores[i, j]),
                        usage_p90_cores=float(obs.usage_p90_cores[i, j]),
                    )
                    for j, name in enumerate(self._names)
                },
                latency_mean=float(obs.latency_p95[i] / 1.6),
            )
            rows.append(manager.decide(metrics).as_array(self._names))
            if i in self._trace_cells:
                self.decision_info[i].append(capture_decision_info(manager))
        self.allocation = np.stack(rows)
        return self.allocation


def _generous_batch(app, rates: np.ndarray, headrooms: np.ndarray) -> np.ndarray:
    """``AppSpec.generous_allocation`` for every cell in one array pass.

    Same formula order as the scalar method (Gamma bottleneck at the 97th
    percentile, scaled by headroom, floored at 0.2 cores), elementwise
    across the batch.
    """
    mean = (
        rates[:, None] * app.visit_array() * app.demand_array()
        + app.baseline_array()
    )
    burst = app.burstiness_array()
    shape = np.where(mean > 1e-12, mean / burst, 0.0)
    base = gamma_quantile(0.97, shape, burst)
    return np.maximum(base * headrooms[:, None], 0.2)


def run_units_batched(
    units: Sequence[tuple[ExperimentSpec, int]],
) -> list[dict[str, Any]]:
    """Run one compatible group of (spec, repeat) units as a single batch.

    Returns one ``loop_result_to_dict``-shaped payload per unit, in
    input order, byte-identical to the scalar worker's payloads.

    The cyclic garbage collector is paused for the duration: a batch run
    allocates tens of thousands of record/trace dicts, all acyclic trees
    freed by refcounting, and letting generational GC rescan them mid-run
    costs more than the whole decision-trace channel (it dominated the
    obs gate's measured tracing overhead before this pause).
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_units_batched(units)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_units_batched(
    units: Sequence[tuple[ExperimentSpec, int]],
) -> list[dict[str, Any]]:
    if not units:
        return []
    specs = [spec for spec, _ in units]
    key = batch_key(specs[0])
    if key is None or any(batch_key(s) != key for s in specs[1:]):
        raise ValueError("units do not form one compatible batch group")
    app_name, kind, n_steps, noise_model = key
    app = build_app(app_name)
    names = app.service_names
    n_cells = len(units)

    for spec in specs:
        spec.validate()
    seeds = [spec.seed + repeat for spec, repeat in units]
    engine_seeds = [
        seed + spec.engine.seed_offset for seed, spec in zip(seeds, specs)
    ]
    traces = [
        WORKLOADS.build(s.workload.kind, **s.workload.params) for s in specs
    ]
    intervals = np.asarray([s.interval for s in specs], dtype=np.float64)
    slos = [s.slo if s.slo is not None else app.slo for s in specs]
    start_rates = np.asarray(
        [trace.rate(0.0) for trace in traces], dtype=np.float64
    )
    if np.any(start_rates < 0):
        raise ValueError("workload must be >= 0")
    start = _generous_batch(
        app,
        start_rates,
        np.asarray([s.headroom for s in specs], dtype=np.float64),
    )
    # ``noise_model`` is shared by construction: it is part of the batch
    # key, and ``None`` means every cell uses the engine default — the
    # same resolution the scalar engine factory performs.
    engine = BatchedAnalyticalEngine(app, engine_seeds, noise=noise_model)

    if kind == "pema":
        configs = [
            PEMAConfig(**s.autoscaler.params) if s.autoscaler.params
            else PEMAConfig()
            for s in specs
        ]
        bank: PEMABatch | RuleBatch | _OptimumBank | _ManagerBank | None
        bank = PEMABatch(names, slos, start, configs, seeds)
        allocation = bank.allocation
    elif kind in ("workload_aware_pema", "pid", "brownout"):
        # Build each cell's controller through the registry factory,
        # exactly as the scalar ``build_unit`` does (param handling,
        # seeding convention, environment binding), so the bank's
        # controllers are byte-equal.
        managers = []
        for i, s in enumerate(specs):
            manager = AUTOSCALERS.build(
                kind,
                app,
                Allocation.from_array(names, start[i]),
                slos[i],
                seed=seeds[i],
                **s.autoscaler.params,
            )
            bind = getattr(manager, "bind_environment", None)
            if callable(bind):
                bind(_CellEnvironment(engine, i))
            managers.append(manager)
        bank = _ManagerBank(managers, names)
        allocation = bank.allocation
    elif kind == "rule":
        scalers = [
            RuleBasedAutoscaler(
                Allocation.from_array(names, start[i]), **s.autoscaler.params
            )
            for i, s in enumerate(specs)
        ]
        bank = RuleBatch(start, scalers)
        allocation = bank.allocation
    elif kind == "optimum":
        bank = _OptimumBank(
            app,
            [int(s.autoscaler.params.get("restarts", 2)) for s in specs],
            start,
        )
        allocation = bank.allocation
    else:  # static — the allocation is pinned at build time, never changes
        bank = None
        if any(s.autoscaler.params for s in specs):
            # bottleneck_rps/scale cells pin a model-derived allocation;
            # run each through the scalar registry factory so the pinned
            # rows are byte-equal to ``build_unit``'s.
            allocation = np.stack(
                [
                    AUTOSCALERS.build(
                        kind,
                        app,
                        Allocation.from_array(names, start[i]),
                        slos[i],
                        seed=seeds[i],
                        **s.autoscaler.params,
                    ).allocation.as_array(names)
                    for i, s in enumerate(specs)
                ]
            )
        else:
            allocation = start

    # Decision tracing: cells whose spec requested the channel record one
    # info dict per step from their bank (PEMA/manager banks; other
    # autoscaler kinds have no last_decision hook — None, as scalar).
    trace_cells = [
        i for i, s in enumerate(specs) if "decision_trace" in s.capture
    ]
    if trace_cells and isinstance(bank, (PEMABatch, _ManagerBank)):
        bank.enable_decision_trace(trace_cells)

    # Hook schedule: (cell, hook-kind, params), in spec order.  Timed
    # setters fire at their step; engine faults consult the shared
    # :func:`repro.faults.fault_actions` schedule every step and apply it
    # through the cell's scalar-API facade; stream faults are delivery
    # disturbances — offline no-ops, exactly as their scalar hooks.
    cell_envs = [_CellEnvironment(engine, i) for i in range(n_cells)]
    hook_entries = []
    for i, spec in enumerate(specs):
        for hook in spec.hooks:
            if hook.kind in ENGINE_FAULT_KINDS:
                hook_entries.append(
                    (
                        i,
                        hook.kind,
                        normalize_fault_params(hook.kind, dict(hook.params)),
                    )
                )
            elif hook.kind in ("set_slo", "set_cpu_speed"):
                hook_entries.append((i, hook.kind, dict(hook.params)))

    fixed_slo = np.asarray(slos, dtype=np.float64)
    resp = np.empty((n_steps, n_cells))
    totals = np.empty((n_steps, n_cells))
    workloads = np.empty((n_steps, n_cells))
    slo_rec = np.empty((n_steps, n_cells))
    violated = np.empty((n_steps, n_cells), dtype=bool)
    alloc_hist: list[np.ndarray] = []

    # Pre-evaluate every cell's whole rate series in one vectorized
    # ``rate_batch`` call (bit-identical to the per-step scalar calls —
    # the :func:`~repro.workload.trace.batch_rates` contract), so a
    # 36-hour replay costs one trace evaluation per cell, not one Python
    # call per control interval.
    rates_all = np.stack(
        [
            rate_schedule(traces[i], intervals[i], n_steps)
            for i in range(n_cells)
        ],
        axis=1,
    )

    for step in range(n_steps):
        for cell, hook_kind, params in hook_entries:
            if hook_kind == "set_slo":
                if step == params["at"]:
                    assert isinstance(bank, PEMABatch)
                    bank.set_slo(cell, params["slo"])
            elif hook_kind == "set_cpu_speed":
                if step == params["at"]:
                    engine.set_cpu_speed(cell, params["speed"])
            else:
                actions = fault_actions(hook_kind, params, step)
                if actions:
                    apply_fault_actions(cell_envs[cell], actions)
        rates = rates_all[step]
        obs = engine.observe(allocation, rates, intervals)
        step_totals = allocation.sum(axis=1)
        # The PEMA bank's SLO is live (set_slo hooks show up in records),
        # like the scalar loop's live getter; others record the fixed SLO.
        slo_now = bank.slo.copy() if isinstance(bank, PEMABatch) else fixed_slo
        resp[step] = obs.latency_p95
        totals[step] = step_totals
        workloads[step] = rates
        slo_rec[step] = slo_now
        violated[step] = obs.latency_p95 > slo_now
        alloc_hist.append(allocation.copy())
        if isinstance(bank, PEMABatch):
            allocation = bank.step(obs, step_totals)
        elif isinstance(bank, RuleBatch):
            allocation = bank.step(obs.usage_cores, obs.usage_p90_cores)
        elif isinstance(bank, _OptimumBank):
            allocation = bank.step(obs.workload_rps)
        elif isinstance(bank, _ManagerBank):
            allocation = bank.step(obs)

    # Post-final-decide totals: step s's next_total_cpu is step s+1's
    # recorded total; the last step reads the loop-exit allocation (the
    # same row-sum the scalar loop's final ``allocation.total()`` takes).
    final_totals = allocation.sum(axis=1)

    payloads: list[dict[str, Any]] = []
    for i in range(n_cells):
        interval = intervals[i]
        resp_col = resp[:, i].tolist()
        total_col = totals[:, i].tolist()
        work_col = workloads[:, i].tolist()
        slo_col = slo_rec[:, i].tolist()
        viol_col = violated[:, i].tolist()
        alloc_rows = [alloc_hist[step][i].tolist() for step in range(n_steps)]
        payload: dict[str, Any] = {
            "records": [
                {
                    "step": step,
                    "time": float(step * interval),
                    "workload": work_col[step],
                    "response": resp_col[step],
                    "total_cpu": total_col[step],
                    "violated": viol_col[step],
                    "slo": slo_col[step],
                    "allocation": [
                        list(pair)
                        for pair in zip(names, alloc_rows[step])
                    ],
                }
                for step in range(n_steps)
            ]
        }
        # The manager-state artifact channel, mirroring the scalar
        # worker: key present exactly when the spec requested it.
        if "manager_state" in specs[i].capture:
            payload["manager_state"] = (
                capture_manager_state(bank.manager(i))
                if isinstance(bank, _ManagerBank)
                else None
            )
        if "decision_trace" in specs[i].capture:
            infos = (
                bank.decision_info.get(i)
                if isinstance(bank, (PEMABatch, _ManagerBank))
                else None
            )
            # Inline ``decision_record`` dict shape: the columns are
            # already plain Python floats/bools (``.tolist()`` above), so
            # the per-record coercion layer would only cost time here —
            # this is the hot path the obs gate's overhead bound covers.
            next_col = total_col[1:] + [float(final_totals[i])]
            payload["decision_trace"] = [
                {
                    "step": step,
                    "workload": work_col[step],
                    "response": resp_col[step],
                    "slo": slo_col[step],
                    "violated": viol_col[step],
                    "total_cpu": total_col[step],
                    "next_total_cpu": next_col[step],
                    "decision": infos[step] if infos is not None else None,
                }
                for step in range(n_steps)
            ]
        payloads.append(payload)
    return payloads


def _run_batch_worker(units_data: Sequence[Sequence[Any]]) -> list[dict]:
    """Module-level worker: plain-data in/out so it pickles anywhere."""
    return run_units_batched(
        [
            (ExperimentSpec.from_dict(spec_data), int(repeat))
            for spec_data, repeat in units_data
        ]
    )
