"""Execute :class:`ExperimentSpec` objects: one runner for every scenario.

``run_unit`` materializes one seed of a spec (build app -> engine ->
autoscaler -> trace -> loop, run it); ``run_experiment`` runs every
repeat and returns an :class:`ExperimentArtifact`; ``run_sweep`` fans a
list of specs out over processes at (spec, repeat) granularity via
:mod:`repro.bench.parallel`.  Serial and parallel execution build every
component fresh from the serialized spec, so their artifacts are
byte-identical.

Seeding convention (matches the historical benchmark wiring): repeat
``r`` of a spec runs under ``seed_r = spec.seed + r``; the controller
gets ``seed_r`` and the engine gets ``seed_r + engine.seed_offset``.

``run_comparison`` evaluates one Fig. 15 cell — PEMA (averaged over the
spec's repeats) vs the noiseless optimum vs the rule-based baseline —
from a single PEMA spec, and is the one code path behind both the CLI
``compare`` command and the ``bench.runner`` helpers.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from copy import deepcopy
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.apps import build_app
from repro.apps.spec import AppSpec
from repro.core.loop import Autoscaler, ControlLoop, LoopResult
from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.registry import AUTOSCALERS, ENGINES, HOOKS, WORKLOADS
from repro.experiments.spec import (
    AutoscalerSpec,
    EngineSpec,
    ExperimentSpec,
)
from repro.metrics.export import loop_result_from_dict, loop_result_to_dict
from repro.obs.metrics import default_registry
from repro.sim.environment import Environment
from repro.workload.trace import WorkloadTrace

__all__ = [
    "ExperimentUnit",
    "build_unit",
    "capture_manager_state",
    "hooks_on_step",
    "run_unit",
    "run_experiment",
    "run_sweep",
    "run_comparison",
    "derive_rule_spec",
    "optimum_total",
    "optimum_result",
    "optimum_results",
    "clear_optimum_cache",
    "reset_optimum_cache_info",
    "optimum_cache_info",
    "set_optimum_store",
    "optimum_store",
]

OnStep = Callable[[int, ControlLoop], None]

# The optimum search is deterministic and several figures reuse the same
# (app, workload) points, so results are cached per process — LRU-bounded
# so open-ended sweeps cannot grow it without limit, and optionally backed
# by a persistent sweep store (see ``optimum_store``) so searches survive
# across processes and runs.  Cache values are full result payloads
# (total, allocation, evaluations, latency); legacy store entries that
# only carry ``total_cpu`` still serve ``optimum_total`` and are upgraded
# in place the first time the full allocation is needed.
OPTIMUM_CACHE_SIZE = 256
_OPTM_CACHE: OrderedDict[tuple[str, float, int], dict[str, Any]] = OrderedDict()
_OPTM_STATS = {"hits": 0, "misses": 0, "store_hits": 0, "solved": 0}
_OPTM_STORE: Any | None = None


@dataclass
class ExperimentUnit:
    """One seed of an experiment: the built components plus its result."""

    spec: ExperimentSpec
    repeat: int
    seed: int
    app: AppSpec
    engine: Environment
    autoscaler: Autoscaler
    trace: WorkloadTrace
    slo: float
    loop: ControlLoop
    result: LoopResult | None = None
    manager_state: dict[str, Any] | None = None
    """The autoscaler's post-run state snapshot, when the spec's
    ``capture`` requested the ``manager_state`` channel (None otherwise,
    and None for autoscalers that expose no snapshot)."""
    decision_trace: list[dict[str, Any]] | None = None
    """Per-step deterministic decision records, when the spec's
    ``capture`` requested the ``decision_trace`` channel (None
    otherwise)."""


def build_unit(
    spec: ExperimentSpec,
    repeat: int = 0,
    *,
    trace: WorkloadTrace | None = None,
) -> ExperimentUnit:
    """Materialize repeat ``repeat`` of ``spec`` without running it.

    ``trace`` overrides the declarative workload with an arbitrary
    :class:`WorkloadTrace` object — the escape hatch for benchmark
    scenarios whose traces have no registry encoding (the spec's
    workload is ignored, everything else applies).
    """
    if not 0 <= repeat < spec.repeats:
        raise ValueError(f"repeat must be in [0, {spec.repeats}): {repeat}")
    spec.validate()
    seed = spec.seed + repeat
    app = build_app(spec.app)
    if trace is None:
        trace = WORKLOADS.build(spec.workload.kind, **spec.workload.params)
    engine = ENGINES.build(
        spec.engine.kind,
        app,
        seed=seed + spec.engine.seed_offset,
        **spec.engine.params,
    )
    slo = spec.slo if spec.slo is not None else app.slo
    start = app.generous_allocation(trace.rate(0.0), headroom=spec.headroom)
    autoscaler = AUTOSCALERS.build(
        spec.autoscaler.kind,
        app,
        start,
        slo,
        seed=seed,
        **spec.autoscaler.params,
    )
    # Actuating controllers (brownout's service-level dimmer) need the
    # engine they drive; every executor builds units through here, so the
    # binding is identical across scalar, batched, and streamed runs.
    bind = getattr(autoscaler, "bind_environment", None)
    if callable(bind):
        bind(engine)
    # Autoscalers that carry their own (mutable) SLO drive the loop's
    # violation bookkeeping live, so set_slo hooks show up in the records.
    loop = ControlLoop(
        engine,
        autoscaler,
        trace,
        interval=spec.interval,
        slo=None if hasattr(autoscaler, "slo") else slo,
    )
    return ExperimentUnit(
        spec=spec,
        repeat=repeat,
        seed=seed,
        app=app,
        engine=engine,
        autoscaler=autoscaler,
        trace=trace,
        slo=slo,
        loop=loop,
    )


def hooks_on_step(
    spec: ExperimentSpec, on_step: OnStep | None = None
) -> OnStep | None:
    """The spec's hooks (plus an optional extra callback) as one dispatcher.

    Every executor of a spec — the offline runner below, and the
    streaming service's per-app guardians — builds its hook pipeline
    through this one function, so hook firing order is identical across
    entry points.  Returns None when there is nothing to dispatch.
    """
    hook_fns = [HOOKS.build(h.kind, **h.params) for h in spec.hooks]
    if not hook_fns and on_step is None:
        return None

    def dispatch(step: int, loop: ControlLoop) -> None:
        for fn in hook_fns:
            fn(step, loop)
        if on_step is not None:
            on_step(step, loop)

    return dispatch


def capture_manager_state(autoscaler: Any) -> dict[str, Any] | None:
    """The autoscaler's JSON-ready state snapshot, or None.

    The ``manager_state`` artifact channel: autoscalers that expose a
    ``state_snapshot()`` method (the workload-aware manager's range-tree
    splits/slope) contribute a payload; plain controllers and baselines
    contribute None.
    """
    snapshot = getattr(autoscaler, "state_snapshot", None)
    return snapshot() if callable(snapshot) else None


def run_unit(
    spec: ExperimentSpec,
    repeat: int = 0,
    *,
    trace: WorkloadTrace | None = None,
    on_step: OnStep | None = None,
    tracer: Any | None = None,
) -> ExperimentUnit:
    """Run one seed of ``spec`` (hooks dispatched, plus an extra callback).

    ``tracer`` optionally times the run with a
    :class:`repro.obs.Tracer` span (runtime profiling, independent of
    the deterministic ``decision_trace`` capture channel).
    """
    unit = build_unit(spec, repeat, trace=trace)
    decision_log: list[dict[str, Any]] | None = (
        [] if "decision_trace" in spec.capture else None
    )
    unit.result = unit.loop.run(
        spec.n_steps,
        on_step=hooks_on_step(spec, on_step),
        decision_log=decision_log,
        tracer=tracer,
    )
    unit.decision_trace = decision_log
    if "manager_state" in spec.capture:
        unit.manager_state = capture_manager_state(unit.autoscaler)
    return unit


def _run_unit_worker(spec_data: dict[str, Any], repeat: int) -> dict[str, Any]:
    # Module-level, plain-data in/out: pickles under any start method.
    spec = ExperimentSpec.from_dict(spec_data)
    unit = run_unit(spec, repeat)
    assert unit.result is not None
    payload = loop_result_to_dict(unit.result)
    # Channel keys only exist when requested, so capture-free unit
    # payloads (and their sweep-store bytes) are unchanged.
    if "manager_state" in spec.capture:
        payload["manager_state"] = unit.manager_state
    if "decision_trace" in spec.capture:
        payload["decision_trace"] = unit.decision_trace
    return payload


def run_sweep(
    specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
    *,
    parallel: int = 1,
) -> list[ExperimentArtifact]:
    """Run every (spec, repeat) cell, fanning out over ``parallel`` workers.

    Each cell rebuilds its components from the serialized spec whether it
    runs inline or in a worker process, so ``parallel=1`` and
    ``parallel=N`` produce byte-identical artifacts.
    """
    from repro.bench.parallel import run_parallel

    specs = list(specs)
    kwargs_list = [
        dict(spec_data=spec.to_dict(), repeat=r)
        for spec in specs
        for r in range(spec.repeats)
    ]
    raw = run_parallel(_run_unit_worker, kwargs_list, max_workers=parallel)
    artifacts: list[ExperimentArtifact] = []
    cursor = 0
    for spec in specs:
        payloads = [raw[cursor + r] for r in range(spec.repeats)]
        cursor += spec.repeats
        artifacts.append(ExperimentArtifact.from_payloads(spec, payloads))
    return artifacts


def run_experiment(
    spec: ExperimentSpec, *, parallel: int = 1
) -> ExperimentArtifact:
    """Run every repeat of one spec and return its artifact."""
    return run_sweep([spec], parallel=parallel)[0]


# -- baseline comparison (Fig. 15 cells) ---------------------------------------
def set_optimum_store(store: Any | None) -> Any | None:
    """Back ``optimum_total`` with a persistent sweep store (or None).

    ``store`` is any object with the :class:`repro.sweeps.SweepStore`
    ``get_raw``/``put_raw``/``optimum_key`` surface.  Returns the
    previously active store so callers can restore it.
    """
    global _OPTM_STORE
    previous = _OPTM_STORE
    _OPTM_STORE = store
    return previous


@contextmanager
def optimum_store(store: Any | None) -> Iterator[Any | None]:
    """Scope in which optimum searches read/write ``store`` (None: no-op)."""
    previous = set_optimum_store(store)
    try:
        yield store
    finally:
        set_optimum_store(previous)


def _optimum_cache_put(
    key: tuple[str, float, int], payload: dict[str, Any]
) -> None:
    _OPTM_CACHE[key] = payload
    while len(_OPTM_CACHE) > OPTIMUM_CACHE_SIZE:
        _OPTM_CACHE.popitem(last=False)


def _optimum_lookup(
    key: tuple[str, float, int], *, need_allocation: bool
) -> dict[str, Any] | None:
    """One cell's payload from the LRU cache or the store, with stats."""
    payload = _OPTM_CACHE.get(key)
    if payload is not None and (
        not need_allocation or "allocation" in payload
    ):
        _OPTM_STATS["hits"] += 1
        _OPTM_CACHE.move_to_end(key)
        return payload
    _OPTM_STATS["misses"] += 1
    if _OPTM_STORE is not None:
        app_name, workload, restarts = key
        raw = _OPTM_STORE.get_raw(
            _OPTM_STORE.optimum_key(app_name, workload, restarts)
        )
        if (
            isinstance(raw, dict)
            and "total_cpu" in raw
            and (not need_allocation or "allocation" in raw)
        ):
            _OPTM_STATS["store_hits"] += 1
            _optimum_cache_put(key, raw)
            return raw
    return None


def _optimum_solve(
    app_name: str, cells: Sequence[tuple[tuple[str, float, int], float]]
) -> list[dict[str, Any]]:
    """Batch-solve cells as one lockstep frontier; cache and persist all."""
    from repro.baselines import OptimumBatch, OptimumRequest
    from repro.sim import AnalyticalEngine

    app = build_app(app_name)
    batch = OptimumBatch(AnalyticalEngine(app))
    results = batch.find_many(
        [
            OptimumRequest(workload, restarts=key[2])
            for key, workload in cells
        ]
    )
    payloads = []
    for (key, _workload), result in zip(cells, results):
        _OPTM_STATS["solved"] += 1
        payload: dict[str, Any] = {
            "total_cpu": result.total_cpu,
            "allocation": [
                [name, value] for name, value in result.allocation.items()
            ],
            "evaluations": result.evaluations,
            "latency": result.latency,
            "workload": result.workload,
        }
        _optimum_cache_put(key, payload)
        if _OPTM_STORE is not None:
            _OPTM_STORE.put_raw(
                _OPTM_STORE.optimum_key(key[0], key[1], key[2]), payload
            )
        payloads.append(payload)
    return payloads


def optimum_results(
    app_name: str, cells: Sequence[tuple[float, int]]
) -> list[dict[str, Any]]:
    """Full OPTM payloads for many (workload, restarts) cells of one app.

    Cache and store are consulted per cell; every miss is solved in one
    :class:`~repro.baselines.OptimumBatch` lockstep frontier drive and
    written back to both.  Payloads carry ``total_cpu``, the
    ``allocation`` (name/value pairs in service order), ``evaluations``,
    ``latency``, and ``workload``.
    """
    indices: dict[tuple[str, float, int], list[int]] = {}
    order: list[tuple[tuple[str, float, int], float]] = []
    for i, (workload, restarts) in enumerate(cells):
        key = (app_name, round(float(workload), 6), int(restarts))
        occurrences = indices.setdefault(key, [])
        occurrences.append(i)
        if len(occurrences) == 1:
            order.append((key, float(workload)))
    resolved: dict[tuple[str, float, int], dict[str, Any]] = {}
    missing: list[tuple[tuple[str, float, int], float]] = []
    for key, workload in order:
        payload = _optimum_lookup(key, need_allocation=True)
        if payload is not None:
            resolved[key] = payload
        else:
            missing.append((key, workload))
    if missing:
        for (key, _workload), payload in zip(
            missing, _optimum_solve(app_name, missing)
        ):
            resolved[key] = payload
    payloads: list[dict[str, Any] | None] = [None] * len(cells)
    for key, occurrences in indices.items():
        # Repeat occurrences would have hit the cache as sequential calls.
        _OPTM_STATS["hits"] += len(occurrences) - 1
        for i in occurrences:
            # Defensive copy: the cached dict must not alias what callers
            # receive (and possibly mutate).
            payloads[i] = deepcopy(resolved[key])
    assert all(p is not None for p in payloads)
    return payloads  # type: ignore[return-value]


def optimum_result(
    app_name: str, workload: float, *, restarts: int = 2
) -> dict[str, Any]:
    """The full cached OPTM payload for one (app, workload) cell."""
    return optimum_results(app_name, [(workload, restarts)])[0]


def optimum_total(
    app_name: str, workload: float, *, restarts: int = 2
) -> float:
    """Cached OPTM total CPU for (app, workload) on the noiseless model."""
    key = (app_name, round(float(workload), 6), int(restarts))
    # Legacy store entries carrying only ``total_cpu`` still satisfy this
    # query, so don't demand the full allocation.
    payload = _optimum_lookup(key, need_allocation=False)
    if payload is None:
        payload = _optimum_solve(app_name, [(key, float(workload))])[0]
    return float(payload["total_cpu"])


def reset_optimum_cache_info() -> None:
    """Zero the OPTM hit/miss counters without dropping cached solutions.

    Benchmarks and gates call this at run start so their reported cache
    statistics are per-run; the counters otherwise accumulate for the
    process lifetime, which made BENCH_optm.json numbers cumulative
    across back-to-back in-process runs.
    """
    for counter in _OPTM_STATS:
        _OPTM_STATS[counter] = 0


def clear_optimum_cache() -> None:
    """Reset the OPTM cache (tests that tweak calibration need this)."""
    _OPTM_CACHE.clear()
    reset_optimum_cache_info()


def optimum_cache_info() -> dict[str, Any]:
    """Size/hit statistics of the in-process OPTM cache."""
    return {
        "size": len(_OPTM_CACHE),
        "max_size": OPTIMUM_CACHE_SIZE,
        "hits": _OPTM_STATS["hits"],
        "misses": _OPTM_STATS["misses"],
        "store_hits": _OPTM_STATS["store_hits"],
        "solved": _OPTM_STATS["solved"],
        "store_active": _OPTM_STORE is not None,
    }


def _publish_optimum_metrics() -> None:
    """Render-time collector: mirror OPTM cache counters into gauges."""
    registry = default_registry()
    info = optimum_cache_info()
    for field_name in ("size", "hits", "misses", "store_hits", "solved"):
        registry.gauge(
            f"repro_optimum_cache_{field_name}",
            "In-process OPTM solution cache statistic.",
        ).set(float(info[field_name]))


default_registry().add_collector(_publish_optimum_metrics)


def derive_rule_spec(
    spec: ExperimentSpec,
    *,
    n_steps: int = 30,
    mode: str = "utilization",
    seed: int = 0,
) -> ExperimentSpec:
    """The rule-based counterpart of a PEMA spec (same app and workload).

    RULE converges to a fixed point, so it runs once (``repeats=1``) for
    ``n_steps`` intervals under a cell-independent seed (the benchmark
    suite pins it to 0); its engine observes an independent noise stream
    (historical offset +2000) so PEMA and RULE never share measurements.
    """
    return spec.with_(
        name=f"{spec.name}-rule" if spec.name else "rule",
        autoscaler=AutoscalerSpec("rule", {"mode": mode}),
        engine=EngineSpec(
            kind=spec.engine.kind,
            seed_offset=2000,
            params=spec.engine.params,
        ),
        n_steps=n_steps,
        seed=seed,
        repeats=1,
        hooks=(),
    )


def run_comparison(
    spec: ExperimentSpec,
    *,
    rule_steps: int = 30,
    rule_mode: str = "utilization",
    restarts: int = 2,
    pema_artifact: ExperimentArtifact | None = None,
) -> dict[str, float]:
    """One Fig. 15 cell from a single PEMA spec: PEMA vs OPTM vs RULE.

    Returns settled totals (PEMA averaged over the spec's repeats) plus
    the derived ratios the paper reports.  Callers that already ran the
    spec pass its artifact via ``pema_artifact`` to skip the re-run.
    """
    if pema_artifact is not None and pema_artifact.spec != spec:
        raise ValueError("pema_artifact was produced by a different spec")
    workload = WORKLOADS.build(
        spec.workload.kind, **spec.workload.params
    ).rate(0.0)
    if pema_artifact is None:
        pema_artifact = run_experiment(spec)
    pema = pema_artifact.mean_settled_total()
    optm = optimum_total(spec.app, workload, restarts=restarts)
    rule = run_experiment(
        derive_rule_spec(spec, n_steps=rule_steps, mode=rule_mode)
    ).mean_settled_total()
    return {
        "workload_rps": float(workload),
        "pema_total": pema,
        "optm_total": optm,
        "rule_total": rule,
        "pema_over_optm": pema / optm,
        "rule_over_optm": rule / optm,
        "pema_savings_vs_rule": 1.0 - pema / rule,
    }
