"""Fig. 14 — 36-hour SockShop run under a Wikipedia-like diurnal workload.

Paper: workload swings between 200 and 1100 rps following the Wikipedia
trace; PEMA's total CPU tracks the workload (it is not a simple
proportional scaling — distribution matters), and the normalized response
stays at or below the SLO almost everywhere, with the moving average
smoothing transient dips.

The whole scenario is ``benchmarks/grids/fig14_extended.json``: one
1080-interval replay cell (the synthetic Wikipedia diurnal trace as a
declarative ``replay`` segment bounded at 36 hours) with the
``manager_state`` channel captured, so the range-tree refinement this
report asserts comes from the persisted artifact.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

HOURS = 36
STEPS = HOURS * 30  # 2-minute control intervals


def run_fig14():
    run = run_figure_grid("fig14_extended")
    artifact = run.artifacts[0]
    return artifact.manager_state(0), artifact.results[0]


def test_fig14_extended(benchmark):
    state, result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    rows = []
    for hour in range(0, HOURS, 2):
        idx = hour * 30
        window = slice(idx, idx + 30)
        rows.append(
            [
                hour,
                round(float(result.workloads[window].mean()), 0),
                round(float(result.total_cpu[window].mean()), 2),
                round(float(result.responses[window].mean() / 0.250), 3),
            ]
        )
    corr = float(
        np.corrcoef(result.workloads[60:], result.total_cpu[60:])[0, 1]
    )
    range_labels = [
        f"{r['low']:g}~{r['high']:g}" for r in state["ranges"]
    ]
    emit(
        "fig14_extended",
        format_table(
            ["hour", "workload_rps", "total_cpu", "response/SLO"],
            rows,
            title="Fig. 14 — 36-hour SockShop run, Wikipedia-like workload "
            f"(CPU-vs-workload correlation {corr:.2f}; "
            f"violations {result.violation_count()}/{len(result)})",
        )
        + f"\n\nfinal ranges: {', '.join(range_labels)}",
    )
    # CPU tracks the diurnal workload.
    assert corr > 0.6
    # QoS: response below SLO almost everywhere.
    assert result.violation_rate() < 0.10
    # The workload range tree was actually refined.
    assert len(state["splits"]) >= 3
