"""Fig. 20 — adaptability to SLO changes (SockShop).

Paper: the SLO moves 250 → 200 → 300 ms mid-run; PEMA re-navigates without
retraining — more CPU for the tighter SLO, less for the looser one —
demonstrating dynamic SLO as a performance/cost trade-off knob.

The scenario is ``benchmarks/grids/fig20_dynamic_slo.json``: one spec with
``set_slo`` hooks at the two switch points.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

ITERS = 60
SWITCH_1 = 22  # -> 200 ms
SWITCH_2 = 42  # -> 300 ms


def run_fig20():
    run = run_figure_grid("fig20_dynamic_slo")
    return run.artifacts[0].results[0]


def test_fig20_dynamic_slo(benchmark):
    result = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    rows = [
        [
            it,
            round(result.records[it].slo * 1000),
            round(float(result.total_cpu[it]), 2),
            round(float(result.responses[it] * 1000), 0),
        ]
        for it in range(0, ITERS, 3)
    ]
    emit(
        "fig20_dynamic_slo",
        format_table(
            ["iter", "slo_ms", "total_cpu", "response_ms"],
            rows,
            title="Fig. 20 — SLO changes 250→200→300 ms @ iters "
            f"{SWITCH_1}/{SWITCH_2} (paper: PEMA adapts without retraining)",
        ),
    )
    at_250 = result.total_cpu[SWITCH_1 - 5 : SWITCH_1].mean()
    at_200 = result.total_cpu[SWITCH_2 - 5 : SWITCH_2].mean()
    at_300 = result.total_cpu[-4:].mean()
    assert at_200 > at_250 * 0.98  # tighter SLO cannot need less CPU
    assert at_300 < at_200  # looser SLO releases resources
    tail = result.records[-6:]
    assert sum(r.violated for r in tail) <= 2
