"""Feature extraction for the bottleneck-classification study (Table 1).

The paper collects, per microservice:

* ``cpu_usage_seconds_total`` → CPU utilization,
* ``memory_usage_bytes``,
* ``cpu_cfs_throttled_seconds_total`` → throttling time,
* Jaeger ``self_time`` and ``duration``.

and finds that **CPU utilization + CPU throttling time** classify
bottleneck services best.  We reproduce the exact study: extract all five
features per (interval, service) sample, train classifiers on feature
subsets, compare accuracies.
"""

from __future__ import annotations

import numpy as np

from repro.apps.spec import AppSpec
from repro.sim.types import IntervalMetrics

__all__ = ["FEATURE_NAMES", "FEATURE_SUBSETS", "service_features"]

FEATURE_NAMES: tuple[str, ...] = (
    "cpu_utilization",
    "cpu_throttle",
    "memory_usage",
    "self_time",
    "duration",
)

FEATURE_SUBSETS: dict[str, tuple[int, ...]] = {
    "util+throttle": (0, 1),
    "util": (0,),
    "throttle": (1,),
    "memory": (2,),
    "tracing": (3, 4),
    "all": (0, 1, 2, 3, 4),
}
"""Named feature subsets compared in the study (paper picks util+throttle)."""


def service_features(
    app: AppSpec,
    metrics: IntervalMetrics,
    service: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """One sample's 5-feature vector for one service.

    Memory usage is synthesized from the service's footprint (memory is
    explicitly *not* a bottleneck in the paper's setup, §2.2, so this
    feature is uninformative by design — part of why it loses to
    util+throttle).  The tracing features approximate Jaeger's self_time /
    duration: the latency floor and its congestion-inflated value.
    """
    svc = metrics.services[service]
    spec = app.service(service)
    mem = spec.memory_mb * (0.55 + 0.25 * svc.utilization)
    mem *= float(np.exp(rng.normal(0.0, 0.05)))
    self_time = spec.latency_floor * float(np.exp(rng.normal(0.0, 0.08)))
    # Duration inflates with congestion; throttling adds stall time.
    congestion = 1.0 + 2.5 * svc.utilization + 0.02 * svc.throttle_seconds
    duration = self_time * congestion * float(np.exp(rng.normal(0.0, 0.10)))
    return np.asarray(
        [
            svc.utilization,
            svc.throttle_seconds,
            mem,
            self_time,
            duration,
        ],
        dtype=np.float64,
    )
