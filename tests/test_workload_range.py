"""Dynamic workload-range tree: §3.4 splitting semantics."""

import numpy as np
import pytest

from repro.core import PEMAConfig, PEMAController
from repro.core.workload_range import RangeTree, WorkloadRange
from repro.sim.types import Allocation

SERVICES = ("a", "b")


def make_controller(seed: int = 0) -> PEMAController:
    return PEMAController(
        SERVICES,
        0.25,
        Allocation({"a": 2.0, "b": 2.0}),
        PEMAConfig(explore_a=0.0, explore_b=0.0),
        seed=seed,
    )


def make_tree(split_after: int = 3, min_width: float = 25.0) -> RangeTree:
    return RangeTree.initial(
        200.0, 400.0, make_controller(), min_width=min_width,
        split_after=split_after,
    )


class TestWorkloadRange:
    def test_contains(self):
        r = WorkloadRange(100.0, 200.0, make_controller(), pema_id=1)
        assert r.contains(100.0)
        assert r.contains(199.9)
        assert not r.contains(200.0)

    def test_label(self):
        r = WorkloadRange(200.0, 300.0, make_controller(), pema_id=1)
        assert r.label() == "200~300"

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadRange(200.0, 200.0, make_controller(), pema_id=1)


class TestRangeTree:
    def test_initial_single_leaf(self):
        tree = make_tree()
        assert len(tree.leaves) == 1
        assert tree.leaves[0].pema_id == 1

    def test_find_clamps(self):
        tree = make_tree()
        assert tree.find(250.0) is tree.leaves[0]
        assert tree.find(0.0) is tree.leaves[0]
        assert tree.find(9999.0) is tree.leaves[0]

    def test_find_empty_tree(self):
        tree = RangeTree(min_width=25.0, split_after=3)
        with pytest.raises(LookupError):
            tree.find(100.0)

    def test_split_after_enough_steps(self, rng):
        tree = make_tree(split_after=3)
        leaf = tree.leaves[0]
        assert tree.note_step(leaf, rng) is None
        assert tree.note_step(leaf, rng) is None
        event = tree.note_step(leaf, rng)
        assert event is not None
        assert event.parent == (200.0, 400.0)
        assert event.lower == (200.0, 300.0)
        assert event.upper == (300.0, 400.0)
        assert len(tree.leaves) == 2

    def test_parent_keeps_upper_child(self, rng):
        """§3.4: the parent's PEMA stays attached to the higher range."""
        tree = make_tree(split_after=1)
        leaf = tree.leaves[0]
        parent_controller = leaf.controller
        event = tree.note_step(leaf, rng)
        upper = next(l for l in tree.leaves if l.low == 300.0)
        lower = next(l for l in tree.leaves if l.low == 200.0)
        assert upper.controller is parent_controller
        assert upper.pema_id == 1
        assert lower.pema_id == 2
        assert lower.controller is not parent_controller
        assert event.upper_pema_id == 1
        assert event.lower_pema_id == 2

    def test_child_bootstrapped_from_parent(self, rng):
        tree = make_tree(split_after=1)
        leaf = tree.leaves[0]
        parent_alloc = leaf.controller.allocation
        tree.note_step(leaf, rng)
        lower = next(l for l in tree.leaves if l.low == 200.0)
        assert lower.controller.allocation == parent_alloc

    def test_min_width_stops_splitting(self, rng):
        tree = make_tree(split_after=1, min_width=100.0)
        leaf = tree.leaves[0]
        tree.note_step(leaf, rng)  # 200~400 -> 200~300, 300~400
        for child in list(tree.leaves):
            for _ in range(5):
                assert tree.note_step(child, rng) is None  # width == min
        assert len(tree.leaves) == 2

    def test_recursive_split_reaches_target_granularity(self, rng):
        tree = make_tree(split_after=1, min_width=25.0)
        for _ in range(40):
            for leaf in list(tree.leaves):
                if leaf in tree.leaves:
                    tree.note_step(leaf, rng)
        widths = sorted(l.width for l in tree.leaves)
        assert widths == [25.0] * 8
        # Process ids are unique per leaf.
        ids = [l.pema_id for l in tree.leaves]
        assert len(set(ids)) == len(ids)

    def test_note_step_foreign_leaf_rejected(self, rng):
        tree = make_tree()
        foreign = WorkloadRange(0.0, 10.0, make_controller(), pema_id=9)
        with pytest.raises(ValueError):
            tree.note_step(foreign, rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeTree(min_width=0.0, split_after=3)
        with pytest.raises(ValueError):
            RangeTree(min_width=10.0, split_after=0)
