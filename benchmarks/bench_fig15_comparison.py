"""Fig. 15 — PEMA vs OPTM vs RULE across apps and workloads (headline).

Paper: normalized to OPTM, PEMA stays close to 1 (drifting slightly up
with workload) while the commercial rule-based autoscaler costs up to 33%
more than PEMA (SockShop at high workload).  PEMA is averaged over
repeated runs because its navigation is randomized.

The 9 (app, workload) points x {pema, rule} cells are
``benchmarks/grids/fig15_comparison.json``; OPTM is the analytical
exhaustive search, computed per point.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import figure_optimum, run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table


def run_fig15():
    run = run_figure_grid("fig15_comparison")
    # Pair each (app, workload) point's pema/rule artifacts by their grid
    # coordinates (robust to axis order in the grid file).
    points: dict[str, dict[str, object]] = {}
    for cell, artifact in run:
        entry = points.setdefault(cell.coords["cell"], {"spec": cell.spec})
        entry[cell.coords["autoscaler"]] = artifact
    rows = []
    stats = []
    for entry in points.values():
        spec = entry["spec"]
        app_name = spec.app
        wl = spec.workload.params["rps"]
        opt = figure_optimum(app_name, wl)
        pema = entry["pema"].mean_settled_total()
        rule = entry["rule"].mean_settled_total()
        savings = (1.0 - pema / rule) * 100.0
        rows.append(
            [
                app_name,
                wl,
                1.0,
                round(pema / opt, 2),
                round(rule / opt, 2),
                f"{savings:.0f}%",
            ]
        )
        stats.append((app_name, wl, pema / opt, rule / opt, savings))
    return rows, stats


def test_fig15_comparison(benchmark):
    rows, stats = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    emit(
        "fig15_comparison",
        format_table(
            ["app", "workload_rps", "OPTM", "PEMA/OPTM", "RULE/OPTM",
             "PEMA_savings_vs_RULE"],
            rows,
            title="Fig. 15 — normalized CPU allocation (paper: PEMA close "
            "to optimum, saves up to 33% vs RULE)",
        ),
    )
    for app_name, wl, pema_ratio, rule_ratio, savings in stats:
        # Ordering: OPTM <= PEMA < RULE at every point.
        assert pema_ratio >= 0.97, (app_name, wl, pema_ratio)
        assert pema_ratio < rule_ratio, (app_name, wl)
        # PEMA near-optimal (the paper's bars sit just above 1).
        assert pema_ratio < 1.45, (app_name, wl, pema_ratio)
    max_savings = max(s for *_rest, s in stats)
    # The headline: savings reach deep double digits (paper: 33%).
    assert 20.0 <= max_savings <= 50.0
