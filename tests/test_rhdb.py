"""Resource history database: rollback, exploration, tainting."""

import numpy as np
import pytest

from repro.core.rhdb import ResourceHistoryDB, RHDbRecord
from repro.sim.types import Allocation


def record(step: int, total: float, response: float, slo: float = 0.25):
    return RHDbRecord(
        step=step,
        allocation=Allocation({"a": total / 2, "b": total / 2}),
        response=response,
        workload=100.0,
        slo=slo,
    )


class TestInsert:
    def test_steps_must_increase(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 4.0, 0.1))
        with pytest.raises(ValueError):
            db.insert(record(1, 4.0, 0.1))

    def test_len_and_iter(self):
        db = ResourceHistoryDB()
        for i in range(3):
            db.insert(record(i + 1, 4.0, 0.1))
        assert len(db) == 3
        assert [r.step for r in db] == [1, 2, 3]

    def test_last(self):
        db = ResourceHistoryDB()
        assert db.last() is None
        db.insert(record(1, 4.0, 0.1))
        assert db.last().step == 1

    def test_eviction_keeps_best_rollback(self):
        db = ResourceHistoryDB(max_records=3)
        db.insert(record(1, 2.0, 0.1))  # the best rollback (min total, ok)
        db.insert(record(2, 8.0, 0.1))
        db.insert(record(3, 9.0, 0.1))
        db.insert(record(4, 10.0, 0.1))  # evicts something, but not step 1
        assert len(db) == 3
        assert db.best_rollback(0.25).step == 1

    def test_max_records_validation(self):
        with pytest.raises(ValueError):
            ResourceHistoryDB(max_records=0)


class TestRollback:
    def test_min_total_satisfying(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 10.0, 0.10))
        db.insert(record(2, 6.0, 0.20))
        db.insert(record(3, 4.0, 0.30))  # violates slo=0.25
        best = db.best_rollback(0.25)
        assert best.step == 2
        assert best.total_cpu == pytest.approx(6.0)

    def test_none_when_all_violate(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 10.0, 0.90))
        assert db.best_rollback(0.25) is None

    def test_violated_property(self):
        assert record(1, 4.0, 0.30).violated
        assert not record(1, 4.0, 0.20).violated


class TestTaint:
    def test_tainted_excluded_from_rollback(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 10.0, 0.10))
        db.insert(record(2, 6.0, 0.20))
        db.taint(record(2, 6.0, 0.20).allocation)
        assert db.best_rollback(0.25).step == 1

    def test_taint_hits_all_records_of_allocation(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 6.0, 0.20))
        db.insert(record(5, 6.0, 0.18))  # same allocation, different step
        db.insert(record(7, 10.0, 0.10))
        db.taint(record(1, 6.0, 0.20).allocation)
        assert db.best_rollback(0.25).step == 7

    def test_is_tainted(self):
        db = ResourceHistoryDB()
        alloc = Allocation({"a": 1.0})
        assert not db.is_tainted(alloc)
        db.taint(alloc)
        assert db.is_tainted(alloc)

    def test_tainted_excluded_from_exploration(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 6.0, 0.20))
        db.taint(record(1, 6.0, 0.20).allocation)
        rng = np.random.default_rng(0)
        assert db.random_non_violating(0.25, rng) is None


class TestExploration:
    def test_uniform_over_satisfying(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 10.0, 0.10))
        db.insert(record(2, 6.0, 0.20))
        db.insert(record(3, 4.0, 0.90))  # violating, never returned
        rng = np.random.default_rng(0)
        seen = {db.random_non_violating(0.25, rng).step for _ in range(100)}
        assert seen == {1, 2}

    def test_none_on_empty(self):
        rng = np.random.default_rng(0)
        assert ResourceHistoryDB().random_non_violating(0.25, rng) is None


class TestClone:
    def test_clone_is_independent(self):
        db = ResourceHistoryDB()
        db.insert(record(1, 10.0, 0.10))
        db.taint(Allocation({"x": 1.0}))
        clone = db.clone()
        clone.insert(record(2, 6.0, 0.2))
        assert len(db) == 1
        assert len(clone) == 2
        assert clone.is_tainted(Allocation({"x": 1.0}))
