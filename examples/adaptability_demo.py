#!/usr/bin/env python
"""Adaptability: PEMA re-converges after hardware and SLO changes.

Reproduces the paper's Figs. 19-20 story in one run on SockShop:

* at iteration 25 the cluster's clock drops 1.8 -> 1.6 GHz (a hardware
  change that raises CPU demand);
* at iteration 45 it rises to 2.0 GHz;
* at iteration 65 the SLO tightens 250 -> 200 ms;
* at iteration 85 it relaxes to 300 ms.

No retraining happens anywhere — the same feedback loop just keeps
navigating.

Run:  python examples/adaptability_demo.py
"""

from repro import AnalyticalEngine, ControlLoop, PEMAController, build_app
from repro.cluster import Cluster
from repro.workload import ConstantWorkload

WORKLOAD = 700.0
EVENTS = {
    25: ("clock -> 1.6 GHz", lambda loop, cluster: _set_clock(loop, cluster, 1.6)),
    45: ("clock -> 2.0 GHz", lambda loop, cluster: _set_clock(loop, cluster, 2.0)),
    65: ("SLO -> 200 ms", lambda loop, cluster: loop.autoscaler.set_slo(0.200)),
    85: ("SLO -> 300 ms", lambda loop, cluster: loop.autoscaler.set_slo(0.300)),
}


def _set_clock(loop, cluster, ghz: float) -> None:
    cluster.set_frequency(ghz)
    loop.environment.set_cpu_speed(cluster.speed_factor)


def main() -> None:
    app = build_app("sockshop")
    engine = AnalyticalEngine(app, seed=4)
    cluster = Cluster()
    pema = PEMAController(
        app.service_names, app.slo, app.generous_allocation(WORKLOAD), seed=5
    )
    loop = ControlLoop(
        engine, pema, ConstantWorkload(WORKLOAD), cluster=cluster
    )

    def on_step(step, lp):
        if step in EVENTS:
            label, action = EVENTS[step]
            action(lp, cluster)
            print(f"--- iteration {step}: {label} ---")

    result = loop.run(105, on_step=on_step)

    print("\niter  slo_ms  total_cpu  p95_ms  violated")
    for record in result.records[::5]:
        print(f"{record.step:4d}  {record.slo * 1000:6.0f}  "
              f"{record.total_cpu:9.2f}  {record.response * 1000:6.0f}  "
              f"{'x' if record.violated else ''}")

    segs = {
        "baseline (1.8 GHz, 250 ms)": slice(18, 25),
        "slow clock (1.6 GHz)": slice(38, 45),
        "fast clock (2.0 GHz)": slice(58, 65),
        "tight SLO (200 ms)": slice(78, 85),
        "loose SLO (300 ms)": slice(100, 105),
    }
    print("\nsettled total CPU by regime:")
    for label, seg in segs.items():
        cpu = result.total_cpu[seg].mean()
        print(f"  {label:28s} {cpu:6.2f}")


if __name__ == "__main__":
    main()
