"""Analytical engine: Environment protocol, monotonicity, operating knobs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import AnalyticalEngine, Allocation, NoiseModel
from repro.sim.environment import Environment

from tests.conftest import build_tiny_app

_APP = build_tiny_app()
_ENGINE = AnalyticalEngine(_APP, noise=NoiseModel.none(), seed=0)


class TestProtocol:
    def test_implements_environment(self, tiny_engine):
        assert isinstance(tiny_engine, Environment)

    def test_observe_structure(self, tiny_app, tiny_engine):
        alloc = tiny_app.generous_allocation(100.0)
        m = tiny_engine.observe(alloc, 100.0)
        assert m.latency_p95 > 0
        assert m.workload_rps == 100.0
        assert set(m.services) == set(tiny_app.service_names)
        for svc in m.services.values():
            assert 0.0 <= svc.utilization <= 1.0
            assert svc.throttle_seconds >= 0.0
            assert svc.usage_cores >= 0.0

    def test_negative_workload_rejected(self, tiny_engine, tiny_app):
        with pytest.raises(ValueError):
            tiny_engine.observe(tiny_app.generous_allocation(100.0), -5.0)

    def test_invalid_p_crit(self, tiny_app):
        with pytest.raises(ValueError):
            AnalyticalEngine(tiny_app, p_crit=1.5)


class TestDeterminism:
    def test_noiseless_is_deterministic(self, tiny_app):
        e1 = AnalyticalEngine(tiny_app, seed=1)
        e2 = AnalyticalEngine(tiny_app, seed=999)
        alloc = tiny_app.generous_allocation(100.0)
        assert e1.noiseless_latency(alloc, 100.0) == pytest.approx(
            e2.noiseless_latency(alloc, 100.0)
        )

    def test_same_seed_same_observations(self, tiny_app):
        alloc = tiny_app.generous_allocation(100.0)
        a = AnalyticalEngine(tiny_app, seed=5).observe(alloc, 100.0)
        b = AnalyticalEngine(tiny_app, seed=5).observe(alloc, 100.0)
        assert a.latency_p95 == pytest.approx(b.latency_p95)

    def test_noise_none_matches_noiseless(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, noise=NoiseModel.none(), seed=3)
        alloc = tiny_app.generous_allocation(100.0)
        assert engine.observe(alloc, 100.0).latency_p95 == pytest.approx(
            engine.noiseless_latency(alloc, 100.0)
        )


class TestMonotonicity:
    """The paper's key observation: monotone reduction => monotone latency."""

    @given(
        service_idx=st.integers(min_value=0, max_value=3),
        factor=st.floats(min_value=0.3, max_value=0.95),
        workload=st.floats(min_value=20.0, max_value=300.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_service_reduction_never_helps(
        self, service_idx, factor, workload
    ):
        base = _APP.generous_allocation(workload)
        name = _APP.service_names[service_idx]
        reduced = base.with_value(name, base[name] * factor)
        lat_base = _ENGINE.noiseless_latency(base, workload)
        lat_reduced = _ENGINE.noiseless_latency(reduced, workload)
        assert lat_reduced >= lat_base - 1e-12

    @given(
        factors=st.lists(
            st.floats(min_value=0.4, max_value=1.0), min_size=4, max_size=4
        ),
        workload=st.floats(min_value=20.0, max_value=300.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_service_monotone(self, factors, workload):
        base = _APP.generous_allocation(workload)
        reduced = Allocation(
            {n: base[n] * f for n, f in zip(_APP.service_names, factors)}
        )
        assert reduced.monotone_le(base)
        assert _ENGINE.noiseless_latency(
            reduced, workload
        ) >= _ENGINE.noiseless_latency(base, workload) - 1e-12

    def test_latency_increases_with_workload(self, tiny_app, tiny_engine):
        alloc = tiny_app.generous_allocation(150.0)
        lats = [
            tiny_engine.noiseless_latency(alloc, wl) for wl in (50, 100, 150, 250)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(lats, lats[1:]))


class TestOperatingConditions:
    def test_cpu_speed_changes_latency(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, noise=NoiseModel.none())
        alloc = tiny_app.generous_allocation(100.0)
        base = engine.noiseless_latency(alloc, 100.0)
        engine.set_cpu_speed(0.8)  # slower clock
        slow = engine.noiseless_latency(alloc, 100.0)
        engine.set_cpu_speed(1.2)  # faster clock
        fast = engine.noiseless_latency(alloc, 100.0)
        assert slow > base > fast

    def test_invalid_speed(self, tiny_engine):
        with pytest.raises(ValueError):
            tiny_engine.set_cpu_speed(0.0)

    def test_bottleneck_allocation_has_min_floor(self, tiny_app, tiny_engine):
        b = tiny_engine.bottleneck_allocation(100.0)
        assert all(b[n] >= 0.05 for n in b)

    def test_bottleneck_scales_with_workload(self, tiny_engine):
        b_low = tiny_engine.bottleneck_allocation(50.0)
        b_high = tiny_engine.bottleneck_allocation(400.0)
        assert b_high.total() > b_low.total()

    def test_speed_change_invalidates_cache(self, tiny_app):
        engine = AnalyticalEngine(tiny_app, noise=NoiseModel.none())
        b1 = engine.bottleneck_allocation(100.0).total()
        engine.set_cpu_speed(0.5)
        b2 = engine.bottleneck_allocation(100.0).total()
        assert b2 > b1  # slower CPU needs more cores
