"""Declarative experiment API: one spec -> runner -> artifact pipeline.

Every evaluation scenario in the repository — the 22 benchmark figures,
the examples, the CLI commands — reduces to the same construction:
build an app, wrap it in a performance-model engine, point an autoscaler
at it, drive a control loop over a workload trace, and summarize the
run.  This package makes that construction declarative:

* :class:`ExperimentSpec` — a frozen, JSON-round-tripping description of
  one experiment (app, engine backend, workload trace, autoscaler,
  SLO/interval/seed/repeats, mid-run hooks);
* registries (:data:`ENGINES`, :data:`AUTOSCALERS`, :data:`WORKLOADS`,
  :data:`HOOKS`) that resolve the spec's string keys to factories and
  accept third-party extensions;
* :func:`run_experiment` / :func:`run_sweep` — execute specs (multi-seed,
  optionally fanned out over processes) into
  :class:`ExperimentArtifact` objects that carry per-seed histories,
  summary statistics, and lossless JSON serialization;
* :func:`run_comparison` — a Fig. 15 cell (PEMA vs OPTM vs RULE) from a
  single PEMA spec.

Quickstart::

    from repro.experiments import ExperimentSpec, run_experiment

    spec = ExperimentSpec(app="sockshop", workload=700.0, n_steps=60,
                          seed=1, repeats=3)
    artifact = run_experiment(spec, parallel=3)
    print(artifact.summary()["settled_total_mean"])
"""

from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.registry import (
    AUTOSCALERS,
    ENGINES,
    HOOKS,
    WORKLOADS,
    Registry,
)
from repro.experiments.runner import (
    ExperimentUnit,
    build_unit,
    capture_manager_state,
    clear_optimum_cache,
    derive_rule_spec,
    hooks_on_step,
    optimum_cache_info,
    optimum_result,
    optimum_results,
    optimum_store,
    reset_optimum_cache_info,
    optimum_total,
    run_comparison,
    run_experiment,
    run_sweep,
    run_unit,
    set_optimum_store,
)
from repro.experiments.spec import (
    CAPTURE_CHANNELS,
    SPEC_FIELDS,
    AutoscalerSpec,
    ComponentSpec,
    EngineSpec,
    ExperimentSpec,
    HookSpec,
    WorkloadSpec,
)

__all__ = [
    "ExperimentSpec",
    "WorkloadSpec",
    "AutoscalerSpec",
    "EngineSpec",
    "HookSpec",
    "ComponentSpec",
    "CAPTURE_CHANNELS",
    "SPEC_FIELDS",
    "ExperimentArtifact",
    "ExperimentUnit",
    "Registry",
    "ENGINES",
    "AUTOSCALERS",
    "WORKLOADS",
    "HOOKS",
    "build_unit",
    "capture_manager_state",
    "hooks_on_step",
    "run_unit",
    "run_experiment",
    "run_sweep",
    "run_comparison",
    "derive_rule_spec",
    "optimum_total",
    "optimum_result",
    "optimum_results",
    "clear_optimum_cache",
    "optimum_cache_info",
    "reset_optimum_cache_info",
    "set_optimum_store",
    "optimum_store",
]
