"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the registered prototype applications.
``run``
    Run PEMA against a simulated deployment and print the trajectory.
``optimum``
    Find the OPTM allocation for an app/workload (paper §4.2 definition).
``compare``
    PEMA vs OPTM vs RULE at one operating point (a Fig. 15 cell).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps import app_names, build_app
from repro.baselines import OptimumSearch, RuleBasedAutoscaler
from repro.core import (
    ControlLoop,
    FastReactionLoop,
    PEMAConfig,
    PEMAController,
)
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PEMA (HPDC '22) reproduction: practical efficient "
        "microservice autoscaling with QoS assurance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the prototype applications")

    desc = sub.add_parser("describe", help="show one application's topology")
    desc.add_argument("--app", default="sockshop", choices=app_names())
    desc.add_argument("--plan", default=None,
                      help="also show one request class's execution plan")

    run = sub.add_parser("run", help="run PEMA on a simulated deployment")
    _common_args(run)
    run.add_argument("--iterations", type=int, default=70)
    run.add_argument("--alpha", type=float, default=0.5)
    run.add_argument("--beta", type=float, default=0.3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--every", type=int, default=5,
                     help="print every Nth interval")
    run.add_argument("--fast", action="store_true",
                     help="enable sub-interval violation mitigation (§6)")

    opt = sub.add_parser("optimum", help="search the OPTM allocation")
    _common_args(opt)
    opt.add_argument("--restarts", type=int, default=2)
    opt.add_argument("--deep", action="store_true",
                     help="enable pairwise redistribution beyond the "
                     "paper's single-coordinate definition")

    cmp_ = sub.add_parser("compare", help="PEMA vs OPTM vs RULE")
    _common_args(cmp_)
    cmp_.add_argument("--iterations", type=int, default=60)
    cmp_.add_argument("--seed", type=int, default=0)
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--app", default="sockshop", choices=app_names())
    sub.add_argument("--workload", type=float, default=None,
                     help="requests per second (default: the app's "
                     "reference workload)")


def _cmd_apps() -> int:
    print(f"{'app':20s} {'services':>8s} {'SLO_ms':>7s} {'ref_rps':>8s}")
    for name in app_names():
        app = build_app(name)
        print(f"{name:20s} {app.n_services:8d} {app.slo * 1000:7.0f} "
              f"{app.reference_workload:8.0f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    config = PEMAConfig(alpha=args.alpha, beta=args.beta)
    engine = AnalyticalEngine(app, seed=args.seed + 1000)
    controller = PEMAController(
        app.service_names, app.slo, app.generous_allocation(workload),
        config, seed=args.seed,
    )
    trace = ConstantWorkload(workload)
    if args.fast:
        loop = FastReactionLoop(engine, controller, trace)
        result = loop.run(args.iterations)
    else:
        result = ControlLoop(engine, controller, trace).run(args.iterations)
    print(f"# {args.app} @ {workload:.0f} rps, SLO {app.slo * 1000:.0f} ms, "
          f"alpha={args.alpha} beta={args.beta}"
          + (" (fast monitor)" if args.fast else ""))
    print("iter  total_cpu  p95_ms  violated")
    for record in result.records[:: max(args.every, 1)]:
        print(f"{record.step:4d}  {record.total_cpu:9.2f}  "
              f"{record.response * 1000:6.0f}  "
              f"{'x' if record.violated else ''}")
    print(f"\nsettled total CPU : {result.settled_total():.2f}")
    print(f"violations        : {result.violation_count()}"
          f"/{len(result)} intervals")
    if args.fast:
        print(f"violation exposure: {result.violation_exposure() * 100:.1f}% "
              f"of wall-clock time ({result.mitigations} fast mitigations)")
    return 0


def _cmd_optimum(args: argparse.Namespace) -> int:
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    engine = AnalyticalEngine(app)
    search = OptimumSearch(engine, restarts=args.restarts, deep=args.deep)
    result = search.find(workload)
    print(f"# OPTM for {args.app} @ {workload:.0f} rps "
          f"({result.evaluations} evaluations)")
    for name in app.service_names:
        print(f"  {name:20s} {result.allocation[name]:6.2f}")
    print(f"total CPU : {result.total_cpu:.2f}")
    print(f"latency   : {result.latency * 1000:.1f} ms "
          f"(SLO {app.slo * 1000:.0f} ms)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    start = app.generous_allocation(workload)
    optimum = OptimumSearch(AnalyticalEngine(app), restarts=2).find(workload)
    pema = PEMAController(
        app.service_names, app.slo, start, seed=args.seed
    )
    pema_total = (
        ControlLoop(
            AnalyticalEngine(app, seed=args.seed + 1), pema,
            ConstantWorkload(workload),
        )
        .run(args.iterations)
        .settled_total()
    )
    rule = RuleBasedAutoscaler(start)
    rule_total = (
        ControlLoop(
            AnalyticalEngine(app, seed=args.seed + 2), rule,
            ConstantWorkload(workload), slo=app.slo,
        )
        .run(25)
        .settled_total()
    )
    print(f"# {args.app} @ {workload:.0f} rps")
    print(f"OPTM : {optimum.total_cpu:7.2f} CPU")
    print(f"PEMA : {pema_total:7.2f} CPU  "
          f"({pema_total / optimum.total_cpu:.2f}x optimum)")
    print(f"RULE : {rule_total:7.2f} CPU  "
          f"(PEMA saves {(1 - pema_total / rule_total) * 100:.0f}%)")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.apps.describe import describe_app, describe_plan

    app = build_app(args.app)
    print(describe_app(app))
    if args.plan is not None:
        print()
        print(describe_plan(app, args.plan))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "optimum":
        return _cmd_optimum(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
