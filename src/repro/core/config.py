"""PEMA configuration: the paper's tunables in one place."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PEMAConfig"]


@dataclass(frozen=True)
class PEMAConfig:
    """All knobs of Algorithm 1 and the workload-aware extensions.

    Defaults follow the paper's evaluation settings: α=0.5, β=0.3 (the
    sensitivity sweeps' center, Figs. 16-17), low exploration A=0.05,
    B=0.005 (Fig. 11), a 5-sample moving average (Fig. 14), a 15%
    initial utilization threshold and zero initial throttling threshold
    (§3.3), and a 95% response-time buffer (§3.3, "we can keep a response
    time buffer by scaling down R, for instance, to 95%").
    """

    alpha: float = 0.5
    """Reduction affinity (Eqns. 3-4); smaller = more aggressive."""

    beta: float = 0.3
    """Maximum per-step resource reduction fraction (Eqn. 4)."""

    explore_a: float = 0.05
    """Exploration slope A in Eqn. (8) — maximum extra exploration."""

    explore_b: float = 0.005
    """Exploration floor B in Eqn. (8) — minimum exploration."""

    moving_average_window: int = 5
    """K in Eqns. (10)-(11): responses averaged for reduction sizing."""

    init_util_threshold: float = 0.15
    """Initial conservative per-service utilization threshold (15%)."""

    init_throttle_threshold: float = 0.0
    """Initial CPU-throttling-time threshold (zero: no throttling)."""

    response_buffer: float = 0.95
    """R is scaled by this in Eqns. (3)/(4)/(8) to absorb transients."""

    min_cpu: float = 0.05
    """Per-service CPU floor (Kubernetes minimum request)."""

    use_bottleneck_filter: bool = True
    """Ablation switch: disable the throttle filter + Eqn. (5) guidance
    (selection becomes uniform over all services)."""

    use_dynamic_thresholds: bool = True
    """Ablation switch: freeze U_th/H_th at their initial values
    (Eqns. 6-7 disabled)."""

    rollback_severity_gain: float = 0.0
    """§6 extension: severity-aware rollback.

    The paper's controller rolls back to the minimum-CPU non-violating
    record regardless of how bad the violation was and flags this as a
    limitation ("a response time significantly higher than the SLO
    indicates that PEMA should roll back farther into the past").  With
    gain g > 0, a violation overshooting the SLO by fraction v targets
    records whose response was at most ``SLO * (1 - min(0.5, g*v))`` —
    deeper violations jump back to safer allocations.  0 disables (paper
    behaviour)."""

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {self.alpha}")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1]: {self.beta}")
        if not 0.0 <= self.explore_b <= self.explore_a <= 1.0:
            raise ValueError(
                f"need 0 <= B <= A <= 1: A={self.explore_a}, B={self.explore_b}"
            )
        if self.explore_a + self.explore_b > 1.0:
            raise ValueError("need A + B <= 1")
        if self.moving_average_window < 1:
            raise ValueError("moving_average_window must be >= 1")
        if not 0.0 <= self.init_util_threshold <= 1.0:
            raise ValueError("init_util_threshold must be in [0, 1]")
        if self.init_throttle_threshold < 0:
            raise ValueError("init_throttle_threshold must be >= 0")
        if not 0.0 < self.response_buffer <= 1.0:
            raise ValueError("response_buffer must be in (0, 1]")
        if self.min_cpu <= 0:
            raise ValueError("min_cpu must be positive")
        if self.rollback_severity_gain < 0:
            raise ValueError("rollback_severity_gain must be >= 0")

    def with_(self, **changes) -> "PEMAConfig":
        """A modified copy (sweeps over α, β, A, B, ...)."""
        return replace(self, **changes)

    @classmethod
    def high_exploration(cls) -> "PEMAConfig":
        """The paper's Fig. 11 'high exploration' setting."""
        return cls(explore_a=0.10, explore_b=0.01)

    @classmethod
    def low_exploration(cls) -> "PEMAConfig":
        """The paper's Fig. 11 'low exploration' setting."""
        return cls(explore_a=0.05, explore_b=0.005)
