"""Horizontal scaling — §6's unaddressed vertical/horizontal trade-off.

The paper scales every microservice *vertically* (one replica, CPU limit
adjusted) and lists the interplay with *horizontal* scaling (replica
counts) as future work.  This module supplies the missing piece:

* :class:`ReplicaAllocator` maps a replica vector onto the *effective*
  CPU available to the service.  Each replica duplicates the service's
  workload-independent baseline demand (JVM, GC, heartbeats), so

      effective(n) = n * pod_cpu - (n - 1) * baseline

  — the substance of the trade-off: horizontal scale-out buys burst
  capacity but pays runtime overhead per copy.
* :class:`HorizontalRuleAutoscaler` is a Kubernetes-HPA-style baseline
  that adjusts integer replica counts to hold a target utilization,
  exposing the same ``decide(metrics) -> Allocation`` protocol as every
  other autoscaler (the returned allocation is the effective one, so any
  environment can serve it unchanged).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.apps.spec import AppSpec
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["ReplicaAllocator", "HorizontalRuleAutoscaler"]


class ReplicaAllocator:
    """Replica-count ↔ effective-CPU translation for one application."""

    def __init__(
        self,
        app: AppSpec,
        pod_cpu: Mapping[str, float] | float,
        max_replicas: int = 16,
    ) -> None:
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        self.app = app
        if isinstance(pod_cpu, (int, float)):
            pod_cpu = {name: float(pod_cpu) for name in app.service_names}
        missing = set(app.service_names) - set(pod_cpu)
        if missing:
            raise ValueError(f"pod_cpu misses services: {sorted(missing)}")
        for name in app.service_names:
            svc = app.service(name)
            if pod_cpu[name] <= svc.baseline_cores:
                raise ValueError(
                    f"{name}: pod size {pod_cpu[name]} cannot even cover the "
                    f"per-replica baseline {svc.baseline_cores}"
                )
        self.pod_cpu = {name: float(pod_cpu[name]) for name in app.service_names}
        self.max_replicas = max_replicas

    def effective_cpu(self, service: str, replicas: int) -> float:
        """Usable CPU of ``replicas`` pods after per-copy overhead."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        baseline = self.app.service(service).baseline_cores
        return replicas * self.pod_cpu[service] - (replicas - 1) * baseline

    def effective_allocation(self, replicas: Mapping[str, int]) -> Allocation:
        return Allocation(
            {
                name: self.effective_cpu(name, replicas[name])
                for name in self.app.service_names
            }
        )

    def raw_total(self, replicas: Mapping[str, int]) -> float:
        """Total provisioned CPU (what the cluster bill sees)."""
        return sum(
            replicas[name] * self.pod_cpu[name]
            for name in self.app.service_names
        )

    def replicas_for(self, service: str, effective_target: float) -> int:
        """Fewest replicas whose effective CPU covers the target."""
        if effective_target <= 0:
            return 1
        pod = self.pod_cpu[service]
        baseline = self.app.service(service).baseline_cores
        # effective(n) = n(pod - baseline) + baseline  >=  target
        per_extra = pod - baseline
        n = math.ceil((effective_target - baseline) / per_extra)
        return max(1, min(n, self.max_replicas))


class HorizontalRuleAutoscaler:
    """HPA-style integer replica scaling on a utilization target."""

    def __init__(
        self,
        allocator: ReplicaAllocator,
        *,
        target_utilization: float = 0.10,
        scale_down_limit: int = 1,
        initial_replicas: Mapping[str, int] | int = 4,
    ) -> None:
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if scale_down_limit < 1:
            raise ValueError("scale_down_limit must be >= 1")
        self.allocator = allocator
        self.target_utilization = target_utilization
        self.scale_down_limit = scale_down_limit
        names = allocator.app.service_names
        if isinstance(initial_replicas, int):
            initial_replicas = {name: initial_replicas for name in names}
        self.replicas = {
            name: min(max(int(initial_replicas[name]), 1),
                      allocator.max_replicas)
            for name in names
        }

    @property
    def allocation(self) -> Allocation:
        return self.allocator.effective_allocation(self.replicas)

    def raw_total(self) -> float:
        return self.allocator.raw_total(self.replicas)

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        """HPA rule: desired effective CPU = usage / target utilization."""
        for name in self.allocator.app.service_names:
            usage = metrics.services[name].usage_cores
            desired_effective = usage / self.target_utilization
            desired_n = self.allocator.replicas_for(name, desired_effective)
            current = self.replicas[name]
            if desired_n < current:
                # HPA stabilization: bounded scale-down per interval.
                desired_n = max(desired_n, current - self.scale_down_limit)
            self.replicas[name] = desired_n
        return self.allocation
