"""Metrics substrate: series, store, queries, collector."""

import numpy as np
import pytest

from repro.metrics import (
    MetricsCollector,
    MetricsStore,
    TimeSeries,
    max_over_window,
    moving_average,
    percentile_over_window,
    rate,
)
from repro.sim.types import Allocation, IntervalMetrics, ServiceMetrics


class TestTimeSeries:
    def test_append_and_read(self):
        s = TimeSeries()
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert len(s) == 2
        assert s.last_value == 2.0
        assert s.last_time == 1.0

    def test_rejects_time_regression(self):
        s = TimeSeries()
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 2.0)

    def test_allows_equal_timestamps(self):
        s = TimeSeries()
        s.append(1.0, 1.0)
        s.append(1.0, 2.0)
        assert len(s) == 2

    def test_rejects_nonfinite(self):
        s = TimeSeries()
        with pytest.raises(ValueError):
            s.append(0.0, float("inf"))

    def test_window_inclusive(self):
        s = TimeSeries()
        for t in range(5):
            s.append(float(t), float(t) * 10)
        assert s.window(1.0, 3.0).tolist() == [10.0, 20.0, 30.0]

    def test_tail(self):
        s = TimeSeries()
        for t in range(5):
            s.append(float(t), float(t))
        assert s.tail(2).tolist() == [3.0, 4.0]
        assert s.tail(10).tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_tail_validation(self):
        with pytest.raises(ValueError):
            TimeSeries().tail(0)

    def test_empty_lookups_raise(self):
        s = TimeSeries()
        with pytest.raises(LookupError):
            _ = s.last_value
        with pytest.raises(LookupError):
            _ = s.last_time


class TestMetricsStore:
    def test_record_and_latest(self):
        store = MetricsStore()
        store.record("m", 1.0, t=0.0, service="a")
        store.record("m", 2.0, t=1.0, service="a")
        store.record("m", 9.0, t=0.0, service="b")
        assert store.latest("m", service="a") == 2.0
        assert store.latest("m", service="b") == 9.0

    def test_label_isolation(self):
        store = MetricsStore()
        store.record("m", 1.0, t=0.0, service="a")
        assert store.has("m", service="a")
        assert not store.has("m", service="b")
        with pytest.raises(KeyError):
            store.series("m", service="b")

    def test_label_order_irrelevant(self):
        store = MetricsStore()
        store.record("m", 1.0, t=0.0, service="a", node="n1")
        assert store.latest("m", node="n1", service="a") == 1.0

    def test_metrics_listing(self):
        store = MetricsStore()
        store.record("b_metric", 1.0, t=0.0)
        store.record("a_metric", 1.0, t=0.0)
        assert store.metrics() == ("a_metric", "b_metric")

    def test_label_sets(self):
        store = MetricsStore()
        store.record("m", 1.0, t=0.0, service="a")
        store.record("m", 1.0, t=0.0, service="b")
        services = {d["service"] for d in store.label_sets("m")}
        assert services == {"a", "b"}

    def test_sum_over(self):
        store = MetricsStore()
        store.record("cpu", 1.0, t=0.0, service="a")
        store.record("cpu", 2.5, t=0.0, service="b")
        assert store.sum_over("cpu", "service", ["a", "b"]) == pytest.approx(3.5)


class TestQueries:
    def series(self) -> TimeSeries:
        s = TimeSeries()
        for t in range(10):
            s.append(float(t), float(t))
        return s

    def test_percentile(self):
        s = self.series()
        assert percentile_over_window(s, 0.0, 9.0, 50) == pytest.approx(4.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_over_window(self.series(), 0, 9, 150)

    def test_percentile_empty_window(self):
        with pytest.raises(LookupError):
            percentile_over_window(self.series(), 100.0, 200.0, 50)

    def test_max_over_window(self):
        assert max_over_window(self.series(), 2.0, 5.0) == 5.0

    def test_moving_average(self):
        assert moving_average(self.series(), 3) == pytest.approx(8.0)

    def test_rate_counter(self):
        s = TimeSeries()
        s.append(0.0, 100.0)
        s.append(10.0, 150.0)
        assert rate(s, 0.0, 10.0) == pytest.approx(5.0)

    def test_rate_needs_two_samples(self):
        s = TimeSeries()
        s.append(0.0, 1.0)
        with pytest.raises(LookupError):
            rate(s, 0.0, 10.0)


class TestCollector:
    def test_collect_writes_all_streams(self):
        collector = MetricsCollector()
        alloc = Allocation({"a": 1.0, "b": 2.0})
        obs = IntervalMetrics(
            latency_p95=0.2,
            workload_rps=100.0,
            services={
                "a": ServiceMetrics(0.5, 1.0, 0.5, 0.7),
                "b": ServiceMetrics(0.3, 0.0, 0.6, 0.9),
            },
            latency_mean=0.1,
        )
        collector.collect(0.0, alloc, obs)
        store = collector.store
        assert store.latest("latency_p95") == pytest.approx(0.2)
        assert store.latest("total_cpu") == pytest.approx(3.0)
        assert store.latest("cpu_utilization", service="a") == pytest.approx(0.5)
        assert store.latest("cpu_throttle_seconds", service="a") == pytest.approx(1.0)
        assert store.latest("cpu_allocation", service="b") == pytest.approx(2.0)
