"""Workload traces and generators."""

import numpy as np
import pytest

from repro.workload import (
    BurstWorkload,
    ConstantWorkload,
    NoisyTrace,
    PhasedTrace,
    RampWorkload,
    ScaledTrace,
    SinusoidalWorkload,
    StepWorkload,
    WikipediaTrace,
    WorkloadTrace,
    sample_range,
)


class TestGenerators:
    def test_constant(self):
        w = ConstantWorkload(100.0)
        assert w.rate(0) == 100.0
        assert w.rate(1e6) == 100.0
        assert isinstance(w, WorkloadTrace)

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantWorkload(-1.0)

    def test_step(self):
        w = StepWorkload([(0.0, 100.0), (60.0, 200.0), (120.0, 50.0)])
        assert w.rate(0) == 100.0
        assert w.rate(59.9) == 100.0
        assert w.rate(60.0) == 200.0
        assert w.rate(500.0) == 50.0

    def test_step_before_first(self):
        w = StepWorkload([(10.0, 100.0)])
        assert w.rate(0.0) == 100.0

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepWorkload([])
        with pytest.raises(ValueError):
            StepWorkload([(10.0, 1.0), (5.0, 2.0)])
        with pytest.raises(ValueError):
            StepWorkload([(0.0, -1.0)])

    def test_ramp(self):
        w = RampWorkload(100.0, 200.0, duration=100.0)
        assert w.rate(0) == pytest.approx(100.0)
        assert w.rate(50) == pytest.approx(150.0)
        assert w.rate(100) == pytest.approx(200.0)
        assert w.rate(1000) == pytest.approx(200.0)  # clamps past the ramp

    def test_sinusoid_envelope(self):
        w = SinusoidalWorkload(low=100.0, high=300.0, period=3600.0)
        rates = [w.rate(t) for t in np.linspace(0, 7200, 500)]
        assert min(rates) >= 100.0 - 1e-9
        assert max(rates) <= 300.0 + 1e-9
        assert max(rates) - min(rates) > 150.0  # actually oscillates

    def test_burst(self):
        w = BurstWorkload(400.0, [(600.0, 600.0, 750.0), (2400.0, 600.0, 650.0)])
        assert w.rate(0) == 400.0
        assert w.rate(700) == 750.0
        assert w.rate(1200) == 400.0
        assert w.rate(2500) == 650.0

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstWorkload(100.0, [(0.0, 0.0, 200.0)])


class TestComposition:
    def test_noisy_trace_deterministic(self):
        base = ConstantWorkload(100.0)
        a = NoisyTrace(base, sigma=0.1, seed=3)
        b = NoisyTrace(base, sigma=0.1, seed=3)
        assert a.rate(123.0) == b.rate(123.0)
        assert NoisyTrace(base, sigma=0.1, seed=4).rate(123.0) != a.rate(123.0)

    def test_noisy_trace_zero_sigma(self):
        a = NoisyTrace(ConstantWorkload(100.0), sigma=0.0)
        assert a.rate(5.0) == 100.0

    def test_scaled_trace(self):
        s = ScaledTrace(ConstantWorkload(100.0), scale=2.0, offset=-50.0)
        assert s.rate(0) == 150.0

    def test_scaled_trace_clamps_at_zero(self):
        s = ScaledTrace(ConstantWorkload(10.0), scale=1.0, offset=-100.0)
        assert s.rate(0) == 0.0

    def test_sample_range(self):
        times, rates = sample_range(ConstantWorkload(5.0), 0.0, 10.0, 2.0)
        assert times.tolist() == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert all(r == 5.0 for r in rates)

    def test_sample_range_validation(self):
        with pytest.raises(ValueError):
            sample_range(ConstantWorkload(5.0), 10.0, 0.0, 1.0)


class TestWikipedia:
    def test_envelope(self):
        w = WikipediaTrace(low_rps=200.0, high_rps=1100.0, jitter=0.0)
        rates = [w.rate(t) for t in np.linspace(0, 36 * 3600, 2000)]
        assert min(rates) >= 180.0
        assert max(rates) <= 1210.0
        assert max(rates) > 800.0  # reaches the high part of the band

    def test_diurnal_structure(self):
        """The trace must rise and fall over a day, not drift monotonically."""
        w = WikipediaTrace(jitter=0.0)
        day = [w.rate(t) for t in np.linspace(0, 86400, 288)]
        peak, trough = max(day), min(day)
        assert peak - trough > 300.0

    def test_deterministic_given_seed(self):
        a = WikipediaTrace(seed=1)
        b = WikipediaTrace(seed=1)
        assert a.rate(12345.0) == b.rate(12345.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WikipediaTrace(low_rps=500.0, high_rps=400.0)
        with pytest.raises(ValueError):
            WikipediaTrace(jitter=-0.1)


class TestPhasedTrace:
    def test_clock_restarts_per_phase(self):
        ramp = RampWorkload(start_rps=100.0, end_rps=200.0, duration=50.0)
        trace = PhasedTrace([(ConstantWorkload(10.0), 30.0), (ramp, None)])
        assert trace.rate(0.0) == 10.0
        assert trace.rate(29.9) == 10.0
        # phase 2 sees its own t=0: the ramp starts over
        assert trace.rate(30.0) == ramp.rate(0.0)
        assert trace.rate(55.0) == ramp.rate(25.0)

    def test_bounded_schedule_holds_last_phase(self):
        trace = PhasedTrace(
            [(ConstantWorkload(10.0), 30.0), (ConstantWorkload(20.0), 30.0)]
        )
        assert trace.rate(45.0) == 20.0
        # past the end: the last phase keeps its own clock
        assert trace.rate(500.0) == 20.0

    def test_matches_sequential_loops(self):
        """A phased trace replays exactly what separate loops would see."""
        noisy = NoisyTrace(
            SinusoidalWorkload(low=50.0, high=150.0, period=600.0),
            sigma=0.1,
            seed=7,
        )
        burst = BurstWorkload(40.0, [(120.0, 60.0, 90.0)])
        trace = PhasedTrace([(noisy, 600.0), (burst, None)])
        for step in range(5):
            assert trace.rate(step * 120.0) == noisy.rate(step * 120.0)
        for step in range(5):
            assert trace.rate(600.0 + step * 120.0) == burst.rate(step * 120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedTrace([])
        with pytest.raises(ValueError):
            PhasedTrace([(ConstantWorkload(1.0), None),
                         (ConstantWorkload(2.0), 10.0)])
        with pytest.raises(ValueError):
            PhasedTrace([(ConstantWorkload(1.0), 0.0)])
