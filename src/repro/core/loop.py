"""Control loop: autoscaler × environment × workload trace.

Discrete-time execution matching the paper's deployment: the allocation
chosen at the start of interval *t* serves the whole interval; at the end
of the interval the autoscaler sees the metrics and chooses the allocation
for *t+1* (2-minute intervals in the paper's runs).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.metrics.collector import MetricsCollector
from repro.obs.decision import capture_decision_info, decision_record
from repro.obs.trace import Tracer
from repro.sim.environment import Environment
from repro.sim.types import Allocation, IntervalMetrics
from repro.workload.trace import WorkloadTrace

__all__ = ["Autoscaler", "ControlLoop", "LoopRecord", "LoopResult"]


@runtime_checkable
class Autoscaler(Protocol):
    """Anything that turns interval metrics into the next allocation."""

    @property
    def allocation(self) -> Allocation: ...

    def decide(self, metrics: IntervalMetrics) -> Allocation: ...


@dataclass(frozen=True)
class LoopRecord:
    """One interval of a run."""

    step: int
    time: float
    workload: float
    response: float
    total_cpu: float
    violated: bool
    slo: float
    allocation: Allocation


@dataclass
class LoopResult:
    """Full run history plus the summary statistics the paper reports."""

    records: list[LoopRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # -- series (aligned arrays for figures) ------------------------------------
    @property
    def steps(self) -> np.ndarray:
        return np.asarray([r.step for r in self.records])

    @property
    def times(self) -> np.ndarray:
        return np.asarray([r.time for r in self.records])

    @property
    def workloads(self) -> np.ndarray:
        return np.asarray([r.workload for r in self.records])

    @property
    def responses(self) -> np.ndarray:
        return np.asarray([r.response for r in self.records])

    @property
    def total_cpu(self) -> np.ndarray:
        return np.asarray([r.total_cpu for r in self.records])

    # -- summaries --------------------------------------------------------------
    def violation_count(self) -> int:
        return sum(r.violated for r in self.records)

    def violation_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.violation_count() / len(self.records)

    def final_allocation(self) -> Allocation:
        if not self.records:
            raise LookupError("empty run")
        return self.records[-1].allocation

    def best_satisfying_total(self) -> float:
        """Minimum total CPU over intervals that satisfied the SLO."""
        totals = [r.total_cpu for r in self.records if not r.violated]
        if not totals:
            raise LookupError("no SLO-satisfying interval in the run")
        return min(totals)

    def settled_total(self, tail: int = 5) -> float:
        """Mean total CPU over the last ``tail`` SLO-satisfying intervals."""
        totals = [r.total_cpu for r in self.records if not r.violated][-tail:]
        if not totals:
            raise LookupError("no SLO-satisfying interval in the run")
        return float(np.mean(totals))


class ControlLoop:
    """Drives one autoscaler against one environment and workload trace."""

    def __init__(
        self,
        environment: Environment,
        autoscaler: Autoscaler,
        workload: WorkloadTrace,
        *,
        interval: float = 120.0,
        slo: float | None = None,
        collector: MetricsCollector | None = None,
        cluster: Cluster | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.environment = environment
        self.autoscaler = autoscaler
        self.workload = workload
        self.interval = interval
        self.collector = collector
        self.cluster = cluster
        explicit = slo if slo is not None else getattr(autoscaler, "slo", None)
        if explicit is None:
            raise ValueError("pass slo= when the autoscaler has no .slo")
        self._slo_getter: Callable[[], float] = (
            (lambda: float(self.autoscaler.slo))  # live — tracks dynamic SLO
            if slo is None and hasattr(autoscaler, "slo")
            else (lambda: float(explicit))
        )
        if cluster is not None and not cluster.pods:
            cluster.deploy(environment.app, autoscaler.allocation)

    def current_slo(self) -> float:
        """The SLO in force right now.

        Live when the autoscaler carries its own (mutable) SLO — dynamic
        SLO hooks show up immediately — fixed otherwise.  The service
        layer's tick path calls this so streamed runs record exactly the
        SLO sequence :meth:`run` would.
        """
        return self._slo_getter()

    def run(
        self,
        n_steps: int,
        on_step: Callable[[int, "ControlLoop"], None] | None = None,
        *,
        decision_log: list | None = None,
        tracer: "Tracer | None" = None,
    ) -> LoopResult:
        """Execute ``n_steps`` control intervals.

        ``on_step(step_index, loop)`` runs before each interval — the hook
        used by the adaptability experiments to change CPU frequency
        (Fig. 19) or the SLO (Fig. 20) mid-run.

        ``decision_log`` collects one deterministic
        :func:`repro.obs.decision.decision_record` per interval (the
        ``decision_trace`` capture channel); ``tracer`` additionally
        times the run as a span and mirrors each record as an event.
        Both default off, leaving the hot loop untouched.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        result = LoopResult()
        allocation = self.autoscaler.allocation
        span = (
            tracer.span("control_loop.run", steps=n_steps)
            if tracer is not None
            else nullcontext()
        )
        with span:
            for step in range(n_steps):
                if on_step is not None:
                    on_step(step, self)
                t = step * self.interval
                rps = self.workload.rate(t)
                if self.cluster is not None:
                    self.cluster.apply(allocation)
                metrics = self.environment.observe(allocation, rps, self.interval)
                if self.collector is not None:
                    self.collector.collect(t, allocation, metrics)
                slo_now = self.current_slo()
                total_now = allocation.total()
                violated = metrics.latency_p95 > slo_now
                result.records.append(
                    LoopRecord(
                        step=step,
                        time=t,
                        workload=rps,
                        response=metrics.latency_p95,
                        total_cpu=total_now,
                        violated=violated,
                        slo=slo_now,
                        allocation=allocation,
                    )
                )
                allocation = self.autoscaler.decide(metrics)
                if decision_log is not None or tracer is not None:
                    record = decision_record(
                        step=step,
                        workload=rps,
                        response=metrics.latency_p95,
                        slo=slo_now,
                        violated=violated,
                        total_cpu=total_now,
                        next_total_cpu=allocation.total(),
                        decision=capture_decision_info(self.autoscaler),
                    )
                    if decision_log is not None:
                        decision_log.append(record)
                    if tracer is not None:
                        tracer.event("decision", **record)
        return result
