"""Chunked, cache-aware sweep execution.

``run_sweep_cached`` is the resumable counterpart of
:func:`repro.experiments.run_sweep`: it expands specs to (spec, repeat)
unit tasks, satisfies whatever it can from a :class:`SweepStore`, and fans
the remainder out over processes in bounded chunks — each chunk's results
are persisted and reported through a progress callback as soon as the
chunk lands, instead of one giant end-of-run gather.  Killing a sweep
between chunks therefore loses at most one chunk of work, and re-running
with the same store recomputes only the units that never completed.

``batch=True`` additionally partitions every chunk into compatible
groups (same app, autoscaler kind, and horizon — see
:func:`repro.sweeps.batched.batch_key`) and evaluates each group as one
NumPy-vectorized batch inside a single worker call; units no group can
hold (DES engine, custom engine params, unknown hooks) fall back to the
scalar worker, with per-reason counts reported in
``SweepReport.fallbacks``.  Batched and scalar execution produce byte-identical
payloads, so a store is freely shared between the two modes.

Every unit rebuilds its components from the serialized spec whether it
runs inline, in a worker, or comes back from the cache (results round-trip
losslessly through JSON), so serial, parallel, cold, resumed, and batched
runs all produce byte-identical artifacts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.bench.parallel import run_parallel
from repro.experiments.artifact import ExperimentArtifact
from repro.experiments.runner import (
    _run_unit_worker,
    optimum_cache_info,
    optimum_store,
)
from repro.experiments.spec import ExperimentSpec
from repro.obs.metrics import Histogram, default_registry
from repro.sweeps.grid import SweepCell, SweepGrid
from repro.sweeps.store import SweepStore

__all__ = [
    "SweepProgress",
    "SweepReport",
    "GridRun",
    "build_artifacts",
    "run_sweep_cached",
    "run_grid",
]

OnProgress = Callable[["SweepProgress"], None]

#: Per-cell latency bucket bounds — also used for the in-report profile
#: histogram, so BENCH trends and /metrics scrapes bin identically.
CELL_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)

_REG = default_registry()
_SWEEP_CHUNK_SECONDS = _REG.histogram(
    "repro_sweep_chunk_seconds",
    "Wall-clock seconds per scheduler chunk (workers + persistence).",
)
_SWEEP_CELL_SECONDS = _REG.histogram(
    "repro_sweep_cell_seconds",
    "Worker-side seconds per computed unit (task time / units in task).",
    buckets=CELL_SECONDS_BUCKETS,
)
_SWEEP_BATCH_GROUP_SIZE = _REG.histogram(
    "repro_sweep_batch_group_size",
    "Units per vectorized batch group handed to one worker call.",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0),
)
_SWEEP_FALLBACKS = _REG.counter(
    "repro_sweep_fallback_total",
    "Units that ran scalar under batch=True, by reason slug.",
    labelnames=("reason",),
)


@dataclass(frozen=True)
class SweepProgress:
    """A snapshot delivered after the cache scan and after every chunk.

    ``completed``/``cached``/``computed`` count *units* — (spec, repeat)
    pairs — and are exact even when the final chunk is partial or a chunk
    mixes batched groups with scalar units.  ``cells_completed`` counts
    specs whose every repeat has finished, so multi-repeat sweeps can
    report cell-level progress too.
    """

    total: int
    completed: int
    cached: int
    computed: int
    chunk: int
    n_chunks: int
    cells_total: int = 0
    cells_completed: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)
    """Scalar-fallback reason tallies accrued so far under ``batch=True``
    (a snapshot of what ``SweepReport.fallbacks`` will report), so live
    progress lines can show batch coverage as it degrades, not only at
    the end."""

    @property
    def done(self) -> bool:
        return self.completed >= self.total


@dataclass
class SweepReport:
    """What one ``run_sweep_cached`` call did (for logs and CI trends)."""

    specs: int
    units: int
    cache_hits: int
    computed: int
    chunks: int
    seconds: float
    batched_units: int = 0
    scalar_units: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)
    """Why computed units ran scalar under ``batch=True``: reason slug →
    unit count (see :func:`repro.sweeps.batched.batch_fallback_reason`).
    Empty when every unit batched, or when batching was off."""
    replay_units: int = 0
    """Units whose workload is the ``replay`` kind (trace-replay cells)."""
    manager_states: int = 0
    """Units that captured a non-null ``manager_state`` payload."""
    optimum: dict[str, Any] = field(default_factory=dict)
    """In-process OPTM cache activity during the sweep: hits, misses,
    store-backed loads, and fresh solves (``optimum_cache_info`` deltas;
    solves inside scalar worker processes are not visible here)."""
    profile: dict[str, Any] = field(default_factory=dict)
    """Where the sweep's wall-clock went: per-phase seconds
    (``phases``: plan/load/run/persist/aggregate), the
    batched-vs-scalar worker-time split (``batched_seconds`` /
    ``scalar_seconds``), and the per-cell worker-latency histogram
    (``cell_seconds``: count/sum/buckets/p50/p95)."""

    @property
    def units_per_sec(self) -> float:
        return self.units / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "specs": self.specs,
            "units": self.units,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "chunks": self.chunks,
            "seconds": self.seconds,
            "units_per_sec": self.units_per_sec,
            "batched_units": self.batched_units,
            "scalar_units": self.scalar_units,
            "fallbacks": dict(self.fallbacks),
            "replay_units": self.replay_units,
            "manager_states": self.manager_states,
            "optimum": dict(self.optimum),
            "profile": dict(self.profile),
        }


def _chunked(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


def build_artifacts(
    specs: Sequence[ExperimentSpec],
    results: dict[tuple[int, int], dict],
) -> list[ExperimentArtifact]:
    """Assemble per-spec artifacts from ``(spec_index, repeat)`` payloads.

    The one aggregation step every execution mode funnels through —
    serial, process-parallel, batched, and the distributed merge
    (:mod:`repro.sweeps.distributed`) — so however the payloads were
    produced, identical payload bytes yield identical artifacts.
    """
    return [
        ExperimentArtifact.from_payloads(
            spec,
            [results[(spec_index, repeat)] for repeat in range(spec.repeats)],
        )
        for spec_index, spec in enumerate(specs)
    ]


def _partition_chunk(
    chunk: Sequence[tuple[int, ExperimentSpec, int]],
    batch: bool,
    parallel: int,
    fallbacks: dict[str, int] | None = None,
) -> list[tuple[bool, list[tuple[int, ExperimentSpec, int]]]]:
    """Split one chunk of units into ``(batched?, units)`` worker tasks.

    Scalar mode keeps the historical one-unit-per-task granularity.
    Batch mode groups compatible units (first-appearance order) and caps
    each group at an even share of the chunk so ``parallel`` workers all
    get work even when the whole chunk is one compatible family; each
    incompatible unit's reason slug is tallied into ``fallbacks``.
    """
    if not batch:
        return [(False, [unit]) for unit in chunk]
    from repro.sweeps.batched import classify_unit

    tasks: list[tuple[bool, list[tuple[int, ExperimentSpec, int]]]] = []
    groups: dict[tuple, list[tuple[int, ExperimentSpec, int]]] = {}
    for unit in chunk:
        key, reason = classify_unit(unit[1])
        if key is None:
            if fallbacks is not None:
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
            _SWEEP_FALLBACKS.inc(reason=reason)
            tasks.append((False, [unit]))
        else:
            groups.setdefault(key, []).append(unit)
    cap = max(1, -(-len(chunk) // max(parallel, 1)))  # ceil division
    for units in groups.values():
        for start in range(0, len(units), cap):
            group = units[start : start + cap]
            _SWEEP_BATCH_GROUP_SIZE.observe(float(len(group)))
            tasks.append((True, group))
    return tasks


def _run_sweep_task(task: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: one scalar unit or one batched group of units.

    Returns ``{"payloads": [...], "seconds": ...}`` — one payload per
    unit in task order, plus the worker-side wall-clock of the task
    (plain data in/out, so it pickles under any start method; the
    seconds feed the scheduler's profile, never the payloads).
    """
    started = perf_counter()
    units = task["units"]
    if task["batched"]:
        from repro.sweeps.batched import _run_batch_worker

        payloads = _run_batch_worker(units)
    else:
        payloads = [
            _run_unit_worker(spec_data, repeat) for spec_data, repeat in units
        ]
    return {"payloads": payloads, "seconds": perf_counter() - started}


def run_sweep_cached(
    specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    batch: bool = False,
    on_progress: OnProgress | None = None,
) -> tuple[list[ExperimentArtifact], SweepReport]:
    """Run every (spec, repeat) unit, reusing and filling ``store``.

    ``reuse=False`` ignores existing entries (a refresh run) but still
    persists fresh results.  ``chunk_size`` bounds how much work is in
    flight between persistence points; the default keeps every worker busy
    without batching the whole sweep into one gather.  ``batch=True``
    evaluates compatible unit groups as vectorized batches (byte-identical
    results; un-batchable units silently run scalar) — the default chunk
    grows accordingly, since a chunk is also the largest possible batch.
    """
    start_time = perf_counter()
    optimum_before = optimum_cache_info()
    specs = list(specs)
    if parallel < 1:
        raise ValueError("parallel must be >= 1")
    if chunk_size is None:
        chunk_size = max(parallel, 1) * (256 if batch else 4)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    tasks = [
        (spec_index, spec, repeat)
        for spec_index, spec in enumerate(specs)
        for repeat in range(spec.repeats)
    ]
    phases = {
        "plan": perf_counter() - start_time,
        "load": 0.0,
        "run": 0.0,
        "persist": 0.0,
        "aggregate": 0.0,
    }
    results: dict[tuple[int, int], dict] = {}
    pending: list[tuple[int, ExperimentSpec, int]] = []
    unit_counts = [spec.repeats for spec in specs]
    remaining = list(unit_counts)
    cached = 0
    load_started = perf_counter()
    for spec_index, spec, repeat in tasks:
        payload = (
            store.get_result(spec, repeat) if store and reuse else None
        )
        if payload is not None:
            results[(spec_index, repeat)] = payload
            remaining[spec_index] -= 1
            cached += 1
        else:
            pending.append((spec_index, spec, repeat))
    phases["load"] = perf_counter() - load_started

    def cells_completed() -> int:
        return sum(1 for left in remaining if left == 0)

    chunks = list(_chunked(pending, chunk_size))
    if on_progress is not None:
        on_progress(
            SweepProgress(
                total=len(tasks),
                completed=cached,
                cached=cached,
                computed=0,
                chunk=0,
                n_chunks=len(chunks),
                cells_total=len(specs),
                cells_completed=cells_completed(),
            )
        )
    computed = 0
    batched_units = 0
    scalar_units = 0
    batched_seconds = 0.0
    scalar_seconds = 0.0
    fallbacks: dict[str, int] = {}
    # Standalone (unregistered) histogram so the report's profile covers
    # exactly this sweep, while the registry series keep accumulating
    # across sweeps in the same process.
    cell_hist = Histogram(
        "cell_seconds", "per-cell worker seconds", buckets=CELL_SECONDS_BUCKETS
    )
    # One long-lived pool for the whole sweep: workers are spawned once,
    # not once per chunk (chunking only bounds the persistence interval).
    pool = (
        ProcessPoolExecutor(max_workers=min(parallel, len(pending)))
        if parallel > 1 and len(pending) > 1
        else None
    )
    try:
        for chunk_index, chunk in enumerate(chunks, start=1):
            chunk_started = perf_counter()
            worker_tasks = _partition_chunk(chunk, batch, parallel, fallbacks)
            raw = run_parallel(
                _run_sweep_task,
                [
                    dict(
                        task={
                            "batched": batched,
                            "units": [
                                [spec.to_dict(), repeat]
                                for _, spec, repeat in units
                            ],
                        }
                    )
                    for batched, units in worker_tasks
                ],
                max_workers=parallel,
                pool=pool,
            )
            for (batched, units), result in zip(worker_tasks, raw):
                payloads = result["payloads"]
                task_seconds = float(result["seconds"])
                if batched:
                    batched_seconds += task_seconds
                else:
                    scalar_seconds += task_seconds
                per_cell = task_seconds / max(len(units), 1)
                for (spec_index, spec, repeat), payload in zip(
                    units, payloads
                ):
                    persist_started = perf_counter()
                    if store is not None:
                        store.put_result(spec, repeat, payload)
                    phases["persist"] += perf_counter() - persist_started
                    results[(spec_index, repeat)] = payload
                    remaining[spec_index] -= 1
                    computed += 1
                    cell_hist.observe(per_cell)
                    _SWEEP_CELL_SECONDS.observe(per_cell)
                    if batched:
                        batched_units += 1
                    else:
                        scalar_units += 1
            chunk_seconds = perf_counter() - chunk_started
            _SWEEP_CHUNK_SECONDS.observe(chunk_seconds)
            phases["run"] += chunk_seconds
            if on_progress is not None:
                on_progress(
                    SweepProgress(
                        total=len(tasks),
                        completed=cached + computed,
                        cached=cached,
                        computed=computed,
                        chunk=chunk_index,
                        n_chunks=len(chunks),
                        cells_total=len(specs),
                        cells_completed=cells_completed(),
                        fallbacks=dict(fallbacks),
                    )
                )
    finally:
        if pool is not None:
            pool.shutdown()
    # Persistence happens inside the chunk wall-clock; report it as its
    # own phase without double counting the total.
    phases["run"] -= phases["persist"]

    aggregate_started = perf_counter()
    artifacts = build_artifacts(specs, results)
    phases["aggregate"] = perf_counter() - aggregate_started
    optimum_after = optimum_cache_info()
    report = SweepReport(
        specs=len(specs),
        units=len(tasks),
        cache_hits=cached,
        computed=computed,
        chunks=len(chunks),
        seconds=perf_counter() - start_time,
        batched_units=batched_units,
        scalar_units=scalar_units,
        fallbacks=dict(sorted(fallbacks.items())),
        replay_units=sum(
            spec.repeats for spec in specs if spec.workload.kind == "replay"
        ),
        manager_states=sum(
            1
            for payload in results.values()
            if payload.get("manager_state") is not None
        ),
        optimum={
            counter: optimum_after[counter] - optimum_before[counter]
            for counter in ("hits", "misses", "store_hits", "solved")
        },
        profile={
            "phases": {k: round(v, 6) for k, v in phases.items()},
            "batched_seconds": round(batched_seconds, 6),
            "scalar_seconds": round(scalar_seconds, 6),
            "cell_seconds": cell_hist.to_dict(),
        },
    )
    return artifacts, report


@dataclass(frozen=True)
class GridRun:
    """An expanded grid together with one artifact per cell."""

    grid: SweepGrid
    cells: tuple[SweepCell, ...]
    artifacts: tuple[ExperimentArtifact, ...]
    report: SweepReport

    def __iter__(self):
        return iter(zip(self.cells, self.artifacts))

    def artifact(self, **coords: str) -> ExperimentArtifact:
        """The artifact of the unique cell matching the given coordinates."""
        matches = [
            artifact
            for cell, artifact in zip(self.cells, self.artifacts)
            if all(cell.coords.get(k) == v for k, v in coords.items())
        ]
        if len(matches) != 1:
            raise LookupError(
                f"{len(matches)} cells match {coords} in grid "
                f"{self.grid.name!r}"
            )
        return matches[0]


def run_grid(
    grid: SweepGrid,
    *,
    store: SweepStore | None = None,
    reuse: bool = True,
    parallel: int = 1,
    chunk_size: int | None = None,
    batch: bool = False,
    on_progress: OnProgress | None = None,
    cells: Sequence[SweepCell] | None = None,
) -> GridRun:
    """Expand ``grid`` and execute every cell through the cached scheduler.

    While the sweep runs, ``store`` also backs the optimum-search cache, so
    OPTM baselines computed alongside grid cells persist across runs too.
    Callers that already expanded the grid (e.g. to validate or count it)
    pass their ``cells`` list to avoid re-expanding.
    """
    cells = tuple(grid.cells() if cells is None else cells)
    with optimum_store(store):
        artifacts, report = run_sweep_cached(
            [cell.spec for cell in cells],
            store=store,
            reuse=reuse,
            parallel=parallel,
            chunk_size=chunk_size,
            batch=batch,
            on_progress=on_progress,
        )
    return GridRun(
        grid=grid, cells=cells, artifacts=tuple(artifacts), report=report
    )
