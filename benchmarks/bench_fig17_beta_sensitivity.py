"""Fig. 17 — sensitivity to β (α = 0.5).

Paper: large β (big per-step reductions) overshoots — many violations and
sub-optimal settled resource; small β is gentle and safe.

The 2 apps x 5 β x 3 seeds sweep is
``benchmarks/grids/fig17_beta_sensitivity.json``.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import figure_optimum, run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

def run_fig17():
    run = run_figure_grid("fig17_beta_sensitivity")
    # Group the β curve of each (app, workload) point by its grid
    # coordinate (robust to grid-file edits: axis sizes aren't hard-coded).
    groups: dict[str, list] = {}
    for cell, artifact in run:
        groups.setdefault(cell.coords["cell"], []).append((cell, artifact))
    rows = []
    curves: dict[str, dict[str, list[float]]] = {}
    for group in groups.values():
        app_name = group[0][0].spec.app
        wl = group[0][0].spec.workload.params["rps"]
        opt = figure_optimum(app_name, wl)
        res_norm, viols = [], []
        for cell, artifact in group:
            beta = cell.spec.autoscaler.params["beta"]
            totals = [r.settled_total() for r in artifact.results]
            violations = [r.violation_rate() * 100 for r in artifact.results]
            res_norm.append(float(np.mean(totals)) / opt)
            viols.append(float(np.mean(violations)))
            rows.append(
                [app_name, beta, round(res_norm[-1], 2), round(viols[-1], 1)]
            )
        curves[app_name] = {"resource": res_norm, "violations": viols}
    return rows, curves


def test_fig17_beta_sensitivity(benchmark):
    rows, curves = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    emit(
        "fig17_beta_sensitivity",
        format_table(
            ["app", "beta", "resource/optimum", "slo_violations_%"],
            rows,
            title="Fig. 17 — β sweep at α=0.5 (paper: aggressive β causes "
            "violations and sub-optimal allocations)",
        ),
    )
    for app_name, c in curves.items():
        vio = c["violations"]
        # Violations grow with β (compare the gentle and aggressive ends).
        assert np.mean(vio[3:]) >= np.mean(vio[:2]) - 1.0, app_name
