"""Benchmark harness: formatting and experiment drivers."""

import pytest

from repro.bench import (
    average_pema_total,
    clear_caches,
    format_kv,
    format_series,
    format_table,
    optimum_total,
    pema_run,
    rule_total,
)


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["longer", 22.123456]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "longer" in lines[4]

    def test_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_series(self):
        out = format_series("s", [1, 2], [3.0, 4.0], "x", "y")
        assert "s" in out
        assert "x" in out

    def test_series_length_check(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_kv(self):
        out = format_kv("Summary", [("total", 8.77), ("runs", 3)])
        assert "Summary" in out
        assert "total: 8.77" in out


class TestRunners:
    def test_pema_run_structure(self):
        run = pema_run("sockshop", 700.0, 10, seed=0)
        assert len(run.result) == 10
        assert run.app.name == "sockshop"
        assert run.controller.steps_taken == 10

    def test_optimum_total_cached(self):
        clear_caches()
        a = optimum_total("sockshop", 700.0)
        b = optimum_total("sockshop", 700.0)  # cache hit
        assert a == b
        assert 6.0 < a < 12.0  # near the paper's 8.8

    def test_rule_total_above_optimum(self):
        rule = rule_total("sockshop", 700.0, n_steps=20)
        opt = optimum_total("sockshop", 700.0)
        assert rule > opt

    def test_average_pema_total(self):
        avg = average_pema_total("sockshop", 700.0, n_steps=25, runs=2)
        assert avg > 0
