"""Application topologies: the paper's three microservice prototypes."""

from repro.apps.calibration import CALIBRATIONS, AppCalibration
from repro.apps.describe import describe_app, describe_plan
from repro.apps.hotelreservation import hotelreservation
from repro.apps.registry import APP_BUILDERS, app_names, build_app
from repro.apps.sockshop import sockshop
from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage
from repro.apps.trainticket import trainticket

__all__ = [
    "AppSpec",
    "ServiceSpec",
    "RequestClass",
    "Stage",
    "sockshop",
    "trainticket",
    "hotelreservation",
    "build_app",
    "app_names",
    "APP_BUILDERS",
    "CALIBRATIONS",
    "AppCalibration",
    "describe_app",
    "describe_plan",
]
