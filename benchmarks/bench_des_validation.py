"""DES cross-validation — the request-level simulator reproduces the
analytical engine's qualitative signatures from first principles.

Checks on SockShop at a reduced rate (the DES is event-driven Python):

* latency is flat at generous allocations and explodes below the knee;
* CFS throttle time is ~zero when ample and rises sharply when squeezed;
* both engines order allocations identically (generous < squeezed).
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.sim import AnalyticalEngine
from repro.sim.des import DESEngine

WORKLOAD = 200.0
# The DES realizes its own (burstiness-dependent) knee; sweep deep enough
# to cross it.  Shape agreement is the goal, not point equality.
SCALES = (2.0, 1.0, 0.6, 0.4, 0.25, 0.15)


def run_des_validation():
    app = build_app("sockshop")
    ana = AnalyticalEngine(app, seed=81)
    des = DESEngine(app, sim_seconds=8.0, warmup_seconds=2.0, seed=82)
    knee = ana.bottleneck_allocation(WORKLOAD)
    rows = []
    curves = {"ana": [], "des": [], "des_thr": []}
    for scale in SCALES:
        alloc = knee.scale(scale)
        m_ana = ana.observe(alloc, WORKLOAD)
        m_des = des.observe(alloc, WORKLOAD)
        thr_des = sum(s.throttle_seconds for s in m_des.services.values())
        thr_ana = sum(s.throttle_seconds for s in m_ana.services.values())
        curves["ana"].append(m_ana.latency_p95)
        curves["des"].append(m_des.latency_p95)
        curves["des_thr"].append(thr_des)
        rows.append(
            [
                scale,
                round(m_ana.latency_p95 * 1000, 1),
                round(m_des.latency_p95 * 1000, 1),
                round(thr_ana, 1),
                round(thr_des, 1),
            ]
        )
    return rows, curves


def test_des_validation(benchmark):
    rows, curves = benchmark.pedantic(run_des_validation, rounds=1, iterations=1)
    emit(
        "des_validation",
        format_table(
            ["alloc/knee", "ana_p95_ms", "des_p95_ms", "ana_throttle_s",
             "des_throttle_s"],
            rows,
            title=f"DES vs analytical engine — SockShop @ {WORKLOAD:.0f} rps "
            "(shape agreement, not point equality)",
        ),
    )
    des = curves["des"]
    thr = curves["des_thr"]
    # Latency explodes below the knee (last point far above the first).
    assert des[-1] > des[0] * 1.5
    # Throttle: near-zero when ample, clearly nonzero when squeezed.
    assert thr[0] < thr[-1]
    assert thr[-1] > 1.0
    # Engines agree on ordering of the extremes.
    assert curves["ana"][-1] > curves["ana"][0]
