"""The Orchestrator: app registration, guardian tasks, tick scheduling.

One :class:`Orchestrator` owns the whole control plane: a
:class:`~repro.service.guardian.Guardian` per registered application
(each consuming its bounded metric queue in its own asyncio task), one
shared :class:`~repro.service.rescaler.Rescaler`, and one
:class:`~repro.service.state.ServiceStateStore`.  Metric samples enter
through :meth:`submit` (or the batteries-included :meth:`drive`, which
streams a load driver's schedule); decisions leave through the state
store's query surface and the HTTP API
(:mod:`repro.service.http`).

Concurrency model: everything mutates on one asyncio event loop.
Guardians are independent tasks, so a slow app never blocks another
app's ticks; backpressure is per-app (a bounded queue blocks the
producer, not the plane).  Graceful shutdown enqueues a sentinel behind
every pending sample, joins the tasks, and flushes the state store —
so every accepted sample is either ticked or accounted for before the
process exits.

Resilience model: a :class:`~repro.service.types.ServiceError` is a
protocol violation — the guardian poisons immediately (it keeps
draining its queue so the driver never blocks, but takes no further
decisions).  Any *other* tick failure — an app crash, or a tick
exceeding the opt-in ``tick_timeout`` — is retryable: the orchestrator
backs off exponentially, rebuilds a fresh guardian, deterministically
replays the recorded decision feed (same workload floats, same order —
so the resumed feed is byte-identical to an uninterrupted run), and
retries the same sample, up to ``max_restarts`` times before poisoning.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any

from repro.experiments.spec import ExperimentSpec
from repro.faults import stream_delivery, stream_fault_entries
from repro.service.drivers import LOAD_DRIVERS, LoadDriver
from repro.service.guardian import Guardian
from repro.service.rescaler import Rescaler
from repro.service.state import ServiceStateStore
from repro.service.telemetry import (
    GUARDIAN_BACKOFF_RETRIES,
    GUARDIAN_POISONED,
    GUARDIAN_QUEUE_PEAK,
    GUARDIAN_RESTARTS,
    GUARDIAN_TICK_SECONDS,
    GUARDIAN_TICK_TIMEOUTS,
    STREAM_DUPLICATES_DROPPED,
    STREAM_REORDERED,
)
from repro.service.types import MetricSample, ServiceError

__all__ = ["Orchestrator"]

_STOP = object()  # queue sentinel: drain, then exit the guardian task


class _TickTimeout(RuntimeError):
    """A tick outlived ``tick_timeout`` — retryable, unlike ServiceError."""


class Orchestrator:
    """Long-lived control plane over streaming per-interval metrics."""

    def __init__(
        self,
        *,
        store: ServiceStateStore | None = None,
        rescaler: Rescaler | None = None,
        queue_size: int = 64,
        tick_timeout: float | None = None,
        max_restarts: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if tick_timeout is not None and tick_timeout <= 0:
            raise ValueError(f"tick_timeout must be positive: {tick_timeout}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0: {max_restarts}")
        if backoff_base <= 0:
            raise ValueError(f"backoff_base must be positive: {backoff_base}")
        if backoff_max < backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        self.store = store if store is not None else ServiceStateStore()
        self.rescaler = rescaler or Rescaler()
        self.queue_size = queue_size
        self.tick_timeout = tick_timeout
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.guardians: dict[str, Guardian] = {}
        self.ticks = 0
        self._tasks: dict[str, asyncio.Task] = {}
        self._started = False
        self._stopping = False
        self._shutdown_requested = asyncio.Event()

    # -- registration ------------------------------------------------------------
    def register(
        self,
        spec: ExperimentSpec,
        *,
        app_id: str | None = None,
        repeat: int = 0,
        queue_size: int | None = None,
    ) -> Guardian:
        """Admit one application (an :class:`ExperimentSpec`) to the plane.

        ``app_id`` defaults to the spec's name; ids are unique.  When
        the service is already running, the guardian's consumer task
        starts immediately.
        """
        app_id = app_id or spec.name
        if not app_id:
            raise ServiceError("app needs an id (or a named spec)")
        if app_id in self.guardians:
            raise ServiceError(f"app {app_id!r} is already registered")
        guardian = Guardian(
            app_id,
            spec,
            repeat,
            rescaler=self.rescaler,
            queue_size=queue_size or self.queue_size,
        )
        self.guardians[app_id] = guardian
        if self._started and not self._stopping:
            self._tasks[app_id] = asyncio.create_task(
                self._guardian_loop(guardian), name=f"guardian:{app_id}"
            )
        return guardian

    def unregister(self, app_id: str) -> None:
        """Remove an app (its task is cancelled, its history dropped)."""
        guardian = self._guardian(app_id)
        task = self._tasks.pop(app_id, None)
        if task is not None:
            task.cancel()
        del self.guardians[app_id]
        self.store.forget(app_id)
        self.rescaler.forget(app_id)
        for metric in (
            GUARDIAN_TICK_SECONDS,
            GUARDIAN_QUEUE_PEAK,
            GUARDIAN_POISONED,
            GUARDIAN_RESTARTS,
            GUARDIAN_BACKOFF_RETRIES,
            GUARDIAN_TICK_TIMEOUTS,
            STREAM_DUPLICATES_DROPPED,
            STREAM_REORDERED,
        ):
            metric.remove(app=app_id)

    def _guardian(self, app_id: str) -> Guardian:
        try:
            return self.guardians[app_id]
        except KeyError:
            known = ", ".join(sorted(self.guardians)) or "<none>"
            raise ServiceError(
                f"unknown app {app_id!r} (registered: {known})"
            ) from None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Start one consumer task per registered guardian."""
        if self._started:
            return
        self._started = True
        for app_id, guardian in self.guardians.items():
            if app_id not in self._tasks:
                self._tasks[app_id] = asyncio.create_task(
                    self._guardian_loop(guardian), name=f"guardian:{app_id}"
                )

    async def _guardian_loop(self, guardian: Guardian) -> None:
        while True:
            sample = await guardian.queue.get()
            try:
                if sample is _STOP:
                    return
                if guardian.error is not None:
                    continue  # poisoned guardian: drop, never block the driver
                guardian = await self._tick_with_recovery(guardian, sample)
            finally:
                guardian.queue.task_done()

    async def _tick_with_recovery(
        self, guardian: Guardian, sample: Any
    ) -> Guardian:
        """Tick ``sample``; crash/timeout gets backoff + restart + retry.

        Returns the guardian now registered for the app — a fresh one if
        a restart happened.  ``ServiceError`` is a protocol violation,
        never retried: replaying the same feed would violate it again.
        """
        attempts = 0
        while True:
            try:
                await self._offer(guardian, sample)
                return guardian
            except ServiceError as exc:
                self._poison(guardian, str(exc))
                return guardian
            except Exception as exc:  # keep the plane alive on app failure
                if attempts >= self.max_restarts:
                    self._poison(guardian, f"{type(exc).__name__}: {exc}")
                    return guardian
                delay = min(
                    self.backoff_base * 2**attempts, self.backoff_max
                )
                attempts += 1
                GUARDIAN_BACKOFF_RETRIES.inc(app=guardian.app_id)
                await asyncio.sleep(delay)
                guardian = self._restart_guardian(guardian)

    async def _offer(self, guardian: Guardian, sample: Any) -> None:
        """One offer through the (optional) tick-timeout guard.

        Without a timeout the offer runs inline on the event loop — the
        zero-overhead path every clean deployment uses.  With one, it
        runs on an executor thread under ``wait_for``; on expiry the
        thread (and the guardian object it may still be mutating) is
        abandoned wholesale and a retryable :class:`_TickTimeout` is
        raised — the restart path rebuilds a fresh guardian, so the
        wedged object is never consulted again.
        """
        started = perf_counter()
        if self.tick_timeout is None:
            decisions = guardian.offer(sample)
        else:
            loop = asyncio.get_running_loop()
            try:
                decisions = await asyncio.wait_for(
                    loop.run_in_executor(None, guardian.offer, sample),
                    self.tick_timeout,
                )
            except asyncio.TimeoutError:
                GUARDIAN_TICK_TIMEOUTS.inc(app=guardian.app_id)
                raise _TickTimeout(
                    f"tick for step {sample.step} of app "
                    f"{guardian.app_id!r} exceeded {self.tick_timeout}s"
                ) from None
        GUARDIAN_TICK_SECONDS.observe(
            perf_counter() - started, app=guardian.app_id
        )
        for decision in decisions:
            self.ticks += 1
            self.store.record_decision(guardian, decision)

    def _poison(self, guardian: Guardian, message: str) -> None:
        guardian.error = message
        GUARDIAN_POISONED.inc(app=guardian.app_id)

    def _restart_guardian(self, old: Guardian) -> Guardian:
        """A fresh guardian resuming from the recorded decision feed.

        The replacement rebuilds the unit from the spec and replays the
        store's recorded workload floats through ``tick`` — the engine
        and autoscaler consume the same values in the same order as the
        original partial run, so the resumed decision feed is
        byte-identical to an uninterrupted one.  The old object (possibly
        wedged in an abandoned executor thread) is dropped wholesale; its
        queue, reorder buffer, and fault counters carry over.  Injected
        test failures deliberately do not.
        """
        fresh = Guardian(
            old.app_id,
            old.spec,
            old.repeat,
            rescaler=self.rescaler,
            queue_size=max(1, old.queue.maxsize),
        )
        fresh.queue = old.queue
        fresh._buffered = dict(old._buffered)
        fresh.restarts = old.restarts + 1
        fresh.duplicates_dropped = old.duplicates_dropped
        fresh.reordered = old.reordered
        fresh._replaying = True
        try:
            for row in self.store.decisions(old.app_id):
                fresh.tick(
                    MetricSample(
                        app=old.app_id,
                        rps=float(row["record"]["workload"]),
                        step=int(row["step"]),
                    )
                )
        finally:
            fresh._replaying = False
        self.guardians[old.app_id] = fresh
        GUARDIAN_RESTARTS.inc(app=old.app_id)
        return fresh

    async def submit(self, sample: MetricSample) -> None:
        """Enqueue one metric sample (awaits when the app's queue is full).

        The bounded queue is the backpressure boundary: a driver that
        outruns an app's control loop parks here instead of growing
        memory without limit.
        """
        if self._stopping:
            raise ServiceError("service is shutting down")
        guardian = self._guardian(sample.app)
        await guardian.queue.put(sample)
        GUARDIAN_QUEUE_PEAK.set_max(
            float(guardian.queue.qsize()), app=guardian.app_id
        )

    async def join(self) -> None:
        """Wait until every accepted sample has been ticked."""
        await asyncio.gather(
            *(g.queue.join() for g in self.guardians.values())
        )

    async def drive(
        self,
        n_steps: int | None = None,
        *,
        driver: LoadDriver | str | None = None,
        apps: list[str] | None = None,
        tick: float = 0.0,
    ) -> int:
        """Stream a load driver's schedule through the plane.

        Each selected app gets ``n_steps`` samples (default: whatever
        remains of its spec's horizon), submitted round-robin so all
        apps advance together — the simulated-time tick scheduler.
        ``tick`` seconds of wall-clock sleep between interval rounds
        turns the same schedule into a real-time (or scaled) run; 0
        streams as fast as backpressure allows.  Returns the number of
        samples submitted; a requested shutdown interrupts the stream.

        Specs declaring stream faults get a perturbed delivery schedule
        (:func:`repro.faults.stream_delivery`): delayed/dropped samples
        are rescheduled whole rounds later — and delivered *after* that
        round's native sample, so the guardian's reorder buffer is
        actually exercised — while duplicated samples are submitted
        twice for the guardian to dedup.
        """
        if driver is None or isinstance(driver, str):
            driver = LOAD_DRIVERS.build(driver or "replay")
        selected = [
            self._guardian(app_id)
            for app_id in (apps if apps is not None else self.guardians)
        ]
        plans: list[tuple[Guardian, int, Any, list, dict]] = []
        for guardian in selected:
            steps = (
                n_steps
                if n_steps is not None
                else max(0, guardian.spec.n_steps - guardian.steps_done)
            )
            plans.append(
                (
                    guardian,
                    guardian.steps_done,
                    driver.rates(guardian, steps),
                    stream_fault_entries(guardian.spec),
                    {},  # round -> rescheduled samples awaiting delivery
                )
            )
        submitted = 0
        rounds = max((len(rates) for _, _, rates, _, _ in plans), default=0)
        k = 0
        while k < rounds or any(pending for *_, pending in plans):
            if self._shutdown_requested.is_set():
                break
            for guardian, base_step, rates, entries, pending in plans:
                if k < len(rates):
                    step = base_step + k
                    delay, copies = (
                        stream_delivery(entries, step) if entries else (0, 1)
                    )
                    sample = MetricSample(
                        app=guardian.app_id, rps=float(rates[k]), step=step
                    )
                    if delay > 0:
                        pending.setdefault(k + delay, []).extend(
                            [sample] * copies
                        )
                    else:
                        for _ in range(copies):
                            await self.submit(sample)
                            submitted += 1
                for late in pending.pop(k, ()):
                    await self.submit(late)
                    submitted += 1
            if tick > 0:
                await asyncio.sleep(tick)
            k += 1
        await self.join()
        return submitted

    def request_shutdown(self) -> None:
        """Flag the plane for shutdown (drives abort at the next round)."""
        self._shutdown_requested.set()

    async def wait_shutdown_requested(self) -> None:
        await self._shutdown_requested.wait()

    async def shutdown(self) -> dict[str, Any]:
        """Graceful stop: drain queues, join tasks, flush the state store.

        Returns the flush summary (per-app steps/completeness/whether a
        sweep-unit entry was persisted).
        """
        self.request_shutdown()
        self._stopping = True
        for guardian in self.guardians.values():
            await guardian.queue.put(_STOP)
        if self._tasks:
            await asyncio.gather(
                *self._tasks.values(), return_exceptions=True
            )
        self._tasks.clear()
        self._started = False
        return self.store.flush(self.guardians)

    # -- query surface (called on the event-loop thread; see http.py) ------------
    def status(self) -> dict[str, Any]:
        """The ``/apps`` payload: one status row per registered app."""
        return {
            "apps": [
                guardian.status()
                for _, guardian in sorted(self.guardians.items())
            ],
            "ticks": self.ticks,
            "stopping": self._stopping,
        }

    def app_status(self, app_id: str) -> dict[str, Any]:
        return self._guardian(app_id).status()

    def decisions(
        self, app_id: str, *, since: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        """The ``/decisions`` payload for one app."""
        guardian = self._guardian(app_id)
        return {
            "app": app_id,
            "total": self.store.decision_count(app_id),
            "decisions": self.store.decisions(
                app_id, since=since, limit=limit
            ),
            "steps_done": guardian.steps_done,
        }

    def state(self, app_id: str) -> dict[str, Any]:
        """The ``/state`` payload: live allocation + manager snapshot."""
        return self._guardian(app_id).state()
