"""Registry of the paper's three prototype applications."""

from __future__ import annotations

from typing import Callable

from repro.apps.calibration import CALIBRATIONS
from repro.apps.hotelreservation import hotelreservation
from repro.apps.sockshop import sockshop
from repro.apps.spec import AppSpec
from repro.apps.trainticket import trainticket

__all__ = ["APP_BUILDERS", "build_app", "app_names"]

APP_BUILDERS: dict[str, Callable[..., AppSpec]] = {
    "sockshop": sockshop,
    "trainticket": trainticket,
    "hotelreservation": hotelreservation,
}


def app_names() -> tuple[str, ...]:
    """Names of all registered applications."""
    return tuple(sorted(APP_BUILDERS))


def build_app(
    name: str,
    *,
    demand_scale: float | None = None,
    floor_scale: float | None = None,
) -> AppSpec:
    """Build an application spec with calibrated scales.

    Passing explicit scales overrides the calibration (used by the
    calibration fitting itself and by what-if experiments).
    """
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {', '.join(app_names())}"
        ) from None
    cal = CALIBRATIONS[name]
    return builder(
        demand_scale=cal.demand_scale if demand_scale is None else demand_scale,
        floor_scale=cal.floor_scale if floor_scale is None else floor_scale,
    )
