"""Experiment artifacts: structured, serializable results of a spec run.

An :class:`ExperimentArtifact` pairs the spec that produced it with the
per-seed :class:`~repro.core.LoopResult` histories and derives the
summary statistics the paper's figures report (settled total CPU across
seeds, violation rates).  Artifacts round-trip through JSON via the
:mod:`repro.metrics.export` record codec, so a figure cell can be
archived, diffed, and re-plotted without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.loop import LoopResult
from repro.experiments.spec import ExperimentSpec
from repro.metrics.export import loop_result_from_dict, loop_result_to_dict

__all__ = ["ExperimentArtifact"]


@dataclass(frozen=True)
class ExperimentArtifact:
    """The outcome of ``run_experiment``: one ``LoopResult`` per repeat.

    When the spec's ``capture`` requested the ``manager_state`` channel,
    ``manager_states`` carries one JSON-ready snapshot per repeat (the
    workload-aware manager's range-tree splits/slope; None for
    autoscalers without internal state) — empty otherwise.  The
    ``decision_trace`` channel fills ``decision_traces`` the same way:
    one list of per-step decision records per repeat.
    """

    spec: ExperimentSpec
    results: tuple[LoopResult, ...]
    manager_states: tuple[Any, ...] = ()
    decision_traces: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        if len(self.results) != self.spec.repeats:
            raise ValueError(
                f"expected {self.spec.repeats} results, got {len(self.results)}"
            )
        object.__setattr__(
            self, "manager_states", tuple(self.manager_states)
        )
        if self.manager_states and len(self.manager_states) != len(
            self.results
        ):
            raise ValueError(
                f"expected {len(self.results)} manager states, "
                f"got {len(self.manager_states)}"
            )
        object.__setattr__(
            self, "decision_traces", tuple(self.decision_traces)
        )
        if self.decision_traces and len(self.decision_traces) != len(
            self.results
        ):
            raise ValueError(
                f"expected {len(self.results)} decision traces, "
                f"got {len(self.decision_traces)}"
            )

    def manager_state(self, repeat: int = 0) -> Any:
        """Repeat ``repeat``'s captured manager-state payload.

        Raises LookupError when the spec did not request the channel.
        """
        if not self.manager_states:
            raise LookupError(
                "no manager state captured (add 'manager_state' to the "
                "spec's capture list)"
            )
        return self.manager_states[repeat]

    def decision_trace(self, repeat: int = 0) -> Any:
        """Repeat ``repeat``'s captured per-step decision records.

        Raises LookupError when the spec did not request the channel.
        """
        if not self.decision_traces:
            raise LookupError(
                "no decision trace captured (add 'decision_trace' to the "
                "spec's capture list)"
            )
        return self.decision_traces[repeat]

    # -- summary statistics ------------------------------------------------------
    def settled_totals(self, tail: int = 5) -> np.ndarray:
        """Per-seed settled total CPU (mean of the last SLO-good intervals)."""
        return np.asarray([r.settled_total(tail) for r in self.results])

    def mean_settled_total(self, tail: int = 5) -> float:
        return float(np.mean(self.settled_totals(tail)))

    def violation_rates(self) -> np.ndarray:
        return np.asarray([r.violation_rate() for r in self.results])

    def summary(self) -> dict[str, Any]:
        """The figures' headline numbers, as plain JSON-ready data."""
        settled = self.settled_totals()
        return {
            "name": self.spec.name,
            "app": self.spec.app,
            "autoscaler": self.spec.autoscaler.kind,
            "engine": self.spec.engine.kind,
            "workload": self.spec.workload.to_dict(),
            "n_steps": self.spec.n_steps,
            "repeats": self.spec.repeats,
            "seed": self.spec.seed,
            "settled_total_per_seed": [float(t) for t in settled],
            "settled_total_mean": float(np.mean(settled)),
            "settled_total_std": float(np.std(settled)),
            "violation_rate_per_seed": [
                float(v) for v in self.violation_rates()
            ],
            "final_total_cpu": [
                float(r.final_allocation().total()) for r in self.results
            ],
        }

    def summary_json(self) -> str:
        """Canonical summary encoding (stable key order — diffable)."""
        return json.dumps(self.summary(), sort_keys=True)

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_payloads(
        cls, spec: ExperimentSpec, payloads: Sequence[dict[str, Any]]
    ) -> "ExperimentArtifact":
        """Assemble an artifact from per-repeat unit worker payloads.

        ``payloads`` are ``loop_result_to_dict`` dicts (one per repeat, in
        repeat order), each optionally carrying the ``manager_state`` key
        when the spec's ``capture`` requested that channel — exactly what
        the experiment runner, the sweep scheduler, and the sweep store
        hand around.
        """
        return cls(
            spec=spec,
            results=tuple(loop_result_from_dict(p) for p in payloads),
            manager_states=(
                tuple(p.get("manager_state") for p in payloads)
                if "manager_state" in spec.capture
                else ()
            ),
            decision_traces=(
                tuple(p.get("decision_trace") for p in payloads)
                if "decision_trace" in spec.capture
                else ()
            ),
        )

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = {
            "spec": self.spec.to_dict(),
            "results": [loop_result_to_dict(r) for r in self.results],
            "summary": self.summary(),
        }
        # Present only when captured, so capture-free artifacts keep
        # their historical byte encoding.
        if self.manager_states:
            data["manager_states"] = list(self.manager_states)
        if self.decision_traces:
            data["decision_traces"] = list(self.decision_traces)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentArtifact":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            results=tuple(
                loop_result_from_dict(r) for r in data["results"]
            ),
            manager_states=tuple(data.get("manager_states", ())),
            decision_traces=tuple(data.get("decision_traces", ())),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentArtifact":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        """Persist the artifact (spec + histories + summary) as JSON."""
        path = Path(path)
        path.write_text(self.to_json(indent=2))
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ExperimentArtifact":
        return cls.from_json(Path(path).read_text())
