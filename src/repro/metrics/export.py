"""Export utilities: metrics store and run histories to CSV.

Downstream users want the raw series (for plotting in their own stack);
these writers keep the on-disk format trivial — plain CSV, one header row.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

from repro.metrics.store import MetricsStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.loop import LoopResult

__all__ = ["store_to_csv", "loop_result_to_csv"]


def store_to_csv(store: MetricsStore, path: str | Path) -> int:
    """Dump every series as long-form CSV: metric,labels,time,value.

    Returns the number of data rows written.
    """
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "labels", "time", "value"])
        for metric in store.metrics():
            for labels in store.label_sets(metric):
                label_str = ";".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                series = store.series(metric, **labels)
                for t, v in series:
                    writer.writerow([metric, label_str, f"{t:.6g}", f"{v:.9g}"])
                    rows += 1
    return rows


def loop_result_to_csv(result: "LoopResult", path: str | Path) -> int:
    """Dump a run history: one row per control interval plus per-service
    allocations (wide format)."""
    path = Path(path)
    if not result.records:
        raise ValueError("empty run")
    service_names = list(result.records[0].allocation.names)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["step", "time", "workload_rps", "response_s", "total_cpu",
             "violated", "slo_s"]
            + [f"cpu[{name}]" for name in service_names]
        )
        for rec in result.records:
            writer.writerow(
                [
                    rec.step,
                    f"{rec.time:.6g}",
                    f"{rec.workload:.6g}",
                    f"{rec.response:.9g}",
                    f"{rec.total_cpu:.6g}",
                    int(rec.violated),
                    f"{rec.slo:.6g}",
                ]
                + [f"{rec.allocation[name]:.6g}" for name in service_names]
            )
    return len(result.records)
