"""CI gate: deterministic fault injection across all three executors.

Runs the faulted smoke grid (every disturbance kind crossed with every
controller family) through the scalar sweep path, the batched sweep
path, and the streamed control plane, and enforces the robustness
contracts the fault layer promises:

* **batch coverage** — every faulted unit must batch: the batched run's
  ``SweepReport.fallbacks`` must be empty and ``scalar_units`` zero;
* **scalar/batched parity** — byte-identical aggregate summaries and
  byte-identical cache entries between the two sweep modes;
* **streamed parity** — every cell streamed through a
  :class:`repro.service.ServiceRuntime` guardian (including the
  metric-delivery faults the driver perturbs with) must finish with a
  decision payload byte-identical to the offline unit worker's;
* **crash recovery** — a guardian killed mid-stream by an injected
  crash must restart from the recorded decision feed and still produce
  the offline bytes, with the restart visible in its status row.

Writes a ``BENCH_robustness.json`` artifact with the measured numbers
(including the per-disturbance controller report) either way, and exits
non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/robustness_gate.py \
        --out BENCH_robustness.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import clear_optimum_cache
from repro.experiments.runner import _run_unit_worker
from repro.service import ServiceRuntime
from repro.sweeps import SweepGrid, SweepStore, grid_summary_json, group_reduce, run_grid


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _store_bytes(store: SweepStore) -> list[bytes]:
    return sorted(path.read_bytes() for path in store.entry_paths())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid",
                        default="benchmarks/grids/robustness_smoke.json")
    parser.add_argument("--out", default="BENCH_robustness.json")
    parser.add_argument("--cache-root", default=None,
                        help="directory for the two mode caches "
                        "(default: a fresh temporary directory)")
    parser.add_argument("--crash-step", type=int, default=3,
                        help="step at which the recovery check kills "
                        "its guardian")
    args = parser.parse_args(argv)

    grid = SweepGrid.read(args.grid)
    cells = grid.cells()
    units = sum(cell.spec.repeats for cell in cells)
    tmp_cache = None
    if args.cache_root:
        cache_root = Path(args.cache_root)
    else:  # don't litter the working tree with cache entries
        tmp_cache = tempfile.TemporaryDirectory(prefix="robustness-gate-")
        cache_root = Path(tmp_cache.name)

    failures: list[str] = []
    bench: dict = {"grid": grid.name, "cells": len(cells), "units": units}

    # -- scalar vs batched sweeps ------------------------------------------------
    summaries: dict[str, str] = {}
    stores: dict[str, SweepStore] = {}
    runs: dict = {}
    for mode, batch in (("scalar", False), ("batched", True)):
        store = stores[mode] = SweepStore(cache_root / mode)
        store.clear()
        clear_optimum_cache()
        run = runs[mode] = run_grid(grid, store=store, batch=batch,
                                    cells=cells)
        summaries[mode] = grid_summary_json(run)
        bench[mode] = {
            "seconds": run.report.seconds,
            "batched_units": run.report.batched_units,
            "scalar_units": run.report.scalar_units,
            "fallbacks": dict(run.report.fallbacks),
        }
    if runs["batched"].report.fallbacks:
        failures.append(
            "faulted units fell back to scalar under --batch: "
            f"{runs['batched'].report.fallbacks}"
        )
    if runs["batched"].report.scalar_units:
        failures.append(
            f"{runs['batched'].report.scalar_units} units ran scalar "
            "in the batched sweep"
        )
    if summaries["scalar"] != summaries["batched"]:
        failures.append("batched aggregate differs from scalar aggregate")
    if _store_bytes(stores["scalar"]) != _store_bytes(stores["batched"]):
        failures.append("batched cache entries differ from scalar entries")

    # The robustness report: controllers compared per disturbance.
    bench["report"] = group_reduce(
        runs["scalar"], ["disturbance", "autoscaler"],
        metrics=("violation_rate_mean", "recovery_steps_max",
                 "cost_cpu_seconds_mean"),
    )

    # -- streamed parity ---------------------------------------------------------
    offline = {
        cell.spec.name: dumps(_run_unit_worker(cell.spec.to_dict(), 0))
        for cell in cells
    }
    runtime = ServiceRuntime()
    runtime.start()
    try:
        for cell in cells:
            runtime.register(cell.spec)
        submitted = runtime.drive()
        bench["streamed_ticks_submitted"] = submitted
        streamed_ok = 0
        for cell in cells:
            guardian = runtime.orchestrator.guardians[cell.spec.name]
            if guardian.error is not None:
                failures.append(
                    f"{cell.spec.name}: streamed run poisoned: "
                    f"{guardian.error}"
                )
            elif not guardian.complete:
                failures.append(
                    f"{cell.spec.name}: streamed run incomplete "
                    f"({guardian.steps_done}/{cell.spec.n_steps} steps)"
                )
            elif dumps(guardian.result_payload()) != offline[cell.spec.name]:
                failures.append(
                    f"{cell.spec.name}: streamed decision history "
                    "differs from the offline runner's payload"
                )
            else:
                streamed_ok += 1
        bench["streamed_parity_cells"] = streamed_ok
        bench["stream_duplicates_dropped"] = sum(
            g.duplicates_dropped
            for g in runtime.orchestrator.guardians.values()
        )
        bench["stream_reordered"] = sum(
            g.reordered for g in runtime.orchestrator.guardians.values()
        )
    finally:
        runtime.shutdown()

    # -- mid-stream crash recovery -----------------------------------------------
    crash_cell = next(
        cell for cell in cells
        if cell.coords.get("disturbance") == "crash"
        and cell.coords.get("autoscaler") == "pema"
    )
    runtime = ServiceRuntime()
    runtime.start()
    try:
        guardian = runtime.register(crash_cell.spec, app_id="recovery-probe")
        guardian.inject_failure(args.crash_step, "crash")
        runtime.drive()
        survivor = runtime.orchestrator.guardians["recovery-probe"]
        bench["recovery"] = {
            "crash_step": args.crash_step,
            "restarts": survivor.restarts,
            "status": survivor.status()["status"],
        }
        if survivor.restarts < 1:
            failures.append("recovery probe never restarted its guardian")
        if survivor.error is not None or not survivor.complete:
            failures.append(
                f"recovery probe did not finish clean: "
                f"error={survivor.error!r}, "
                f"steps={survivor.steps_done}/{crash_cell.spec.n_steps}"
            )
        elif dumps(survivor.result_payload()) != offline[crash_cell.spec.name]:
            failures.append(
                "recovered decision history differs from the "
                "uninterrupted offline payload"
            )
    finally:
        runtime.shutdown()

    bench["passed"] = not failures
    bench["failures"] = failures
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if tmp_cache is not None:
        tmp_cache.cleanup()
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"robustness gate passed: {len(cells)} faulted cells batched, "
        "scalar == batched == streamed, crash recovery byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
