"""repro.service — the always-on control plane.

Where :mod:`repro.experiments` answers "run this spec to completion and
hand me the artifact", this package keeps the same autoscalers *alive*:
a long-running asyncio service that ingests streaming per-interval
metrics for many concurrent applications, runs each app's autoscaler on
every tick, applies the decisions, and exposes the decision feed plus
live manager state over a small stdlib HTTP/JSON API.

The MAPE-K cast:

- :class:`Orchestrator` — app registration and the tick scheduler
  (Monitor's front door);
- :class:`Guardian` — one app's Analyze+Plan: the autoscaler behind a
  bounded metrics queue;
- :class:`Rescaler` — Execute: applies allocations to the (simulated)
  deployment with actuation accounting;
- :class:`ServiceStateStore` — Knowledge: decision history and
  manager-state snapshots behind a pluggable backend
  (:data:`STATE_STORES`: ``memory`` or a sweep-cache-compatible
  ``directory``);
- :data:`LOAD_DRIVERS` — where the metric stream comes from (``replay``
  streams each app's declarative trace; ``constant`` for smoke tests).

Determinism contract: a service run driven by the ``replay`` driver over
a given (spec, repeat) produces a decision history *byte-identical* to
the offline runner's result for the same unit — same records, same
manager-state channel, same canonical JSON.  Complete runs flushed to a
``directory`` backend therefore warm the sweep cache.

Entry points: ``repro serve`` (CLI), :func:`service_session` /
:class:`ServiceRuntime` (embedding, tests, CI gate).
"""

from repro.service.drivers import (
    LOAD_DRIVERS,
    ConstantDriver,
    LoadDriver,
    ReplayDriver,
)
from repro.service.guardian import Guardian
from repro.service.http import ServiceServer
from repro.service.orchestrator import Orchestrator
from repro.service.rescaler import Rescaler, RescaleStats
from repro.service.runtime import ServiceRuntime, service_session
from repro.service.state import (
    STATE_STORES,
    MemoryBackend,
    ServiceStateStore,
    service_state_key,
)
from repro.service.types import Decision, MetricSample, ServiceError

__all__ = [
    "LOAD_DRIVERS",
    "STATE_STORES",
    "ConstantDriver",
    "Decision",
    "Guardian",
    "LoadDriver",
    "MemoryBackend",
    "MetricSample",
    "Orchestrator",
    "ReplayDriver",
    "RescaleStats",
    "Rescaler",
    "ServiceError",
    "ServiceRuntime",
    "ServiceServer",
    "ServiceStateStore",
    "service_session",
    "service_state_key",
]
