"""Per-visit latency model and end-to-end aggregation.

Latency of one visit to service *i* decomposes into:

* a latency floor ``l0_i`` — service time with ample CPU;
* queueing inflation proportional to the overload pressure
  ``E[(N_i - x_i)+] / x_i`` (work that could not run immediately);
* a throttle penalty that kicks in once the throttled-period fraction
  crosses the tail-critical level (≈5% of periods, at which point the p95
  request is hit by a frozen period).

Both penalty terms scale with the service's own latency floor so that the
model is self-consistent across applications whose SLOs span 50 ms to
900 ms (see DESIGN.md §4: the DES realizes the absolute CFS period; the
analytical engine works in relative latency units).

End-to-end latency aggregates per-visit latencies over a request class's
execution plan: stages are sequential, entries within a stage run in
parallel (the max governs), repeated visits to a service within an entry
are sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.sim.concurrency import gamma_sf, tail_expectation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.apps.spec import AppSpec

__all__ = [
    "LatencyParams",
    "visit_latency",
    "end_to_end_latency",
    "end_to_end_latency_batch",
    "KernelSignals",
    "NoiselessLatencyKernel",
    "CellKernel",
]

_EPS = 1e-12


@dataclass(frozen=True)
class LatencyParams:
    """Tunables of the visit-latency model (shared across apps)."""

    queue_gain: float = 3.0
    """Latency floors multiplied by ``1 + queue_gain * overload``."""

    throttle_gain: float = 5.0
    """Scale of the throttle penalty once past the critical fraction."""

    frac_critical: float = 0.05
    """Throttled-period fraction at which the p95 request is affected."""

    throttle_power: float = 3.0
    """Exponent of the normalized throttle ratio.  Cubic makes operating
    *below* the bottleneck knee rapidly catastrophic (every extra frozen
    period compounds through queue growth on a real system) while leaving
    the above-knee region, where the controllers live, gentle."""

    saturation: float = 20.0
    """Cap on the normalized throttle ratio, keeping latency finite.

    High enough that starving any service far below its bottleneck is
    catastrophic for end-to-end latency (as on a real system, where a
    fully-throttled service's queue grows without bound) while still
    keeping the search landscape finite."""

    def __post_init__(self) -> None:
        if self.queue_gain < 0 or self.throttle_gain < 0:
            raise ValueError("gains must be non-negative")
        if self.throttle_power < 1:
            raise ValueError("throttle_power must be >= 1")
        if not 0 < self.frac_critical < 1:
            raise ValueError("frac_critical must be in (0, 1)")
        if self.saturation <= 0:
            raise ValueError("saturation must be positive")


def visit_latency(
    floors: np.ndarray,
    overload: np.ndarray,
    throttled_frac: np.ndarray,
    params: LatencyParams,
) -> np.ndarray:
    """p95-scale latency of one visit to each service (vectorized).

    Monotonicity: both ``overload`` and ``throttled_frac`` are non-increasing
    in the allocation, so visit latency is non-increasing in the allocation —
    the property behind the paper's monotone-reduction navigation (Fig. 7).
    """
    floors = np.asarray(floors, dtype=np.float64)
    overload = np.asarray(overload, dtype=np.float64)
    throttled_frac = np.asarray(throttled_frac, dtype=np.float64)
    ratio = np.minimum(throttled_frac / params.frac_critical, params.saturation)
    inflation = (
        1.0
        + params.queue_gain * overload
        + params.throttle_gain * ratio**params.throttle_power
    )
    return floors * inflation


def end_to_end_latency(
    app: "AppSpec", per_visit: Mapping[str, float] | np.ndarray
) -> float:
    """Aggregate per-visit latencies into application p95 latency (seconds).

    ``per_visit`` is either a mapping ``service -> latency`` or an array in
    the app's service order.  Traffic classes are mixed by weight; each
    class walks its stages sequentially, taking the max across parallel
    entries and adding the per-hop network latency.
    """
    if isinstance(per_visit, np.ndarray):
        lat = {name: float(v) for name, v in zip(app.service_names, per_visit)}
    else:
        lat = {name: float(per_visit[name]) for name in app.service_names}

    total = 0.0
    for rc in app.request_classes:
        class_latency = 0.0
        for stage in rc.stages:
            branch = max(visits * lat[svc] for svc, visits in stage.parallel)
            class_latency += branch + app.hop_latency
        total += rc.weight * class_latency
    return total


def end_to_end_latency_batch(app: "AppSpec", per_visit: np.ndarray) -> np.ndarray:
    """Batched :func:`end_to_end_latency`: ``(B, S)`` visits → ``(B,)`` p95s.

    Walks the same plan in the same order as the scalar aggregation —
    per-stage maxima, then sequential sums — with every float operation
    applied elementwise across the batch, so each row is bit-identical to
    the scalar result for that row.
    """
    per_visit = np.asarray(per_visit, dtype=np.float64)
    if per_visit.ndim != 2 or per_visit.shape[1] != len(app.service_names):
        raise ValueError(
            f"per_visit must be (B, {len(app.service_names)}): {per_visit.shape}"
        )
    column = {name: per_visit[:, j] for j, name in enumerate(app.service_names)}
    total = np.zeros(per_visit.shape[0], dtype=np.float64)
    for rc in app.request_classes:
        class_latency = np.zeros_like(total)
        for stage in rc.stages:
            branch: np.ndarray | None = None
            for svc, visits in stage.parallel:
                term = visits * column[svc]
                branch = term if branch is None else np.maximum(branch, term)
            class_latency += branch + app.hop_latency
        total += rc.weight * class_latency
    return total


class _AggregationPlan:
    """Index-array form of an app's execution plans for fast aggregation.

    ``aggregate`` computes exactly what :func:`end_to_end_latency_batch`
    computes — per-entry terms, left-folded stage maxima, left-folded
    stage sums per class, weighted class sum — via ``ufunc.reduceat``
    (which applies the ufunc sequentially over each slice, preserving the
    walk's operation order bit-for-bit) instead of ~4 NumPy calls per
    plan entry.
    """

    def __init__(self, app: "AppSpec") -> None:
        index = {name: j for j, name in enumerate(app.service_names)}
        svc: list[int] = []
        visits: list[float] = []
        stage_starts: list[int] = []
        class_stages: list[list[int]] = []
        weights: list[float] = []
        for rc in app.request_classes:
            weights.append(rc.weight)
            stages: list[int] = []
            for stage in rc.stages:
                stages.append(len(stage_starts))
                stage_starts.append(len(svc))
                for name, count in stage.parallel:
                    svc.append(index[name])
                    visits.append(count)
            class_stages.append(stages)
        self._svc = np.asarray(svc, dtype=np.intp)
        self._visits = np.asarray(visits, dtype=np.float64)
        self._stage_starts = np.asarray(stage_starts, dtype=np.intp)
        self._n_stages = len(stage_starts)
        # (C, M) stage-column gather map, right-padded with a sentinel
        # column that holds exactly 0.0 — ``x + 0.0`` is bitwise ``x`` for
        # the positive stage latencies, so padding preserves the fold.
        width = max(len(stages) for stages in class_stages)
        self._stage_index = np.asarray(
            [
                stages + [self._n_stages] * (width - len(stages))
                for stages in class_stages
            ],
            dtype=np.intp,
        )
        self._weights = weights
        self._hop = app.hop_latency

    def aggregate(self, per_visit: np.ndarray) -> np.ndarray:
        """``(B, S)`` per-visit latencies → ``(B,)`` end-to-end p95s.

        ``maximum.reduceat`` is order-independent bit-for-bit (the max of
        a set of non-NaN floats is one of them); the stage-sum fold and
        the weighted class sum run in the walk's exact sequential order.
        """
        batch = per_visit.shape[0]
        terms = per_visit[:, self._svc] * self._visits
        stage_max = np.maximum.reduceat(terms, self._stage_starts, axis=1)
        stage_latency = np.empty((batch, self._n_stages + 1), dtype=np.float64)
        stage_latency[:, : self._n_stages] = stage_max + self._hop
        stage_latency[:, self._n_stages] = 0.0
        padded = stage_latency[:, self._stage_index]  # (B, C, M)
        class_latency = padded[:, :, 0].copy()
        for m in range(1, padded.shape[2]):
            class_latency += padded[:, :, m]
        total = np.zeros(batch, dtype=np.float64)
        for c, weight in enumerate(self._weights):
            total += weight * class_latency[:, c]
        return total


@dataclass(frozen=True)
class KernelSignals:
    """Deterministic signals of one batched noiseless evaluation.

    Everything downstream evaluators need beyond the latency itself:
    scalars are ``(B,)``, per-service signals ``(B, S)`` (``scale`` is the
    workload-independent ``(S,)`` Gamma scale).
    """

    mean: np.ndarray
    shape: np.ndarray
    scale: np.ndarray
    exceed: np.ndarray
    overload: np.ndarray
    per_visit: np.ndarray
    latency: np.ndarray


class NoiselessLatencyKernel:
    """The one deterministic ``(B, S) → (B,)`` p95-latency implementation.

    Scalar :meth:`repro.sim.engine.AnalyticalEngine.noiseless_latency`,
    the :class:`~repro.sim.batched.BatchedAnalyticalEngine` observation
    path, and the OPTM frontier search all evaluate allocations through
    this kernel, so a latency computed anywhere in the codebase is the
    same IEEE float64 value: the Gamma concurrency closed forms, the
    visit-latency inflation, and the end-to-end aggregation are applied
    elementwise across the batch in the exact scalar operation order.
    """

    def __init__(self, app: "AppSpec", *, params: LatencyParams | None = None):
        self._app = app
        self.params = params or LatencyParams()
        self._visits = app.visit_array()
        self._demands = app.demand_array()
        self._burst = app.burstiness_array()
        self._floors = app.floor_array()
        self._baselines = app.baseline_array()
        self._plan = _AggregationPlan(app)

    @property
    def app(self) -> "AppSpec":
        return self._app

    def evaluate(
        self,
        alloc: np.ndarray,
        workload_rps: np.ndarray,
        cpu_speed: float | np.ndarray = 1.0,
        demand_scale: np.ndarray | None = None,
    ) -> KernelSignals:
        """All deterministic signals for a ``(B, S)`` batch of allocations.

        ``workload_rps`` is ``(B,)``; ``cpu_speed`` is a scalar shared by
        the batch or a per-row ``(B,)`` array.  ``demand_scale``, when
        given, multiplies the calibrated per-service CPU demands (the
        fault-injection drift channel): a ``(B, S)`` array applied as
        ``demands * demand_scale`` — the exact operation order the scalar
        engine uses, so a row with an all-ones scale stays bit-identical
        to the unscaled evaluation.
        """
        alloc = np.asarray(alloc, dtype=np.float64)
        workload = np.asarray(workload_rps, dtype=np.float64)
        n_services = len(self._app.service_names)
        if alloc.ndim != 2 or alloc.shape[1] != n_services:
            raise ValueError(
                f"alloc must be (B, {n_services}): {alloc.shape}"
            )
        if workload.shape != (alloc.shape[0],):
            raise ValueError(
                f"workload must be ({alloc.shape[0]},): {workload.shape}"
            )
        if np.any(workload < 0):
            raise ValueError("workload must be >= 0")
        speed = np.asarray(cpu_speed, dtype=np.float64)
        col = speed if speed.ndim == 0 else speed[:, None]

        if demand_scale is None:
            demands = self._demands
        else:
            demands = self._demands * np.asarray(demand_scale, dtype=np.float64)
        mean = (
            workload[:, None] * self._visits * demands + self._baselines
        ) / col
        shape = np.where(mean > _EPS, mean / self._burst, 0.0)
        scale = self._burst
        exceed = gamma_sf(alloc, shape, scale)
        excess = tail_expectation(alloc, mean, shape, scale, sf=exceed)
        overload = excess / np.maximum(alloc, _EPS)
        floors = self._floors / col
        per_visit = visit_latency(floors, overload, exceed, self.params)
        latency = self._plan.aggregate(per_visit)
        return KernelSignals(
            mean=mean,
            shape=shape,
            scale=scale,
            exceed=exceed,
            overload=overload,
            per_visit=per_visit,
            latency=latency,
        )

    def latency(
        self,
        alloc: np.ndarray,
        workload_rps: np.ndarray,
        cpu_speed: float | np.ndarray = 1.0,
    ) -> np.ndarray:
        """Noise-free p95 latency of every row — what OPTM probes measure."""
        return self.evaluate(alloc, workload_rps, cpu_speed).latency

    def cell(
        self, workload_rps: float, cpu_speed: float = 1.0
    ) -> "CellKernel":
        """A fixed-(workload, speed) evaluator with per-level memoization."""
        return CellKernel(self, workload_rps, cpu_speed)


class CellKernel:
    """Frontier evaluator for one (workload, cpu-speed) operating point.

    A coordinate search probes allocations that differ from their
    neighbours in one or two services, so the same per-service
    ``(service, level) → visit latency`` values recur thousands of times.
    Visit latency is elementwise in the allocation, so this evaluator
    memoizes it per (service, level): cold pairs are computed through the
    same Gamma closed forms as :meth:`NoiselessLatencyKernel.evaluate`
    (gathered into one vectorized call per batch), warm pairs come from
    the memo, and only the end-to-end aggregation runs per row.  Every
    returned latency is bit-identical to a fresh
    :meth:`NoiselessLatencyKernel.latency` call on the same rows — the
    memo only skips recomputing IEEE-identical elementwise values.
    """

    def __init__(
        self, kernel: NoiselessLatencyKernel, workload_rps: float, cpu_speed: float
    ) -> None:
        if workload_rps < 0:
            raise ValueError("workload must be >= 0")
        self._app = kernel.app
        self.params = kernel.params
        speed = np.float64(cpu_speed)
        self._mean = (
            np.float64(workload_rps) * kernel._visits * kernel._demands
            + kernel._baselines
        ) / speed
        self._shape = np.where(
            self._mean > _EPS, self._mean / kernel._burst, 0.0
        )
        self._scale = kernel._burst
        self._floors = kernel._floors / speed
        self._plan = kernel._plan
        # Wrapper-free Gamma path: the degenerate-service masks of
        # gamma_sf / tail_expectation depend only on (shape, scale, mean),
        # fixed here, so they are precomputed once.  When every service is
        # non-degenerate (the calibrated apps), the ufuncs apply directly —
        # masked assignment into zeros with an all-true mask is the same
        # values, so this is bitwise what the wrappers produce.
        self._sf_valid = (self._shape > _EPS) & (self._scale > _EPS)
        self._te_valid = self._sf_valid & (self._mean > _EPS)
        self._all_valid = bool(self._te_valid.all())
        self._memo: list[dict[float, float]] = [
            {} for _ in kernel._visits
        ]

    def _fill_memo(self, services: list[int], levels: list[float]) -> None:
        """Compute the missing (service, level) visit latencies, vectorized."""
        from scipy import special as _sc

        jv = np.asarray(services, dtype=np.intp)
        xv = np.asarray(levels, dtype=np.float64)
        shape = self._shape[jv]
        scale = self._scale[jv]
        mean = self._mean[jv]
        if self._all_valid:
            xs = np.maximum(xv, 0.0)
            exceed = _sc.gammaincc(shape, xs / scale)
            upper = mean * _sc.gammaincc(shape + 1.0, xs / scale)
            excess = np.maximum(upper - xs * exceed, 0.0)
        else:
            exceed = gamma_sf(xv, shape, scale)
            excess = tail_expectation(xv, mean, shape, scale, sf=exceed)
        overload = excess / np.maximum(xv, _EPS)
        values = visit_latency(self._floors[jv], overload, exceed, self.params)
        for j, level, value in zip(services, levels, values):
            self._memo[j][level] = float(value)

    def latency(self, alloc: np.ndarray) -> np.ndarray:
        """Noise-free p95 latency of ``(K, S)`` allocation rows."""
        rows = np.asarray(alloc, dtype=np.float64)
        n_services = len(self._app.service_names)
        if rows.ndim != 2 or rows.shape[1] != n_services:
            raise ValueError(f"alloc must be (K, {n_services}): {rows.shape}")
        if rows.shape[0] == 1:
            # Single probe (bisection levels, feasibility/summary checks):
            # straight memo lookups, no column analysis.
            row = rows[0]
            miss = [j for j in range(n_services) if float(row[j]) not in self._memo[j]]
            if miss:
                self._fill_memo(miss, [float(row[j]) for j in miss])
            per_visit = np.asarray(
                [self._memo[j][float(row[j])] for j in range(n_services)]
            )
            return self._plan.aggregate(per_visit[None, :])
        # Most columns hold a single level across the whole batch (the
        # frontier varies one or two services per row): detect them in one
        # vectorized pass, resolve them by memo lookup, and np.unique only
        # the varying columns.
        first_row = rows[0]
        constant = (rows == first_row).all(axis=0)
        varying: list[tuple[int, list[float], np.ndarray]] = []
        miss_j: list[int] = []
        miss_v: list[float] = []
        for j in np.flatnonzero(~constant):
            unique, inverse = np.unique(rows[:, j], return_inverse=True)
            levels = [float(u) for u in unique]
            memo = self._memo[j]
            # Levels are unique within a column, so no duplicate misses.
            for level in levels:
                if level not in memo:
                    miss_j.append(j)
                    miss_v.append(level)
            varying.append((j, levels, inverse))
        for j in np.flatnonzero(constant):
            if float(first_row[j]) not in self._memo[j]:
                miss_j.append(j)
                miss_v.append(float(first_row[j]))
        if miss_j:
            self._fill_memo(miss_j, miss_v)
        per_visit = np.empty_like(rows)
        const_values = [
            self._memo[j][float(first_row[j])]
            for j in np.flatnonzero(constant)
        ]
        per_visit[:, constant] = const_values
        for j, levels, inverse in varying:
            memo = self._memo[j]
            per_visit[:, j] = np.asarray([memo[level] for level in levels])[
                inverse
            ]
        return self._plan.aggregate(per_visit)
