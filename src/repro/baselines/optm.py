"""OPTM — the paper's optimum-allocation benchmark (§4.2).

The paper finds the optimum by exhaustive trial and error on the live
system and defines it operationally: *an allocation is optimum when
reducing any single microservice by 0.1 CPU violates the SLO*.  We
automate exactly that definition against the (noise-free) performance
model: greedy coordinate descent from a generous allocation, with random
service orderings and multiple restarts to avoid order artifacts.

As the paper notes, OPTM is not a practical manager — it causes many
violations while probing — it is the upper bound on achievable resource
efficiency that PEMA is measured against (Fig. 15).

Execution model
---------------
The search is written as a *frontier generator*
(:meth:`OptimumSearch.frontier`): a coroutine that yields ``(K, S)``
batches of candidate allocations and receives their noiseless latencies.
Every structural decision (shuffle order, acceptance, evaluation
counting) lives in the generator; every latency comes from the shared
:class:`~repro.sim.latency.NoiselessLatencyKernel`, which evaluates a
whole batch elementwise in one NumPy call.  :meth:`OptimumSearch.find`
drives one cell's generator (batching each service's shrink ladder, each
redistribution pass, and the feasibility/summary probes);
:class:`~repro.baselines.optm_batch.OptimumBatch` drives many cells'
generators in lockstep, stacking their pending frontiers into single
kernel calls.  Both are bit-identical — same allocations, totals, and
evaluation counts — to the straight-line scalar search, which is kept as
:meth:`OptimumSearch.find_reference` for equivalence gating
(``benchmarks/optm_gate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.sim.engine import AnalyticalEngine
from repro.sim.types import Allocation

__all__ = ["OptimumResult", "OptimumSearch"]

#: The frontier-generator protocol: yields (K, S) candidate batches,
#: receives (K,) noiseless latencies, returns the search outcome.
Frontier = Generator[np.ndarray, np.ndarray, "OptimumResult"]

#: Initial frontier-slice sizes.  Slices double while no decision point
#: (violation / acceptance) is found, so a slice wastes at most as many
#: probes as the scalar search needed — without ever paying one kernel
#: call per probe.
_DESCEND_CHUNK = 8
_PAIR_CHUNK = 32


@dataclass(frozen=True)
class OptimumResult:
    """Outcome of one optimum search."""

    allocation: Allocation
    latency: float
    workload: float
    evaluations: int

    @property
    def total_cpu(self) -> float:
        return self.allocation.total()


class OptimumSearch:
    """Coordinate-descent minimum-resource search on the noiseless model."""

    def __init__(
        self,
        engine: AnalyticalEngine,
        *,
        step: float = 0.1,
        min_cpu: float = 0.05,
        restarts: int = 3,
        seed: int = 0,
        deep: bool = False,
    ) -> None:
        """``deep=True`` adds a pairwise-redistribution polish (+1 step on
        one service, -2 on another) beyond the paper's single-coordinate
        definition.  The default matches the paper: its optimum was found
        by manual trial and error and declared optimal when *any single*
        -0.1 CPU step violated the SLO — coordinated multi-service moves
        were not part of the search."""
        if step <= 0:
            raise ValueError("step must be positive")
        if min_cpu <= 0:
            raise ValueError("min_cpu must be positive")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.engine = engine
        self.step = step
        self.min_cpu = min_cpu
        self.restarts = restarts
        self.seed = seed
        self.deep = deep

    # -- vectorized search -------------------------------------------------------
    def find(
        self, workload_rps: float, start: Allocation | None = None
    ) -> OptimumResult:
        """Best local optimum across restarts (lowest total CPU).

        Each restart: (1) uniformly scale the start down to the SLO
        boundary — the balanced entry point a careful human searcher would
        use; (2) greedy per-service coordinate descent in 0.1-CPU steps.
        With ``deep=True``, a pairwise-redistribution stage (3) escapes
        boundary points plain descent gets stuck on; either way the result
        satisfies the paper's local-optimality definition.

        Candidate frontiers (a service's whole shrink ladder, a
        redistribution pass, a bisection probe) are evaluated as single
        batched kernel calls; the outcome is bit-identical to
        :meth:`find_reference`, the one-probe-at-a-time scalar search.
        """
        gen = self.frontier(workload_rps, start)
        evaluate = self.evaluator(workload_rps)
        latencies: np.ndarray | None = None
        try:
            while True:
                rows = gen.send(latencies) if latencies is not None else next(gen)
                latencies = evaluate(rows)
        except StopIteration as stop:
            return stop.value

    def evaluator(self, workload: float):
        """A ``(K, S) rows → (K,) latencies`` frontier evaluator.

        Analytical engines get a memoizing
        :class:`~repro.sim.latency.CellKernel` pinned to this workload
        and the engine's current CPU speed; anything else falls back to
        row-by-row ``noiseless_latency`` calls (still the same values).
        """
        kernel = getattr(self.engine, "noiseless_kernel", None)
        if kernel is not None:
            return kernel.cell(workload, self.engine.cpu_speed).latency

        def rowwise(rows: np.ndarray) -> np.ndarray:
            names = self.engine.app.service_names
            return np.asarray(
                [
                    self.engine.noiseless_latency(
                        Allocation.from_array(names, row), workload
                    )
                    for row in rows
                ],
                dtype=np.float64,
            )

        return rowwise

    def frontier(
        self, workload_rps: float, start: Allocation | None = None
    ) -> Frontier:
        """The search as a coroutine over candidate-allocation batches.

        Yields ``(K, S)`` arrays of candidates and expects their ``(K,)``
        noiseless latencies in return; returns the
        :class:`OptimumResult` via ``StopIteration.value``.  The driver
        chooses how frontiers are evaluated (single cell or stacked
        across many cells) — the search trajectory is fully determined
        in here, so every driver produces identical results.
        """
        app = self.engine.app
        slo = app.slo
        names = app.service_names
        base = start if start is not None else app.generous_allocation(workload_rps)
        base_arr = base.as_array(names)
        feasible = yield base_arr[None, :]
        if float(feasible[0]) > slo:
            raise ValueError(
                "starting allocation already violates the SLO; "
                "increase headroom or lower the workload"
            )
        # All boundary restarts bisect from the same start, so the ladder
        # is evaluated once and reused (identical inputs, identical path).
        boundary: np.ndarray | None = None
        best: OptimumResult | None = None
        evaluations = 0
        for restart in range(self.restarts):
            rng = np.random.default_rng((self.seed, restart))
            # The balanced scale-to-boundary entry dominates raw descent;
            # keep one raw-descent restart for diversity when available.
            if restart != 1:
                if boundary is None:
                    boundary = yield from self._boundary_frontier(base_arr, slo)
                arr = boundary.copy()
            else:
                arr = base_arr.copy()
            arr, evals = yield from self._descend_frontier(
                arr, names, slo, rng, near_boundary=restart != 1
            )
            evaluations += evals
            if self.deep:
                arr, evals = yield from self._redistribute_frontier(
                    arr, names, slo, rng
                )
                evaluations += evals
                # Redistribution may open new descent directions.
                arr, evals = yield from self._descend_frontier(
                    arr, names, slo, rng, near_boundary=True
                )
                evaluations += evals
            latency = float((yield arr[None, :])[0])
            candidate = OptimumResult(
                allocation=Allocation.from_array(names, arr),
                latency=latency,
                workload=workload_rps,
                evaluations=evaluations,
            )
            if best is None or candidate.total_cpu < best.total_cpu:
                best = candidate
        assert best is not None
        return best

    def _boundary_frontier(
        self, base_arr: np.ndarray, slo: float
    ) -> Generator[np.ndarray, np.ndarray, np.ndarray]:
        """Largest uniform shrink of the start that still satisfies the SLO.

        The bisection ladder is inherently sequential for one cell (each
        probe depends on the previous outcome), so each level is a
        one-row frontier — stacked across cells by ``OptimumBatch``.
        """
        lo, hi = 0.05, 1.0
        for _ in range(30):
            mid = 0.5 * (lo + hi)
            trial = np.maximum(base_arr * mid, self.min_cpu)
            lat = float((yield trial[None, :])[0])
            if lat <= slo:
                hi = mid
            else:
                lo = mid
        return np.maximum(base_arr * hi, self.min_cpu)

    def _ladder(self, value: float) -> list[float]:
        """The exact scalar float shrink ladder from ``value``.

        Each level is the previous one minus ``step`` (not
        ``value - k*step``, which rounds differently).
        """
        ladder: list[float] = []
        v = value
        while v - self.step >= self.min_cpu - 1e-12:
            v = v - self.step
            ladder.append(v)
        return ladder

    def _resolve_ladder(
        self,
        arr: np.ndarray,
        j: int,
        ladder: list[float],
        slo: float,
        head_latencies: np.ndarray | None,
    ) -> Generator[np.ndarray, np.ndarray, tuple[int, int]]:
        """Deepest non-violating prefix of one service's ladder.

        ``head_latencies`` optionally covers the first levels (from a
        speculative pass frontier); the remainder is evaluated in
        geometrically growing slices.  Returns ``(accepted_levels,
        evaluations)`` where evaluations counts exactly the probes the
        scalar loop would have made: everything up to and including the
        first violating level, or the whole ladder when none violates.
        """
        cursor = 0
        chunk = _DESCEND_CHUNK
        if head_latencies is not None and len(head_latencies):
            violating = head_latencies > slo
            if violating.any():
                first = int(np.argmax(violating))
                return first, first + 1
            cursor = len(head_latencies)
            chunk = 2 * _DESCEND_CHUNK
        while cursor < len(ladder):
            upto = min(cursor + chunk, len(ladder))
            rows = np.repeat(arr[None, :], upto - cursor, axis=0)
            rows[:, j] = ladder[cursor:upto]
            latencies = yield rows
            violating = latencies > slo
            if violating.any():
                first = int(np.argmax(violating))
                return cursor + first, cursor + first + 1
            cursor = upto
            chunk *= 2
        return len(ladder), len(ladder)

    def _descend_frontier(
        self,
        arr: np.ndarray,
        names: tuple[str, ...],
        slo: float,
        rng: np.random.Generator,
        *,
        near_boundary: bool,
    ) -> Generator[np.ndarray, np.ndarray, tuple[np.ndarray, int]]:
        """Greedy coordinate descent over batched shrink ladders.

        Accepting the deepest non-violating ladder prefix is exactly the
        greedy outcome of probing one step at a time, because the scalar
        loop stops at the first violating level and never looks past it.

        Low-acceptance passes (descents near the SLO boundary, and every
        converged final pass) evaluate *speculatively*: the ladder heads
        of all services still pending in the pass form one frontier, so a
        pass that accepts nothing — whose levels the previous pass already
        memoized — costs a single evaluator call.  An acceptance changes
        the allocation, which invalidates the later services' speculative
        rows; the frontier is rebuilt from that service on.  Passes
        expected to accept a lot (the raw descent from the generous
        start, or any pass after a high-acceptance one) resolve each
        service individually instead, where speculation would mostly be
        discarded.
        """
        order = list(names)
        index = {name: j for j, name in enumerate(names)}
        evals = 0
        improved = True
        accepts_prev: int | None = None
        while improved:
            improved = False
            rng.shuffle(order)
            accepts_pass = 0
            speculate = (
                near_boundary
                if accepts_prev is None
                else accepts_prev <= max(1, len(order) // 8)
            )
            pos = 0
            while pos < len(order):
                heads: list[np.ndarray | None]
                ladders: list[list[float]] = []
                if speculate:
                    spans: list[tuple[int, int]] = []
                    rows_parts: list[np.ndarray] = []
                    offset = 0
                    for name in order[pos:]:
                        j = index[name]
                        ladder = self._ladder(float(arr[j]))
                        ladders.append(ladder)
                        head = ladder[:_DESCEND_CHUNK]
                        spans.append((offset, len(head)))
                        if head:
                            part = np.repeat(arr[None, :], len(head), axis=0)
                            part[:, j] = head
                            rows_parts.append(part)
                            offset += len(head)
                    if offset == 0:
                        break  # every pending ladder is empty: pass over
                    latencies = yield np.concatenate(rows_parts, axis=0)
                    heads = [
                        latencies[start : start + length]
                        for start, length in spans
                    ]
                else:
                    ladders = [
                        self._ladder(float(arr[index[order[pos]]]))
                    ]
                    heads = [None]
                for ladder, head_latencies in zip(ladders, heads):
                    j = index[order[pos]]
                    pos += 1
                    if not ladder:
                        continue
                    accepted, probes = yield from self._resolve_ladder(
                        arr, j, ladder, slo, head_latencies
                    )
                    evals += probes
                    if accepted:
                        arr = arr.copy()
                        arr[j] = ladder[accepted - 1]
                        improved = True
                        accepts_pass += 1
                        if speculate:
                            break  # later speculative rows are stale
            accepts_prev = accepts_pass
        return arr, evals

    def _redistribute_frontier(
        self,
        arr: np.ndarray,
        names: tuple[str, ...],
        slo: float,
        rng: np.random.Generator,
    ) -> Generator[np.ndarray, np.ndarray, tuple[np.ndarray, int]]:
        """Net-negative pair moves: grow one service a step, shrink another two.

        All (grow, shrink) pairs still pending in the pass are evaluated
        against the current allocation as one frontier; the first
        acceptance (in shuffle order) applies and the remainder of the
        pass re-batches against the updated allocation — the same
        trajectory as accepting mid-scan one probe at a time.
        """
        order = list(names)
        index = {name: j for j, name in enumerate(names)}
        evals = 0
        improved = True
        while improved:
            improved = False
            rng.shuffle(order)
            pairs = [
                (index[g], index[s]) for g in order for s in order if g != s
            ]
            pos = 0
            chunk = _PAIR_CHUNK
            while pos < len(pairs):
                # Next slice of evaluable pairs (min-CPU skips consume no
                # evaluation, exactly as in the scalar scan).
                rows: list[np.ndarray] = []
                evaluated: list[int] = []
                p = pos
                while p < len(pairs) and len(rows) < chunk:
                    jg, js = pairs[p]
                    reduced = float(arr[js]) - 2.0 * self.step
                    if reduced >= self.min_cpu - 1e-12:
                        row = arr.copy()
                        row[jg] = float(arr[jg]) + self.step
                        row[js] = reduced
                        rows.append(row)
                        evaluated.append(p)
                    p += 1
                if not rows:
                    break
                latencies = yield np.stack(rows)
                accepts = latencies <= slo
                if accepts.any():
                    first = int(np.argmax(accepts))
                    evals += first + 1
                    arr = rows[first]
                    improved = True
                    pos = evaluated[first] + 1
                    chunk = _PAIR_CHUNK
                else:
                    evals += len(rows)
                    pos = p
                    chunk *= 2
        return arr, evals

    # -- scalar reference --------------------------------------------------------
    def find_reference(
        self, workload_rps: float, start: Allocation | None = None
    ) -> OptimumResult:
        """The original one-probe-per-call scalar search, kept verbatim.

        This is the semantic definition the vectorized :meth:`find` must
        reproduce bit-for-bit (allocations, totals, evaluation counts);
        the CI gate and the equivalence property tests compare against it.
        """
        app = self.engine.app
        base = start if start is not None else app.generous_allocation(workload_rps)
        if self.engine.noiseless_latency(base, workload_rps) > app.slo:
            raise ValueError(
                "starting allocation already violates the SLO; "
                "increase headroom or lower the workload"
            )
        best: OptimumResult | None = None
        evaluations = 0
        for restart in range(self.restarts):
            rng = np.random.default_rng((self.seed, restart))
            alloc = (
                self._scale_to_boundary(base, workload_rps)
                if restart != 1
                else base
            )
            alloc, evals = self._descend(alloc, workload_rps, rng)
            evaluations += evals
            if self.deep:
                alloc, evals = self._redistribute(alloc, workload_rps, rng)
                evaluations += evals
                alloc, evals = self._descend(alloc, workload_rps, rng)
                evaluations += evals
            latency = self.engine.noiseless_latency(alloc, workload_rps)
            candidate = OptimumResult(
                allocation=alloc,
                latency=latency,
                workload=workload_rps,
                evaluations=evaluations,
            )
            if best is None or candidate.total_cpu < best.total_cpu:
                best = candidate
        assert best is not None
        return best

    def _scale_to_boundary(self, start: Allocation, workload: float) -> Allocation:
        """Largest uniform shrink of ``start`` that still satisfies the SLO."""
        slo = self.engine.app.slo
        lo, hi = 0.05, 1.0
        for _ in range(30):
            mid = 0.5 * (lo + hi)
            trial = start.scale(mid).clamp(lower=self.min_cpu)
            if self.engine.noiseless_latency(trial, workload) <= slo:
                hi = mid
            else:
                lo = mid
        return start.scale(hi).clamp(lower=self.min_cpu)

    def _redistribute(
        self, alloc: Allocation, workload: float, rng: np.random.Generator
    ) -> tuple[Allocation, int]:
        """Net-negative pair moves: grow one service a step, shrink another two."""
        slo = self.engine.app.slo
        names = list(self.engine.app.service_names)
        evals = 0
        improved = True
        while improved:
            improved = False
            rng.shuffle(names)
            for grow in names:
                for shrink in names:
                    if grow == shrink:
                        continue
                    reduced = alloc[shrink] - 2.0 * self.step
                    if reduced < self.min_cpu - 1e-12:
                        continue
                    trial = alloc.with_value(grow, alloc[grow] + self.step)
                    trial = trial.with_value(shrink, reduced)
                    evals += 1
                    if self.engine.noiseless_latency(trial, workload) <= slo:
                        alloc = trial
                        improved = True
        return alloc, evals

    def _descend(
        self, start: Allocation, workload: float, rng: np.random.Generator
    ) -> tuple[Allocation, int]:
        app = self.engine.app
        slo = app.slo
        alloc = start
        evals = 0
        names = list(app.service_names)
        improved = True
        while improved:
            improved = False
            rng.shuffle(names)
            for name in names:
                # Shrink this service as far as it goes before violating.
                while alloc[name] - self.step >= self.min_cpu - 1e-12:
                    trial = alloc.with_value(name, alloc[name] - self.step)
                    evals += 1
                    if self.engine.noiseless_latency(trial, workload) > slo:
                        break
                    alloc = trial
                    improved = True
        return alloc, evals

    # -- optimality check --------------------------------------------------------
    def is_local_optimum(self, allocation: Allocation, workload: float) -> bool:
        """The paper's optimality check: any single -0.1 step violates."""
        app = self.engine.app
        arr = allocation.as_array(app.service_names)
        evaluate = self.evaluator(workload)
        if float(evaluate(arr[None, :])[0]) > app.slo:
            return False
        rows = []
        for j in range(len(arr)):
            reduced = float(arr[j]) - self.step
            if reduced < self.min_cpu - 1e-12:
                continue
            row = arr.copy()
            row[j] = reduced
            rows.append(row)
        if not rows:
            return True
        latencies = evaluate(np.stack(rows))
        return bool(np.all(latencies > app.slo))
