"""The docs tree: pages exist, README links them, no dead intra-repo links."""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsTree:
    def test_pages_exist(self):
        for page in ("architecture.md", "figures.md", "sweeps.md"):
            path = ROOT / "docs" / page
            assert path.exists(), page
            assert path.read_text().startswith("#"), page

    def test_readme_links_every_docs_page(self):
        readme = (ROOT / "README.md").read_text()
        for page in ("architecture.md", "figures.md", "sweeps.md"):
            assert f"docs/{page}" in readme, page

    def test_figures_page_names_every_grid_file(self):
        figures = (ROOT / "docs" / "figures.md").read_text()
        for grid in sorted((ROOT / "benchmarks" / "grids").glob("*.json")):
            assert grid.name in figures, grid.name


class TestLinkCheck:
    def test_no_dead_intra_repo_links(self):
        checker = _load_checker()
        assert checker.dead_links(ROOT) == []

    def test_checker_flags_dead_links(self, tmp_path):
        checker = _load_checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[ok](docs/a.md) [bad](docs/missing.md)")
        (tmp_path / "docs" / "a.md").write_text("# a\n[up](../README.md)")
        missing = checker.dead_links(tmp_path)
        assert [target for _, target in missing] == ["docs/missing.md"]

    def test_checker_ignores_external_and_anchor_links(self, tmp_path):
        checker = _load_checker()
        (tmp_path / "README.md").write_text(
            "[x](https://example.com/y) [a](#section) [m](mailto:a@b.c)"
        )
        assert checker.dead_links(tmp_path) == []

    def test_cli_entry_point(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "no dead links" in result.stdout
