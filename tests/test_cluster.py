"""Kubernetes-like cluster substrate."""

import pytest

from repro.cluster import (
    CapacityError,
    Cluster,
    Node,
    Pod,
    Scheduler,
    SchedulingError,
    paper_testbed_nodes,
)
from repro.sim.types import Allocation


class TestNode:
    def test_capacity_accounting(self):
        node = Node("n", cpu_capacity=10.0, memory_mb=1024.0)
        pod = Pod("svc", cpu_request=4.0, memory_mb=256.0)
        node.pods.append(pod)
        assert node.cpu_used == 4.0
        assert node.cpu_free == 6.0
        assert node.memory_free == 768.0
        assert node.utilization() == pytest.approx(0.4)

    def test_fits(self):
        node = Node("n", cpu_capacity=2.0, memory_mb=512.0)
        assert node.fits(2.0, 512.0)
        assert not node.fits(2.1, 100.0)
        assert not node.fits(1.0, 600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Node("n", cpu_capacity=0.0, memory_mb=10.0)

    def test_paper_testbed(self):
        nodes = paper_testbed_nodes()
        assert len(nodes) == 4
        assert all(n.cpu_capacity == 20.0 for n in nodes)


class TestPod:
    def test_validation(self):
        with pytest.raises(ValueError):
            Pod("svc", cpu_request=0.0, memory_mb=100.0)
        with pytest.raises(ValueError):
            Pod("svc", cpu_request=1.0, memory_mb=0.0)

    def test_scheduled_flag(self):
        pod = Pod("svc", cpu_request=1.0, memory_mb=100.0)
        assert not pod.scheduled


class TestScheduler:
    def test_places_all_pods(self):
        nodes = [Node(f"n{i}", 10.0, 10_000.0) for i in range(2)]
        pods = [Pod(f"s{i}", 3.0, 100.0) for i in range(6)]
        Scheduler().schedule(pods, nodes)
        assert all(p.scheduled for p in pods)
        for node in nodes:
            assert node.cpu_used <= node.cpu_capacity + 1e-9

    def test_raises_when_infeasible(self):
        nodes = [Node("n", 2.0, 10_000.0)]
        pods = [Pod("big", 3.0, 100.0)]
        with pytest.raises(SchedulingError):
            Scheduler().schedule(pods, nodes)

    def test_ffd_spreads_load(self):
        nodes = [Node(f"n{i}", 10.0, 10_000.0) for i in range(2)]
        pods = [Pod(f"s{i}", 5.0, 100.0) for i in range(2)]
        Scheduler().schedule(pods, nodes)
        # Most-free-first placement puts the two pods on different nodes.
        assert pods[0].node is not pods[1].node

    def test_reschedule_moves_overcommit(self):
        nodes = [Node("n0", 10.0, 10_000.0), Node("n1", 10.0, 10_000.0)]
        pods = [Pod("a", 4.0, 100.0), Pod("b", 4.0, 100.0)]
        sched = Scheduler()
        # Force both onto n0.
        for p in pods:
            p.node = nodes[0]
            nodes[0].pods.append(p)
        pods[0].cpu_request = 8.0  # now n0 holds 12 > 10
        moved = sched.reschedule_if_needed(pods, nodes)
        assert moved == 1
        assert all(p.scheduled for p in pods)
        assert all(n.cpu_free >= -1e-9 for n in nodes)


class TestCluster:
    def alloc(self, app, value=0.5):
        return Allocation({name: value for name in app.service_names})

    def test_deploy_and_apply(self, tiny_app):
        cluster = Cluster()
        cluster.deploy(tiny_app, self.alloc(tiny_app, 1.0))
        assert cluster.cpu_allocated == pytest.approx(4.0)
        cluster.apply(self.alloc(tiny_app, 0.5))
        assert cluster.cpu_allocated == pytest.approx(2.0)
        assert cluster.allocation()["front"] == pytest.approx(0.5)
        assert cluster.resize_count == 1

    def test_double_deploy_rejected(self, tiny_app):
        cluster = Cluster()
        cluster.deploy(tiny_app, self.alloc(tiny_app))
        with pytest.raises(RuntimeError):
            cluster.deploy(tiny_app, self.alloc(tiny_app))

    def test_apply_before_deploy(self, tiny_app):
        with pytest.raises(RuntimeError):
            Cluster().apply(self.alloc(tiny_app))

    def test_capacity_error(self, tiny_app):
        cluster = Cluster(nodes=[Node("n", 1.0, 10_000.0)])
        with pytest.raises(CapacityError):
            cluster.deploy(tiny_app, self.alloc(tiny_app, 10.0))

    def test_unknown_service_in_apply(self, tiny_app):
        cluster = Cluster()
        cluster.deploy(tiny_app, self.alloc(tiny_app))
        with pytest.raises(KeyError):
            cluster.apply(Allocation({"front": 1.0, "zzz": 1.0, "db": 1.0,
                                      "cache": 1.0}))

    def test_frequency_knob(self):
        cluster = Cluster(frequency_ghz=1.8)
        assert cluster.speed_factor == pytest.approx(1.0)
        cluster.set_frequency(1.6)
        assert cluster.speed_factor == pytest.approx(1.6 / 1.8)
        with pytest.raises(ValueError):
            cluster.set_frequency(0.0)

    def test_node_utilizations(self, tiny_app):
        cluster = Cluster()
        cluster.deploy(tiny_app, self.alloc(tiny_app, 1.0))
        utils = cluster.node_utilizations()
        assert len(utils) == 4
        assert sum(u * 20.0 for u in utils.values()) == pytest.approx(4.0)
