"""Arrival processes: Poisson and Markov-modulated Poisson (MMPP).

Real user traffic is burstier than Poisson; the paper's latency tails come
from exactly that burstiness interacting with CFS quotas.  The 2-state MMPP
alternates between a quiet and a burst state with exponential dwell times,
preserving the requested mean rate.

Two access styles, one bit stream (see :mod:`repro.sim.des.variates`):
the ``PoissonArrivals``/``MMPPArrivals`` classes draw one gap per call
(the scalar reference), while :func:`poisson_times`/:func:`mmpp_times`
pre-compute the whole arrival schedule up to a horizon from a pre-drawn
exponential stream (the vectorized simulator).  Both consume the same
standard-exponential variates in the same order — the classes via
``Generator.exponential(scale)``, the schedules via an explicit
``e * scale`` — which numpy guarantees are bit-identical, so the two
styles produce bit-identical arrival times.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PoissonArrivals", "MMPPArrivals", "poisson_times", "mmpp_times"]


class PoissonArrivals:
    """Exponential inter-arrival times at a fixed mean rate."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.rate = rate
        self.rng = rng

    def next_gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))


class MMPPArrivals:
    """2-state Markov-modulated Poisson process with mean rate ``rate``.

    In the burst state the instantaneous rate is ``burst_factor`` times the
    quiet state's; ``burst_fraction`` of time is spent bursting.  Dwell
    times are exponential with mean ``dwell`` seconds in the burst state —
    sub-second by default, the time scale at which bursts interact with
    100 ms CFS periods (and short enough that multi-second measurement
    windows average the modulation out).
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        *,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        dwell: float = 0.25,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if dwell <= 0:
            raise ValueError("dwell must be positive")
        self.rng = rng
        self.dwell_burst = dwell
        self.dwell_quiet = dwell * (1.0 - burst_fraction) / burst_fraction
        # Solve rates so the time-average equals `rate`.
        quiet_weight = (1.0 - burst_fraction) + burst_fraction * burst_factor
        self.rate_quiet = rate / quiet_weight
        self.rate_burst = self.rate_quiet * burst_factor
        self._bursting = False
        self._state_left = float(rng.exponential(self.dwell_quiet))

    def next_gap(self) -> float:
        """Inter-arrival gap, stepping the modulating chain as time passes."""
        gap = 0.0
        while True:
            rate = self.rate_burst if self._bursting else self.rate_quiet
            candidate = float(self.rng.exponential(1.0 / rate))
            if candidate <= self._state_left:
                self._state_left -= candidate
                return gap + candidate
            # State flips before the candidate arrival: discard and redraw
            # in the new state (memorylessness makes this exact).
            gap += self._state_left
            self._bursting = not self._bursting
            mean_dwell = self.dwell_burst if self._bursting else self.dwell_quiet
            self._state_left = float(self.rng.exponential(mean_dwell))


# -- pre-drawn schedules (the vectorized simulator's arrival source) -----------
def poisson_times(exp_stream, rate: float, horizon: float) -> list[float]:
    """All Poisson arrival times the event loop would see, pre-computed.

    ``exp_stream`` is a standard-exponential stream (``.next() -> float``).
    The first time is included even past the horizon (the reference pushes
    its first ARRIVAL unconditionally, consuming one draw); later draws
    stop at the first gap that crosses the horizon, exactly when the
    reference stops re-arming.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    scale = 1.0 / rate
    t = exp_stream.next() * scale
    times = [t]
    while t <= horizon:
        t = t + exp_stream.next() * scale
        if t > horizon:
            break
        times.append(t)
    return times


def mmpp_times(
    exp_stream,
    rate: float,
    horizon: float,
    *,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    dwell: float = 0.25,
) -> list[float]:
    """All MMPP arrival times the event loop would see, pre-computed.

    Runs the identical 2-state chain as :class:`MMPPArrivals` (initial
    dwell draw first, then candidate/dwell draws in chain order) against a
    pre-drawn standard-exponential stream.  Same boundary semantics as
    :func:`poisson_times`.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    if burst_factor < 1:
        raise ValueError("burst_factor must be >= 1")
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must be in (0, 1)")
    if dwell <= 0:
        raise ValueError("dwell must be positive")
    dwell_burst = dwell
    dwell_quiet = dwell * (1.0 - burst_fraction) / burst_fraction
    quiet_weight = (1.0 - burst_fraction) + burst_fraction * burst_factor
    rate_quiet = rate / quiet_weight
    rate_burst = rate_quiet * burst_factor
    bursting = False
    state_left = exp_stream.next() * dwell_quiet
    times: list[float] = []
    now = 0.0
    while True:
        gap = 0.0
        while True:
            state_rate = rate_burst if bursting else rate_quiet
            candidate = exp_stream.next() * (1.0 / state_rate)
            if candidate <= state_left:
                state_left -= candidate
                gap = gap + candidate
                break
            gap += state_left
            bursting = not bursting
            mean_dwell = dwell_burst if bursting else dwell_quiet
            state_left = exp_stream.next() * mean_dwell
        t = now + gap
        if times and t > horizon:
            break
        times.append(t)
        if t > horizon:  # unconditional first push, never popped
            break
        now = t
    return times
