"""Environment protocol: what a resource manager can do to an application.

PEMA, the rule-based baseline, and the optimum search all interact with a
deployed application the same way: apply an allocation, offer a workload,
observe an interval of metrics.  Both the analytical engine and the
discrete-event engine implement this protocol, so every experiment can run
against either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.sim.types import Allocation, IntervalMetrics

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.apps.spec import AppSpec

__all__ = ["Environment"]


@runtime_checkable
class Environment(Protocol):
    """A (simulated) deployment of one microservice application."""

    @property
    def app(self) -> AppSpec:
        """The application specification being served."""
        ...

    def observe(
        self,
        allocation: Allocation,
        workload_rps: float,
        interval: float = 120.0,
    ) -> IntervalMetrics:
        """Serve ``workload_rps`` for ``interval`` seconds under ``allocation``.

        Returns the end-of-interval metrics a Prometheus/Linkerd stack would
        report: p95 latency, per-service utilization and throttle seconds.
        """
        ...
