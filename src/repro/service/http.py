"""Stdlib HTTP/JSON API over a running :class:`Orchestrator`.

The server is a plain :class:`http.server.ThreadingHTTPServer` — no web
framework, per the repo's no-new-dependencies rule — serving:

========================  =====================================================
``GET /``                 service banner + endpoint listing
``GET /apps``             status rows for every registered app
``GET /apps/<id>``        one app's status row
``GET /decisions?app=X``  decision feed (``since=<step>``, ``limit=<n>``)
``GET /state?app=X``      live allocation + manager-state snapshot
``GET /metrics``          Prometheus text exposition of the telemetry registry
``POST /shutdown``        request graceful shutdown (drain, flush, exit)
========================  =====================================================

Handler threads never touch orchestrator state directly: every request
is bridged onto the service's asyncio event loop with
:func:`asyncio.run_coroutine_threadsafe`, so the single-threaded
mutation model in :mod:`repro.service.orchestrator` holds even with
concurrent HTTP clients.  Unknown apps map to 404, bad parameters to
400, everything else to 500 with the error message in the JSON body.
The bridge itself is bounded: a request the event loop cannot answer
within the bridge timeout is cancelled and returns 504, and a request
racing service shutdown (the loop already stopped or closed) returns
503 instead of hanging the handler thread forever.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import default_registry
from repro.service.orchestrator import Orchestrator
from repro.service.types import ServiceError

__all__ = ["ServiceServer"]

_BRIDGE_TIMEOUT = 30.0  # seconds a handler thread waits for the event loop


class _BadRequest(ValueError):
    """Maps to HTTP 400."""


class _BridgeTimeout(RuntimeError):
    """Maps to HTTP 504: the event loop did not answer in time."""


class _Unavailable(RuntimeError):
    """Maps to HTTP 503: the request raced service shutdown."""


def _banner() -> dict[str, Any]:
    return {
        "service": "repro.service",
        "endpoints": [
            "GET /",
            "GET /apps",
            "GET /apps/<id>",
            "GET /decisions?app=<id>[&since=<step>][&limit=<n>]",
            "GET /state?app=<id>",
            "GET /metrics",
            "POST /shutdown",
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceServer"  # type: ignore[assignment]

    # -- plumbing ----------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; the CLI reports the listening URL once

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _on_loop(self, fn: Callable[[Orchestrator], Any]) -> Any:
        """Run ``fn(orchestrator)`` on the service event loop, blocking.

        The wait is bounded: a timeout cancels the scheduled call and
        surfaces 504, and a loop that is already stopped or closed
        (request racing shutdown) surfaces 503 — a handler thread never
        blocks forever on a plane that will not answer.
        """
        server: ServiceServer = self.server  # type: ignore[assignment]

        async def call() -> Any:
            return fn(server.orchestrator)

        if server.loop.is_closed() or not server.loop.is_running():
            raise _Unavailable("service is shutting down")
        try:
            future = asyncio.run_coroutine_threadsafe(call(), server.loop)
        except RuntimeError as exc:
            raise _Unavailable(f"service is shutting down: {exc}") from None
        try:
            return future.result(timeout=server.bridge_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise _BridgeTimeout(
                f"event loop did not answer within {server.bridge_timeout}s"
            ) from None
        except concurrent.futures.CancelledError:
            raise _Unavailable("service is shutting down") from None

    def _dispatch(self, fn: Callable[[Orchestrator], Any]) -> None:
        try:
            self._send_json(200, self._on_loop(fn))
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceError as exc:
            self._send_json(404, {"error": str(exc)})
        except _Unavailable as exc:
            self._send_json(503, {"error": str(exc)})
        except _BridgeTimeout as exc:
            self._send_json(504, {"error": str(exc)})
        except Exception as exc:  # surface, don't kill the handler thread
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routes ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        url = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        path = url.path.rstrip("/") or "/"
        if path == "/":
            self._send_json(200, _banner())
        elif path == "/apps":
            self._dispatch(lambda orch: orch.status())
        elif path.startswith("/apps/"):
            app_id = path[len("/apps/") :]
            self._dispatch(lambda orch: orch.app_status(app_id))
        elif path == "/decisions":
            self._dispatch(
                lambda orch: orch.decisions(
                    _require_app(query),
                    since=_int_param(query, "since", 0),
                    limit=_int_param(query, "limit", None),
                )
            )
        elif path == "/state":
            self._dispatch(lambda orch: orch.state(_require_app(query)))
        elif path == "/metrics":
            # The registry is internally locked — no event-loop bridge
            # needed, so a scrape never competes with tick latency.
            self._send_text(200, default_registry().render())
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/shutdown":

            def request(orch: Orchestrator) -> dict[str, Any]:
                orch.request_shutdown()
                return {"shutdown": "requested"}

            self._dispatch(request)
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})


def _require_app(query: dict[str, str]) -> str:
    app = query.get("app", "")
    if not app:
        raise _BadRequest("missing required query parameter: app")
    return app


def _int_param(
    query: dict[str, str], name: str, default: int | None
) -> int | None:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise _BadRequest(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise _BadRequest(f"{name} must be >= 0, got {value}")
    return value


class ServiceServer:
    """Serves the API from a daemon thread beside the asyncio loop.

    ``port=0`` binds an ephemeral port (the resolved one is in
    :attr:`port`/:attr:`url` after construction) — that is what tests
    and the CI gate use to avoid collisions.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        loop: asyncio.AbstractEventLoop,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        bridge_timeout: float = _BRIDGE_TIMEOUT,
    ) -> None:
        if bridge_timeout <= 0:
            raise ValueError(f"bridge_timeout must be positive: {bridge_timeout}")
        self.orchestrator = orchestrator
        self.loop = loop
        self.bridge_timeout = float(bridge_timeout)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # Expose service context to handler threads through the server
        # object (the only channel BaseHTTPRequestHandler offers).
        self._httpd.orchestrator = orchestrator  # type: ignore[attr-defined]
        self._httpd.loop = loop  # type: ignore[attr-defined]
        self._httpd.bridge_timeout = self.bridge_timeout  # type: ignore[attr-defined]
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self.url = f"http://{host}:{self.port}"
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-service-http:{self.port}",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
