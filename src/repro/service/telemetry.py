"""Service-plane instruments bound to the process-wide metrics registry.

One module declares every metric the control plane reports, so the
``GET /metrics`` scrape surface is defined in one place: guardian tick
latency (per app), per-app queue-depth high-water marks, the resilience
counters (poisonings, restarts, backoff retries, tick timeouts,
stream-fault dedup/reorder events), and the Rescaler's actuation
counters.  Registration is idempotent (get-or-create), so importing
this module any number of times — or alongside tests that build their
own registries — is safe.
"""

from __future__ import annotations

from repro.obs.metrics import default_registry

__all__ = [
    "GUARDIAN_TICK_SECONDS",
    "GUARDIAN_QUEUE_PEAK",
    "GUARDIAN_POISONED",
    "GUARDIAN_RESTARTS",
    "GUARDIAN_BACKOFF_RETRIES",
    "GUARDIAN_TICK_TIMEOUTS",
    "STREAM_DUPLICATES_DROPPED",
    "STREAM_REORDERED",
    "RESCALER_APPLIES",
    "RESCALER_SCALE_UPS",
    "RESCALER_SCALE_DOWNS",
    "RESCALER_CPU_MOVED",
]

_REG = default_registry()

GUARDIAN_TICK_SECONDS = _REG.histogram(
    "repro_guardian_tick_seconds",
    "Wall-clock latency of one guardian control tick.",
    labelnames=("app",),
)

GUARDIAN_QUEUE_PEAK = _REG.gauge(
    "repro_guardian_queue_depth_peak",
    "High-water mark of a guardian's bounded metrics queue.",
    labelnames=("app",),
)

GUARDIAN_POISONED = _REG.counter(
    "repro_guardian_poisoned_total",
    "Guardians taken out of service after an unrecoverable error.",
    labelnames=("app",),
)

GUARDIAN_RESTARTS = _REG.counter(
    "repro_guardian_restarts_total",
    "Guardian rebuilds that replayed the recorded decision feed.",
    labelnames=("app",),
)

GUARDIAN_BACKOFF_RETRIES = _REG.counter(
    "repro_guardian_backoff_retries_total",
    "Tick retries taken after an exponential-backoff delay.",
    labelnames=("app",),
)

GUARDIAN_TICK_TIMEOUTS = _REG.counter(
    "repro_guardian_tick_timeouts_total",
    "Ticks abandoned after exceeding the configured tick timeout.",
    labelnames=("app",),
)

STREAM_DUPLICATES_DROPPED = _REG.counter(
    "repro_stream_duplicates_dropped_total",
    "Duplicate metric samples deduplicated by a guardian.",
    labelnames=("app",),
)

STREAM_REORDERED = _REG.counter(
    "repro_stream_reordered_total",
    "Out-of-order metric samples held in a guardian's reorder buffer.",
    labelnames=("app",),
)

RESCALER_APPLIES = _REG.counter(
    "repro_rescaler_applies_total",
    "Allocations pushed into an app's (simulated) deployment.",
    labelnames=("app",),
)

RESCALER_SCALE_UPS = _REG.counter(
    "repro_rescaler_scale_ups_total",
    "Applies that grew at least one service's CPU.",
    labelnames=("app",),
)

RESCALER_SCALE_DOWNS = _REG.counter(
    "repro_rescaler_scale_downs_total",
    "Applies that shrank at least one service's CPU.",
    labelnames=("app",),
)

RESCALER_CPU_MOVED = _REG.counter(
    "repro_rescaler_cpu_moved_total",
    "Total absolute per-service CPU change across applies.",
    labelnames=("app",),
)
