"""Load drivers: where the service's metric stream comes from.

A driver turns "what load does app X see next?" into per-interval
:class:`~repro.service.types.MetricSample` rates.  The protocol is one
method — ``rates(guardian, n_steps)`` returns the next ``n_steps``
offered-load values starting at the guardian's current step — and the
orchestrator's :meth:`~repro.service.orchestrator.Orchestrator.drive`
streams those values through the bounded guardian queues.

Drivers resolve through the :data:`LOAD_DRIVERS` registry
(``factory(**params) -> driver``), mirroring the experiment-layer
registries so ``repro serve --driver <kind>`` and spec files stay
declarative.  The ``replay`` driver is the determinism-contract one: it
evaluates each app's *own declarative trace* through
:func:`repro.workload.replay.rate_schedule`, so the streamed floats are
bit-identical to what the offline runner's ``trace.rate(t)`` calls
produce and a driven service run equals the offline experiment
byte-for-byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.experiments.registry import Registry
from repro.workload.replay import rate_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.guardian import Guardian

__all__ = ["LOAD_DRIVERS", "LoadDriver", "ReplayDriver", "ConstantDriver"]

#: Load-driver kinds for ``repro serve --driver`` (see module docstring).
LOAD_DRIVERS = Registry("load driver")


@runtime_checkable
class LoadDriver(Protocol):
    """Anything that produces the next offered-load values for an app."""

    def rates(self, guardian: "Guardian", n_steps: int) -> np.ndarray: ...


class ReplayDriver:
    """Streams each app's own declarative trace (byte-identical replay).

    The rates for steps ``[steps_done, steps_done + n)`` come from one
    vectorized ``rate_schedule`` evaluation of the guardian's trace, so
    driving in several bursts (or after a partial run) continues the
    same schedule an offline run would follow.
    """

    def rates(self, guardian: "Guardian", n_steps: int) -> np.ndarray:
        return rate_schedule(
            guardian.unit.trace,
            guardian.spec.interval,
            n_steps,
            start_step=guardian.steps_done,
        )


class ConstantDriver:
    """Streams one fixed rate to every app (smoke/load testing)."""

    def __init__(self, rps: float) -> None:
        if rps < 0:
            raise ValueError("rps must be >= 0")
        self.rps = float(rps)

    def rates(self, guardian: "Guardian", n_steps: int) -> np.ndarray:
        return np.full(n_steps, self.rps, dtype=np.float64)


@LOAD_DRIVERS.register("replay")
def _replay_driver(**params):
    """Replay each app's declarative trace (offline-identical rates)."""
    if params:
        raise TypeError(f"unknown replay driver params: {sorted(params)}")
    return ReplayDriver()


@LOAD_DRIVERS.register("constant")
def _constant_driver(*, rps: float = 100.0, **params):
    """Fixed offered load for every app: {"rps": ...} (smoke testing)."""
    if params:
        raise TypeError(f"unknown constant driver params: {sorted(params)}")
    return ConstantDriver(rps)
