"""Performance-model substrate: analytical engine, DES, shared types."""

from repro.sim.batched import BatchedAnalyticalEngine, BatchObservation
from repro.sim.cfs import CFSModel, DEFAULT_PERIOD
from repro.sim.concurrency import ConcurrencyModel
from repro.sim.engine import AnalyticalEngine
from repro.sim.environment import Environment
from repro.sim.latency import (
    CellKernel,
    KernelSignals,
    LatencyParams,
    NoiselessLatencyKernel,
    end_to_end_latency,
    end_to_end_latency_batch,
    visit_latency,
)
from repro.sim.noise import NoiseModel
from repro.sim.types import Allocation, IntervalMetrics, ServiceMetrics

__all__ = [
    "Allocation",
    "IntervalMetrics",
    "ServiceMetrics",
    "Environment",
    "AnalyticalEngine",
    "BatchedAnalyticalEngine",
    "BatchObservation",
    "ConcurrencyModel",
    "CFSModel",
    "DEFAULT_PERIOD",
    "LatencyParams",
    "NoiselessLatencyKernel",
    "CellKernel",
    "KernelSignals",
    "NoiseModel",
    "visit_latency",
    "end_to_end_latency",
    "end_to_end_latency_batch",
]
