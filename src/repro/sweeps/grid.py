"""Declarative sweep grids: axis definitions over a base experiment spec.

A :class:`SweepGrid` turns one base :class:`~repro.experiments.ExperimentSpec`
plus a list of :class:`SweepAxis` definitions into the cartesian product of
cells the paper's figures sweep over (workload level, α/β, CPU speed, SLO,
seeds).  Each axis either varies a single dotted field path
(``"autoscaler.params.alpha"``) over scalar values, or — for zipped axes,
where several fields move together — enumerates override mappings whose keys
are dotted paths (``{"app": "sockshop", "workload": 700.0, "seed": 700}``).

Grids are frozen value objects that round-trip losslessly through JSON, so a
whole benchmark figure is one ``benchmarks/grids/<name>.json`` file: the CLI
(``repro sweep --grid``), the scheduler, and the figure benchmarks all expand
the same file to the same spec list.
"""

from __future__ import annotations

import itertools
import json
from copy import deepcopy
from dataclasses import dataclass, field
from difflib import get_close_matches
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.experiments.spec import SPEC_FIELDS, ExperimentSpec

__all__ = [
    "SweepAxis",
    "SweepCell",
    "SweepGrid",
    "set_path",
    "validate_override_path",
]

#: Reserved key in a zipped-axis override mapping: names the cell instead of
#: setting a spec field.
LABEL_KEY = "label"

#: The component spec fields a dotted path may descend into.  Anything
#: under ``params`` is factory-specific and validated by the factory at
#: build time; everything above it is schema-checked here so a typo fails
#: at grid load with a did-you-mean instead of surfacing later (or, worse,
#: silently materializing a new nested mapping).
_COMPONENT_FIELDS: dict[str, frozenset[str]] = {
    "workload": frozenset({"kind", "params"}),
    "autoscaler": frozenset({"kind", "params"}),
    "engine": frozenset({"kind", "params", "seed_offset"}),
}


def _suggestion(word: str, options: Iterable[str]) -> str:
    close = get_close_matches(word, list(options), n=1)
    return f" — did you mean {close[0]!r}?" if close else ""


def validate_override_path(path: str, *, owner: str = "axis") -> None:
    """Check a dotted override path against the spec schema.

    Raises ValueError (with a did-you-mean suggestion when one is close)
    for unknown spec fields, descent into scalar fields, and misspelled
    component subfields.  Paths below ``params`` are factory-specific and
    pass through untouched.
    """
    keys = path.split(".")
    if not all(keys):
        raise ValueError(f"malformed {owner} override path {path!r}")
    root = keys[0]
    if root not in SPEC_FIELDS:
        raise ValueError(
            f"{owner} override path {path!r}: unknown spec field {root!r} "
            f"(known: {', '.join(sorted(SPEC_FIELDS))})"
            f"{_suggestion(root, SPEC_FIELDS)}"
        )
    if len(keys) == 1:
        return
    subfields = _COMPONENT_FIELDS.get(root)
    if subfields is None:
        raise ValueError(
            f"{owner} override path {path!r} descends into {root!r}, "
            f"which takes a whole value (only "
            f"{', '.join(sorted(_COMPONENT_FIELDS))} have subfields)"
        )
    if keys[1] not in subfields:
        raise ValueError(
            f"{owner} override path {path!r}: {root!r} has no field "
            f"{keys[1]!r} (known: {', '.join(sorted(subfields))})"
            f"{_suggestion(keys[1], subfields)}"
        )
    if keys[1] != "params" and len(keys) > 2:
        raise ValueError(
            f"{owner} override path {path!r} descends into scalar field "
            f"{root}.{keys[1]}"
        )


def set_path(data: dict[str, Any], path: str, value: Any) -> None:
    """Assign ``value`` at a dotted ``path`` inside a nested dict.

    Intermediate mappings are created on demand; assigning *through* a
    non-mapping (e.g. ``"workload.params.rps"`` when ``workload`` is a bare
    rate) is an error rather than a silent overwrite.
    """
    keys = path.split(".")
    if not all(keys):
        raise ValueError(f"malformed override path {path!r}")
    node = data
    for key in keys[:-1]:
        child = node.setdefault(key, {})
        if not isinstance(child, dict):
            raise ValueError(
                f"override path {path!r} descends through non-mapping "
                f"field {key!r} ({child!r})"
            )
        node = child
    node[keys[-1]] = deepcopy(value)


def _scalar_label(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a name plus the values it takes.

    With ``path`` set, ``values`` are scalars assigned at that dotted path.
    Without it, every value is an override mapping ``{dotted.path: value}``
    (plus an optional ``"label"``) — the zipped form, where one axis step
    moves several spec fields together.
    """

    name: str
    values: tuple[Any, ...]
    path: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be a non-empty string")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if self.path is not None:
            validate_override_path(self.path, owner=f"axis {self.name!r}")
        else:
            for value in self.values:
                if not isinstance(value, Mapping):
                    raise ValueError(
                        f"axis {self.name!r} has no path, so every value "
                        f"must be an override mapping: {value!r}"
                    )
                for key in value:
                    if key != LABEL_KEY:
                        validate_override_path(
                            key, owner=f"axis {self.name!r}"
                        )

    def label(self, index: int) -> str:
        """The human-readable coordinate of value ``index`` on this axis."""
        value = self.values[index]
        if self.path is not None:
            return _scalar_label(value)
        label = value.get(LABEL_KEY)
        return str(label) if label is not None else str(index)

    def overrides(self, index: int) -> dict[str, Any]:
        """The ``{dotted.path: value}`` overrides of value ``index``."""
        value = self.values[index]
        if self.path is not None:
            return {self.path: value}
        return {k: v for k, v in value.items() if k != LABEL_KEY}

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "values": list(self.values)}
        if self.path is not None:
            d["path"] = self.path
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        known = {"name", "values", "path"}
        extra = set(data) - known
        if extra:
            hints = "".join(
                _suggestion(word, known) for word in sorted(extra)
            )
            raise ValueError(
                f"unknown SweepAxis fields: {sorted(extra)}{hints}"
            )
        for required in ("name", "values"):
            if required not in data:
                raise ValueError(f"SweepAxis needs {required!r}")
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            path=data.get("path"),
        )


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point: its index, axis coordinates, and spec."""

    index: int
    coords: dict[str, str]  # axis name -> value label, in axis order
    spec: ExperimentSpec

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class SweepGrid:
    """A named cartesian product of axes over a base experiment spec."""

    name: str
    base: ExperimentSpec
    axes: tuple[SweepAxis, ...] = ()
    title: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("grid name must be a non-empty string")
        if not isinstance(self.base, ExperimentSpec):
            object.__setattr__(
                self, "base", ExperimentSpec.from_dict(self.base)
            )
        object.__setattr__(
            self,
            "axes",
            tuple(
                a if isinstance(a, SweepAxis) else SweepAxis.from_dict(a)
                for a in self.axes
            ),
        )
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")

    # -- expansion ---------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def cells(self) -> list[SweepCell]:
        """Expand the full cartesian product, last axis varying fastest."""
        cells: list[SweepCell] = []
        index_ranges = [range(len(a.values)) for a in self.axes]
        for cell_index, combo in enumerate(itertools.product(*index_ranges)):
            data = self.base.to_dict()
            coords: dict[str, str] = {}
            for axis, value_index in zip(self.axes, combo):
                coords[axis.name] = axis.label(value_index)
                for path, value in axis.overrides(value_index).items():
                    set_path(data, path, value)
            if not data.get("name"):
                tag = ",".join(f"{k}={v}" for k, v in coords.items())
                data["name"] = f"{self.name}[{tag}]" if tag else self.name
            cells.append(
                SweepCell(
                    index=cell_index,
                    coords=coords,
                    spec=ExperimentSpec.from_dict(data),
                )
            )
        return cells

    def specs(self) -> list[ExperimentSpec]:
        return [cell.spec for cell in self.cells()]

    def validate(self) -> "SweepGrid":
        """Expand every cell and resolve its registry keys."""
        for cell in self.cells():
            cell.spec.validate()
        return self

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self.cells())

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [a.to_dict() for a in self.axes],
        }
        if self.title:
            d["title"] = self.title
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepGrid":
        known = {"name", "base", "axes", "title"}
        extra = set(data) - known
        if extra:
            hints = "".join(
                _suggestion(word, known) for word in sorted(extra)
            )
            raise ValueError(
                f"unknown SweepGrid fields: {sorted(extra)}{hints}"
            )
        for required in ("name", "base"):
            if required not in data:
                raise ValueError(f"SweepGrid needs {required!r}")
        return cls(
            name=data["name"],
            base=ExperimentSpec.from_dict(data["base"]),
            axes=tuple(
                SweepAxis.from_dict(a) for a in data.get("axes", ())
            ),
            title=str(data.get("title", "")),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepGrid":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "SweepGrid":
        return cls.from_json(Path(path).read_text())
