#!/usr/bin/env python
"""Compare PEMA, OPTM and RULE across all three prototype applications.

A compact version of the paper's Fig. 15 evaluation, driven entirely by
the declarative experiment API: each scenario is one
:class:`ExperimentSpec`, and ``run_comparison`` evaluates the cell
(settled PEMA total vs the exhaustive-search optimum vs the rule-based
commercial autoscaler) through the same runner the CLI and benchmark
suite use.

Run:  python examples/compare_autoscalers.py
"""

from repro.experiments import ExperimentSpec, run_comparison

SPECS = [
    ExperimentSpec(name=f"compare-{app}", app=app, workload=rps,
                   n_steps=60, seed=1)
    for app, rps in {
        "sockshop": 700.0,
        "trainticket": 225.0,
        "hotelreservation": 600.0,
    }.items()
]


def main() -> None:
    print(f"{'app':18s} {'rps':>5s} {'OPTM':>7s} {'PEMA':>7s} {'RULE':>7s} "
          f"{'PEMA/OPTM':>10s} {'savings':>8s}")
    for spec in SPECS:
        cell = run_comparison(spec, rule_steps=25)
        print(f"{spec.app:18s} {cell['workload_rps']:5.0f} "
              f"{cell['optm_total']:7.2f} {cell['pema_total']:7.2f} "
              f"{cell['rule_total']:7.2f} {cell['pema_over_optm']:10.2f} "
              f"{cell['pema_savings_vs_rule'] * 100:7.0f}%")

    print("\n(paper Fig. 15: PEMA sits close to the optimum and saves up to "
          "33% vs the rule-based autoscaler)")


if __name__ == "__main__":
    main()
