"""Labelled metrics store — the Prometheus stand-in.

Series are keyed by metric name plus a frozen label set, e.g.::

    store.record("cpu_utilization", 0.35, t=120.0, service="frontend")
    store.series("cpu_utilization", service="frontend").last_value
"""

from __future__ import annotations

from typing import Iterable

from repro.metrics.series import TimeSeries

__all__ = ["MetricsStore"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsStore:
    """In-memory multi-series metric database."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelKey], TimeSeries] = {}

    def record(self, metric: str, value: float, t: float, **labels: str) -> None:
        """Append one sample to the (metric, labels) series."""
        key = (metric, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries()
        series.append(t, value)

    def series(self, metric: str, **labels: str) -> TimeSeries:
        """The series for exact (metric, labels); raises KeyError if absent."""
        return self._series[(metric, _label_key(labels))]

    def has(self, metric: str, **labels: str) -> bool:
        return (metric, _label_key(labels)) in self._series

    def metrics(self) -> tuple[str, ...]:
        return tuple(sorted({name for name, _ in self._series}))

    def label_sets(self, metric: str) -> tuple[dict[str, str], ...]:
        """All label combinations recorded for a metric."""
        return tuple(
            dict(labels) for name, labels in self._series if name == metric
        )

    def latest(self, metric: str, **labels: str) -> float:
        return self.series(metric, **labels).last_value

    def sum_over(self, metric: str, label: str, names: Iterable[str], **fixed) -> float:
        """Sum the latest values of a metric across label values."""
        total = 0.0
        for name in names:
            total += self.latest(metric, **{label: name}, **fixed)
        return total
