"""Synchronous runtime harness around the asyncio control plane.

:class:`ServiceRuntime` runs the orchestrator's event loop in a
background thread and exposes a blocking facade (register / drive /
submit / query / shutdown), which is what the ``repro serve`` CLI, the
test suite, and the CI service gate all drive.  Every orchestrator call
is marshalled onto the loop thread with
:func:`asyncio.run_coroutine_threadsafe`, so callers never race the
guardian tasks.

:func:`service_session` is the context-manager form: it starts the
runtime, registers the given specs, and guarantees graceful shutdown
(queue drain + state-store flush) on exit even when the body raises.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from typing import Any, Coroutine, Iterator, Sequence

from repro.experiments.spec import ExperimentSpec
from repro.service.guardian import Guardian
from repro.service.http import ServiceServer
from repro.service.orchestrator import Orchestrator
from repro.service.rescaler import Rescaler
from repro.service.state import ServiceStateStore
from repro.service.types import MetricSample, ServiceError

__all__ = ["ServiceRuntime", "service_session"]


class ServiceRuntime:
    """Blocking facade over an :class:`Orchestrator` on its own loop thread."""

    def __init__(
        self,
        *,
        store: ServiceStateStore | None = None,
        rescaler: Rescaler | None = None,
        queue_size: int = 64,
        http: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.orchestrator = Orchestrator(
            store=store, rescaler=rescaler, queue_size=queue_size
        )
        self._http = http
        self._host = host
        self._port = port
        self.server: ServiceServer | None = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True
        )
        self._started = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> "ServiceRuntime":
        """Start the loop thread, guardian tasks, and (optional) HTTP API."""
        if self._started:
            return self
        self._started = True
        self._thread.start()
        self._call(self.orchestrator.start())
        if self._http:
            self.server = ServiceServer(
                self.orchestrator,
                self._loop,
                host=self._host,
                port=self._port,
            )
            self.server.start()
        return self

    def shutdown(self, timeout: float = 60.0) -> dict[str, Any]:
        """Graceful stop; returns the state-store flush summary."""
        if self._stopped:
            return {}
        self._stopped = True
        try:
            summary = self._call(self.orchestrator.shutdown(), timeout)
        finally:
            if self.server is not None:
                self.server.stop()
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop.close()
        return summary

    def _call(self, coro: Coroutine[Any, Any, Any], timeout: float = 60.0) -> Any:
        if not self._thread.is_alive():
            coro.close()
            raise ServiceError(
                "service runtime is not running (call start() first)"
            )
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    @property
    def url(self) -> str | None:
        """The HTTP API base URL, when serving."""
        return self.server.url if self.server is not None else None

    # -- blocking facade ---------------------------------------------------------
    def register(
        self,
        spec: ExperimentSpec,
        *,
        app_id: str | None = None,
        repeat: int = 0,
    ) -> Guardian:
        async def call() -> Guardian:
            return self.orchestrator.register(
                spec, app_id=app_id, repeat=repeat
            )

        return self._call(call())

    def submit(self, sample: MetricSample) -> None:
        self._call(self.orchestrator.submit(sample))

    def drive(
        self,
        n_steps: int | None = None,
        *,
        driver: Any = None,
        apps: list[str] | None = None,
        tick: float = 0.0,
        timeout: float = 600.0,
    ) -> int:
        """Stream a driver schedule and wait for all ticks to land."""
        return self._call(
            self.orchestrator.drive(
                n_steps, driver=driver, apps=apps, tick=tick
            ),
            timeout,
        )

    def status(self) -> dict[str, Any]:
        async def call() -> dict[str, Any]:
            return self.orchestrator.status()

        return self._call(call())

    def decisions(
        self, app_id: str, *, since: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        async def call() -> dict[str, Any]:
            return self.orchestrator.decisions(
                app_id, since=since, limit=limit
            )

        return self._call(call())

    def state(self, app_id: str) -> dict[str, Any]:
        async def call() -> dict[str, Any]:
            return self.orchestrator.state(app_id)

        return self._call(call())

    def request_shutdown(self) -> None:
        self._loop.call_soon_threadsafe(self.orchestrator.request_shutdown)

    def wait_shutdown_requested(self, timeout: float | None = None) -> bool:
        """Block until someone (e.g. ``POST /shutdown``) requests a stop."""
        done = threading.Event()

        async def watch() -> None:
            await self.orchestrator.wait_shutdown_requested()
            done.set()

        asyncio.run_coroutine_threadsafe(watch(), self._loop)
        return done.wait(timeout)


@contextmanager
def service_session(
    specs: Sequence[ExperimentSpec] = (),
    *,
    store: ServiceStateStore | None = None,
    queue_size: int = 64,
    http: bool = False,
    port: int = 0,
) -> Iterator[ServiceRuntime]:
    """A started runtime with ``specs`` registered; always shuts down."""
    runtime = ServiceRuntime(
        store=store, queue_size=queue_size, http=http, port=port
    )
    runtime.start()
    try:
        for spec in specs:
            runtime.register(spec)
        yield runtime
    finally:
        runtime.shutdown()
