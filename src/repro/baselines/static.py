"""Static allocator — holds a fixed allocation forever.

Used as the fixed-allocation probe in several experiments (slope learning,
good-vs-bad distribution studies) and as a trivial sanity baseline.
"""

from __future__ import annotations

from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["StaticAllocator"]


class StaticAllocator:
    """An autoscaler that never scales."""

    def __init__(self, allocation: Allocation) -> None:
        self._allocation = allocation

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def decide(self, metrics: IntervalMetrics) -> Allocation:  # noqa: ARG002
        return self._allocation
