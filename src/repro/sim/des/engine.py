"""DESEngine: the discrete-event simulator behind the Environment protocol.

Each ``observe`` call runs a fresh transient simulation of the requested
allocation/workload.  Full two-minute intervals are unnecessary (and slow
in pure Python), so the engine simulates a shorter representative slice
(default 12 s after a 3 s warm-up) and rescales accumulated throttle
seconds to the nominal interval, keeping units compatible with the
analytical engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.sim.des.simulator import MicroserviceSimulator, SimConfig
from repro.sim.des.tracing import TraceLog
from repro.sim.types import Allocation, IntervalMetrics, ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.spec import AppSpec

__all__ = ["DESEngine"]


class DESEngine:
    """Request-level simulation implementation of ``Environment``.

    ``mode`` selects the execution style: ``"vectorized"`` (default, the
    pre-drawn-variate :class:`MicroserviceSimulator`) or ``"reference"``
    (the retained scalar oracle,
    :class:`~repro.sim.des.reference.ReferenceSimulator`).  The two are
    bit-identical by contract — ``mode`` exists so fidelity tests and the
    DES gate can run both from one declarative spec.
    """

    def __init__(
        self,
        app: "AppSpec",
        *,
        config: SimConfig | None = None,
        sim_seconds: float = 12.0,
        warmup_seconds: float = 3.0,
        seed: int = 0,
        mode: str = "vectorized",
    ) -> None:
        if sim_seconds <= 0 or warmup_seconds < 0:
            raise ValueError("need sim_seconds > 0 and warmup_seconds >= 0")
        if mode == "vectorized":
            self._simulator_cls = MicroserviceSimulator
        elif mode == "reference":
            from repro.sim.des.reference import ReferenceSimulator

            self._simulator_cls = ReferenceSimulator
        else:
            raise ValueError(f"unknown DES mode {mode!r}")
        self._app = app
        self.config = config or SimConfig()
        self.sim_seconds = sim_seconds
        self.warmup_seconds = warmup_seconds
        self.seed = seed
        self.mode = mode
        self._calls = 0
        self.last_traces: TraceLog | None = None
        self.last_completed: int = 0
        self.last_started: int = 0

    @property
    def app(self) -> "AppSpec":
        return self._app

    @property
    def cpu_speed(self) -> float:
        return self.config.cpu_speed

    def set_cpu_speed(self, speed: float) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.config = replace(self.config, cpu_speed=speed)

    def observe(
        self,
        allocation: Allocation,
        workload_rps: float,
        interval: float = 120.0,
    ) -> IntervalMetrics:
        """Simulate a slice of the interval and report rescaled metrics."""
        if workload_rps <= 0:
            # A silent application: zero latency, idle services.
            services = {
                name: ServiceMetrics(
                    utilization=0.0,
                    throttle_seconds=0.0,
                    usage_cores=0.0,
                    usage_p90_cores=0.0,
                )
                for name in self._app.service_names
            }
            return IntervalMetrics(
                latency_p95=0.0, workload_rps=0.0, services=services
            )
        self._calls += 1
        sim = self._simulator_cls(
            self._app,
            allocation,
            workload_rps,
            config=self.config,
            seed=(self.seed * 1_000_003 + self._calls),
        )
        duration = min(self.sim_seconds, interval)
        raw = sim.run(duration, warmup=self.warmup_seconds)
        self.last_traces = sim.traces
        self.last_completed = sim.window.completed
        self.last_started = sim.window.started
        scale = interval / duration
        services = {
            name: ServiceMetrics(
                utilization=m.utilization,
                throttle_seconds=m.throttle_seconds * scale,
                usage_cores=m.usage_cores,
                usage_p90_cores=m.usage_p90_cores,
            )
            for name, m in raw.services.items()
        }
        return IntervalMetrics(
            latency_p95=raw.latency_p95,
            workload_rps=workload_rps,
            services=services,
            latency_mean=raw.latency_mean,
            completed_requests=raw.completed_requests,
        )
