"""Request execution state: compiled plans walked by the simulator.

An in-flight request executes its class's stages sequentially.  Each stage
fans out entries in parallel; an entry performs an integer number of
sequential visits to one service (fractional plan visits are sampled
per-request).  A visit is a CPU burst followed by a non-CPU wait (I/O,
downstream blocking), so CPU concurrency stays bursty even when many
requests are in flight — the regime the paper's throttling observations
live in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.spec import AppSpec, RequestClass

__all__ = ["CompiledPlan", "compile_plans", "RequestState", "EntryState"]


@dataclass(frozen=True)
class CompiledPlan:
    """A request class reduced to arrays for fast sampling."""

    name: str
    weight: float
    stages: tuple[tuple[tuple[str, float], ...], ...]


def compile_plans(app: AppSpec) -> tuple[CompiledPlan, ...]:
    return tuple(
        CompiledPlan(
            name=rc.name,
            weight=rc.weight,
            stages=tuple(stage.parallel for stage in rc.stages),
        )
        for rc in app.request_classes
    )


@dataclass
class EntryState:
    """One parallel entry of the active stage."""

    service: str
    visits_left: int


@dataclass
class RequestState:
    """One in-flight request."""

    request_id: int
    plan: CompiledPlan
    arrived_at: float
    stage_index: int = -1
    entries_pending: int = 0
    spans: list = field(default_factory=list)

    def sample_stage_entries(
        self, rng: np.random.Generator
    ) -> list[EntryState]:
        """Materialize the next stage's entries with sampled visit counts."""
        self.stage_index += 1
        entries: list[EntryState] = []
        for service, visits in self.plan.stages[self.stage_index]:
            whole = int(np.floor(visits))
            frac = visits - whole
            count = whole + (1 if rng.random() < frac else 0)
            if count > 0:
                entries.append(EntryState(service=service, visits_left=count))
        self.entries_pending = len(entries)
        return entries

    @property
    def finished_stages(self) -> bool:
        return self.stage_index >= len(self.plan.stages) - 1
