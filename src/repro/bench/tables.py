"""ASCII table/series formatting for benchmark reports.

Every benchmark prints the rows/series of the figure or table it
regenerates; these helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A two-column series (what a figure panel plots)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    return format_table([x_label, y_label], list(zip(xs, ys)), title=name)


def format_kv(title: str, pairs: Iterable[tuple[str, object]]) -> str:
    """Key/value summary block."""
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key}: {_cell(value)}")
    return "\n".join(lines)
