"""Deep property-based suites: fuzzing the controller, tree partitions,
allocation algebra, and engine continuity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PEMAConfig, PEMAController
from repro.core.workload_range import RangeTree
from repro.sim import AnalyticalEngine, Allocation, NoiseModel
from repro.sim.types import IntervalMetrics, ServiceMetrics
from tests.conftest import build_tiny_app

pytestmark = pytest.mark.slow

SERVICES = ("a", "b", "c")

_APP = build_tiny_app()
_ENGINE = AnalyticalEngine(_APP, noise=NoiseModel.none())


@st.composite
def metric_sequences(draw):
    """Random but valid sequences of interval observations."""
    n = draw(st.integers(min_value=1, max_value=25))
    seq = []
    for _ in range(n):
        latency = draw(st.floats(min_value=0.0, max_value=1.0))
        utils = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in SERVICES]
        throttles = [
            draw(st.floats(min_value=0.0, max_value=20.0)) for _ in SERVICES
        ]
        seq.append(
            IntervalMetrics(
                latency_p95=latency,
                workload_rps=100.0,
                services={
                    name: ServiceMetrics(
                        utilization=u,
                        throttle_seconds=h,
                        usage_cores=u,
                        usage_p90_cores=u,
                    )
                    for name, u, h in zip(SERVICES, utils, throttles)
                },
            )
        )
    return seq


class TestControllerFuzz:
    @given(seq=metric_sequences(), seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_and_respects_floor(self, seq, seed):
        """Any valid metric stream: no exceptions, allocations stay finite
        and above the CPU floor, and the RHDb grows one row per step."""
        c = PEMAController(
            SERVICES,
            0.25,
            Allocation({s: 2.0 for s in SERVICES}),
            PEMAConfig(),
            seed=seed,
        )
        for i, metrics in enumerate(seq, start=1):
            result = c.step(metrics)
            values = result.allocation.as_array()
            assert np.all(np.isfinite(values))
            assert np.all(values >= c.config.min_cpu - 1e-12)
            assert len(c.rhdb) == i

    @given(seq=metric_sequences())
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_historical_allocation(self, seq):
        """Every ROLLBACK lands on a previously-logged allocation or the
        emergency inflate of the current one."""
        c = PEMAController(
            SERVICES,
            0.25,
            Allocation({s: 2.0 for s in SERVICES}),
            PEMAConfig(explore_a=0.0, explore_b=0.0),
            seed=0,
        )
        for metrics in seq:
            before = c.allocation
            logged = {r.allocation for r in c.rhdb} | {before}
            result = c.step(metrics)
            if result.violated:
                assert (
                    result.allocation in logged
                    or result.allocation == before.scale(1.25)
                )

    @given(
        latencies=st.lists(
            st.floats(min_value=0.0, max_value=0.24), min_size=3, max_size=20
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_no_violation_means_monotone_totals_without_exploration(
        self, latencies
    ):
        """With exploration off and no violations, total CPU never grows."""
        c = PEMAController(
            SERVICES,
            0.25,
            Allocation({s: 2.0 for s in SERVICES}),
            PEMAConfig(explore_a=0.0, explore_b=0.0),
            seed=1,
        )
        prev_total = c.allocation.total()
        for latency in latencies:
            metrics = IntervalMetrics(
                latency_p95=latency,
                workload_rps=100.0,
                services={
                    s: ServiceMetrics(0.1, 0.0, 0.1, 0.1) for s in SERVICES
                },
            )
            result = c.step(metrics)
            assert result.allocation.total() <= prev_total + 1e-9
            prev_total = result.allocation.total()


class TestRangeTreePartition:
    @given(
        steps=st.lists(
            st.floats(min_value=100.0, max_value=499.0), min_size=1,
            max_size=60,
        ),
        split_after=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_leaves_always_partition_the_band(self, steps, split_after):
        """No gaps, no overlaps, full coverage — after any step sequence."""
        controller = PEMAController(
            SERVICES, 0.25, Allocation({s: 2.0 for s in SERVICES}),
            PEMAConfig(explore_a=0.0, explore_b=0.0), seed=0,
        )
        tree = RangeTree.initial(
            100.0, 500.0, controller, min_width=25.0, split_after=split_after
        )
        rng = np.random.default_rng(0)
        for rps in steps:
            leaf = tree.find(rps)
            tree.note_step(leaf, rng)
            ordered = sorted(tree.leaves, key=lambda l: l.low)
            assert ordered[0].low == pytest.approx(100.0)
            assert ordered[-1].high == pytest.approx(500.0)
            for left, right in zip(ordered, ordered[1:]):
                assert left.high == pytest.approx(right.low)
            assert all(l.width >= 25.0 - 1e-9 for l in ordered)


class TestAllocationAlgebra:
    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=3
        ),
        f1=st.floats(min_value=0.0, max_value=0.5),
        f2=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduce_composition(self, values, f1, f2):
        """Two successive reductions equal one combined reduction (up to the
        floor clamp)."""
        a = Allocation(dict(zip(SERVICES, values)))
        twice = a.reduce(SERVICES, f1, floor=1e-9).reduce(
            SERVICES, f2, floor=1e-9
        )
        combined = a.reduce(SERVICES, 1 - (1 - f1) * (1 - f2), floor=1e-9)
        np.testing.assert_allclose(
            twice.as_array(), combined.as_array(), rtol=1e-10
        )

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=3
        ),
        factor=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scale_preserves_proportions(self, values, factor):
        a = Allocation(dict(zip(SERVICES, values)))
        scaled = a.scale(factor)
        assert scaled.total() == pytest.approx(a.total() * factor)
        np.testing.assert_allclose(
            scaled.as_array() / a.as_array(), factor
        )


class TestEngineContinuity:
    @given(
        scale=st.floats(min_value=0.5, max_value=2.0),
        eps=st.floats(min_value=1e-4, max_value=5e-3),
        workload=st.floats(min_value=50.0, max_value=250.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_small_changes_small_effects(self, scale, eps, workload):
        """The latency surface has no jumps: nearby allocations give
        nearby latencies (relative continuity)."""
        base = _APP.generous_allocation(workload).scale(scale)
        nearby = base.scale(1.0 + eps)
        l1 = _ENGINE.noiseless_latency(base, workload)
        l2 = _ENGINE.noiseless_latency(nearby, workload)
        assert abs(l2 - l1) / l1 < 0.3

    @given(workload=st.floats(min_value=10.0, max_value=400.0))
    @settings(max_examples=40, deadline=None)
    def test_latency_positive_and_finite(self, workload):
        alloc = _APP.generous_allocation(max(workload, 1.0))
        latency = _ENGINE.noiseless_latency(alloc, workload)
        assert np.isfinite(latency)
        assert latency > 0
