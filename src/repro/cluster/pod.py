"""Pod model: one container instance of a microservice."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["Pod"]


@dataclass
class Pod:
    """A scheduled container with CPU request/limit and memory request.

    Following the paper (§2.2) we use a single replica per microservice and
    vertical CPU scaling, with request == limit (Guaranteed QoS class).
    """

    service: str
    cpu_request: float
    memory_mb: float
    node: "Node | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cpu_request <= 0:
            raise ValueError(f"{self.service}: cpu_request must be > 0")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.service}: memory_mb must be > 0")

    @property
    def scheduled(self) -> bool:
        return self.node is not None
