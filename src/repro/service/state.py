"""Knowledge plane: decision history + manager-state persistence.

The :class:`ServiceStateStore` is the MAPE-K "K": it accumulates every
guardian's decision feed in memory for the query API and persists
snapshots plus final histories through a pluggable *backend* — any
object with the content-addressed ``get_raw(key)``/``put_raw(key,
payload)`` surface that :class:`repro.sweeps.store.JsonDirectoryStore`
defines.  Two backends ship, resolved through the :data:`STATE_STORES`
registry:

``memory``
    volatile in-process dict — the default for tests and one-shot
    drives;
``directory``
    a :class:`~repro.sweeps.SweepStore` directory.  Because a complete
    guardian history is byte-identical to the offline unit payload, the
    store flushes it under the *same* content-addressed unit key the
    sweep scheduler uses — so a finished service run literally warms the
    sweep cache, and ``repro sweep --resume`` over the same specs gets
    cache hits.

Incomplete runs are never written under unit keys (that would poison
the sweep cache with partial histories); they persist only under
service-specific ``service_state`` keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.experiments.registry import Registry
from repro.sweeps.store import StoreStats, SweepStore, canonical_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.guardian import Guardian
    from repro.service.types import Decision

__all__ = [
    "STATE_STORES",
    "MemoryBackend",
    "ServiceStateStore",
    "service_state_key",
]

_FORMAT = 1

#: Pluggable persistence backends for the service state store.  Factory
#: convention: ``factory(**params) -> backend`` where the backend
#: exposes ``get_raw``/``put_raw`` (see module docstring).
STATE_STORES = Registry("state-store backend")


class MemoryBackend:
    """Volatile in-process backend: a dict keyed by canonical key hash."""

    def __init__(self) -> None:
        self.entries: dict[str, Any] = {}
        self.keys: dict[str, Any] = {}
        self.stats = StoreStats()

    def get_raw(self, key_obj: Any) -> Any | None:
        digest = canonical_key(key_obj)
        if digest not in self.entries:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return self.entries[digest]

    def put_raw(self, key_obj: Any, payload: Any) -> str:
        digest = canonical_key(key_obj)
        self.entries[digest] = payload
        self.keys[digest] = key_obj
        self.stats.writes += 1
        return digest

    def __len__(self) -> int:
        return len(self.entries)


@STATE_STORES.register("memory")
def _memory_backend(**params: Any):
    """Volatile in-process backend (state dies with the service)."""
    if params:
        raise TypeError(f"unknown memory backend params: {sorted(params)}")
    return MemoryBackend()


@STATE_STORES.register("directory")
def _directory_backend(*, root: str, **params: Any):
    """Content-addressed JSON directory sharing keys/bytes with the sweep cache."""
    if params:
        raise TypeError(f"unknown directory backend params: {sorted(params)}")
    return SweepStore(root)


def service_state_key(
    app_id: str, spec_data: dict[str, Any], repeat: int
) -> dict[str, Any]:
    """The content-addressed key of one app's live service snapshot.

    Distinct from the sweep unit key (``kind`` differs), so snapshots of
    partial runs can never alias completed unit results.
    """
    return {
        "kind": "service_state",
        "format": _FORMAT,
        "app": app_id,
        "spec": spec_data,
        "repeat": int(repeat),
    }


class ServiceStateStore:
    """Decision history + snapshot persistence for every registered app."""

    def __init__(
        self, backend: Any | None = None, *, snapshot_every: int = 0
    ) -> None:
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.backend = backend
        self.snapshot_every = snapshot_every
        self._decisions: dict[str, list[dict[str, Any]]] = {}
        self.unit_entries = 0
        self.snapshots = 0

    # -- the decision feed -------------------------------------------------------
    def record_decision(
        self, guardian: "Guardian", decision: "Decision"
    ) -> None:
        """Append one decision; snapshot periodically when configured."""
        self._decisions.setdefault(guardian.app_id, []).append(
            decision.to_dict()
        )
        if (
            self.backend is not None
            and self.snapshot_every
            and guardian.steps_done % self.snapshot_every == 0
        ):
            self.snapshot(guardian)

    def decisions(
        self, app_id: str, *, since: int = 0, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Decision dicts for ``app_id`` with ``record.step >= since``."""
        rows = [
            d for d in self._decisions.get(app_id, []) if d["step"] >= since
        ]
        if limit is not None:
            rows = rows[:limit]
        return rows

    def decision_count(self, app_id: str) -> int:
        return len(self._decisions.get(app_id, ()))

    def forget(self, app_id: str) -> None:
        self._decisions.pop(app_id, None)

    # -- persistence -------------------------------------------------------------
    def snapshot(self, guardian: "Guardian") -> Any | None:
        """Persist one app's live history + manager state (best effort).

        The payload carries the run-so-far in the offline unit encoding
        plus the live ``/state`` view; the key is service-specific, so
        partial histories never masquerade as completed sweep units.
        """
        if self.backend is None:
            return None
        key = service_state_key(
            guardian.app_id, guardian.spec.to_dict(), guardian.repeat
        )
        ref = self.backend.put_raw(
            key,
            {
                "step": guardian.steps_done,
                "complete": guardian.complete,
                "history": guardian.result_payload(),
                "state": guardian.state(),
            },
        )
        self.snapshots += 1
        return ref

    def flush(self, guardians: dict[str, "Guardian"]) -> dict[str, Any]:
        """Persist every app at shutdown; returns a per-app summary.

        Complete, error-free runs are additionally written under the
        sweep-store unit key — byte-identical to what an offline sweep
        of the same spec would cache.
        """
        summary: dict[str, Any] = {}
        for app_id, guardian in sorted(guardians.items()):
            entry: dict[str, Any] = {
                "steps": guardian.steps_done,
                "complete": guardian.complete,
                "error": guardian.error,
                "unit_entry": False,
            }
            if self.backend is not None:
                self.snapshot(guardian)
                if guardian.complete and guardian.error is None:
                    self.backend.put_raw(
                        SweepStore.unit_key(guardian.spec, guardian.repeat),
                        guardian.result_payload(),
                    )
                    self.unit_entries += 1
                    entry["unit_entry"] = True
            summary[app_id] = entry
        return summary
