"""Grid-file execution for the figure benchmarks.

The ported figures are data: one ``benchmarks/grids/<name>.json``
:class:`~repro.sweeps.SweepGrid` per figure, expanded and executed by the
shared sweep scheduler.  Set ``REPRO_SWEEP_CACHE=<dir>`` to persist cell
results (and optimum searches) across benchmark runs — figures that sweep
overlapping (app, workload, seed) points then share completed cells —
``REPRO_SWEEP_PARALLEL=<n>`` to fan cells out over processes, and
``REPRO_SWEEP_BATCH=1`` to evaluate compatible cells as vectorized
batches (byte-identical results either way).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import optimum_store, optimum_total
from repro.sweeps import GridRun, SweepGrid, SweepStore, batch_from_env, run_grid

GRID_DIR = Path(__file__).parent / "grids"


def load_grid(name: str) -> SweepGrid:
    """The sweep grid behind one figure benchmark."""
    return SweepGrid.read(GRID_DIR / f"{name}.json")


def grid_store() -> SweepStore | None:
    """The shared result cache, when ``REPRO_SWEEP_CACHE`` names one."""
    cache_dir = os.environ.get("REPRO_SWEEP_CACHE")
    return SweepStore(cache_dir) if cache_dir else None


def run_figure_grid(
    name: str, *, parallel: int | None = None, batch: bool | None = None
) -> GridRun:
    """Execute a figure's grid through the resumable scheduler."""
    if parallel is None:
        parallel = int(os.environ.get("REPRO_SWEEP_PARALLEL", "1"))
    if batch is None:
        batch = batch_from_env()
    return run_grid(
        load_grid(name), store=grid_store(), parallel=parallel, batch=batch
    )


def figure_optimum(app: str, workload: float) -> float:
    """OPTM total CPU, persisted in the grid cache when one is active."""
    with optimum_store(grid_store()):
        return optimum_total(app, workload)
