"""Fig. 7 — monotonic resource reduction vs. end-to-end response.

(a) CDF of the latency change (normalized to the SLO) caused by random
monotonic reductions, measured with noise: the paper observes latency
*decreasing* (anti-monotone, attributed to transient anomalies) in only
10.2% of TrainTicket and 6.1% of SockShop cases.

(b) example monotone-reduction trajectories in the (resource/optimum,
response/SLO) plane, walking toward the paper's target point (1, 1).
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.baselines import OptimumSearch
from repro.bench import format_series, format_table
from repro.sim import AnalyticalEngine, Allocation

APPS = {"trainticket": 200.0, "sockshop": 550.0, "hotelreservation": 500.0}
N_SAMPLES = 400


def _sample_cdf(app_name: str, workload: float, seed: int):
    app = build_app(app_name)
    engine = AnalyticalEngine(app, seed=seed)
    base_b = AnalyticalEngine(app).bottleneck_allocation(workload)
    rng = np.random.default_rng(seed)
    deltas = []
    for _ in range(N_SAMPLES):
        # Random feasible starting point between 1.1x and 2x the knee.
        start = Allocation(
            {n: base_b[n] * rng.uniform(1.1, 2.0) for n in base_b}
        )
        k = int(rng.integers(2, app.n_services + 1))
        targets = rng.choice(app.n_services, size=k, replace=False)
        frac = rng.uniform(0.08, 0.35)
        reduced = start.reduce(
            [app.service_names[i] for i in targets], frac
        )
        before = engine.observe(start, workload).latency_p95
        after = engine.observe(reduced, workload).latency_p95
        deltas.append((after - before) / app.slo)
    return np.asarray(deltas)


def run_fig07():
    cdf_rows = []
    anti_fracs = {}
    for i, (app_name, wl) in enumerate(APPS.items()):
        deltas = _sample_cdf(app_name, wl, seed=100 + i)
        anti = float((deltas < 0).mean())
        anti_fracs[app_name] = anti
        for q in (5, 25, 50, 75, 95):
            cdf_rows.append(
                [app_name, f"p{q}", round(float(np.percentile(deltas, q)), 4)]
            )
        cdf_rows.append([app_name, "anti-monotone", f"{anti * 100:.1f}%"])

    # Panel (b): one noiseless monotone trajectory per app.
    traj_blocks = []
    for app_name, wl in APPS.items():
        app = build_app(app_name)
        engine = AnalyticalEngine(app)
        opt = OptimumSearch(engine, restarts=1, seed=0).find(wl)
        alloc = app.generous_allocation(wl)
        xs, ys = [], []
        rng = np.random.default_rng(0)
        for _ in range(12):
            xs.append(alloc.total() / opt.total_cpu)
            ys.append(engine.noiseless_latency(alloc, wl) / app.slo)
            k = int(rng.integers(2, app.n_services))
            targets = rng.choice(app.n_services, size=k, replace=False)
            trial = alloc.reduce(
                [app.service_names[i] for i in targets], 0.12
            )
            if engine.noiseless_latency(trial, wl) > app.slo:
                break
            alloc = trial
        traj_blocks.append(
            format_series(
                f"Fig. 7b trajectory — {app_name}",
                [round(x, 3) for x in xs],
                [round(y, 3) for y in ys],
                "resource/optimum",
                "response/SLO",
            )
        )
    return cdf_rows, anti_fracs, traj_blocks


def test_fig07_monotonic(benchmark):
    cdf_rows, anti_fracs, traj_blocks = benchmark.pedantic(
        run_fig07, rounds=1, iterations=1
    )
    text = format_table(
        ["app", "quantile", "latency_change/SLO"],
        cdf_rows,
        title="Fig. 7a — CDF of latency change under monotonic reduction "
        "(paper anti-monotone: 10.2% TT, 6.1% SS)",
    )
    emit("fig07_monotonic", text + "\n\n" + "\n\n".join(traj_blocks))
    # Shape claims: reductions mostly increase latency; the anti-monotone
    # tail is a small minority, as in the paper.
    for app_name, anti in anti_fracs.items():
        assert anti < 0.25, f"{app_name}: too many anti-monotone cases"
    assert any(anti > 0.0 for anti in anti_fracs.values())
