"""End-to-end DES behaviour: conservation, throttling signatures, tracing."""

import numpy as np
import pytest

from repro.apps import build_app
from repro.sim.des import DESEngine, MicroserviceSimulator, SimConfig
from repro.sim.types import Allocation


def run_sim(tiny_app, alloc, rps=150.0, duration=4.0, seed=0, **cfg):
    config = SimConfig(**cfg) if cfg else SimConfig()
    sim = MicroserviceSimulator(tiny_app, alloc, rps, config=config, seed=seed)
    metrics = sim.run(duration)
    return sim, metrics


class TestConservation:
    def test_requests_conserved(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim, _ = run_sim(tiny_app, alloc)
        assert sim.window.started == sim.window.completed + sim.in_flight
        assert sim.window.completed > 0

    def test_throughput_matches_offered_load_poisson(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim, m = run_sim(
            tiny_app, alloc, rps=150.0, duration=6.0, arrivals="poisson"
        )
        assert sim.window.started / 6.0 == pytest.approx(150.0, rel=0.1)

    def test_throughput_matches_offered_load_mmpp(self, tiny_app):
        """MMPP preserves the mean rate, averaged across seeds."""
        alloc = tiny_app.generous_allocation(150.0)
        rates = []
        for seed in range(4):
            sim, _ = run_sim(tiny_app, alloc, rps=150.0, duration=6.0, seed=seed)
            rates.append(sim.window.started / 6.0)
        assert np.mean(rates) == pytest.approx(150.0, rel=0.2)

    def test_deterministic_by_seed(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        _, m1 = run_sim(tiny_app, alloc, seed=42)
        _, m2 = run_sim(tiny_app, alloc, seed=42)
        assert m1.latency_p95 == pytest.approx(m2.latency_p95)
        _, m3 = run_sim(tiny_app, alloc, seed=43)
        assert m1.latency_p95 != pytest.approx(m3.latency_p95)


class TestThrottlingSignatures:
    def test_no_throttle_with_ample_cpu(self, tiny_app):
        alloc = tiny_app.uniform_allocation(8.0)
        _, m = run_sim(tiny_app, alloc)
        assert all(s.throttle_seconds == 0.0 for s in m.services.values())

    def test_squeezed_service_throttles(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0).with_value("front", 0.05)
        _, m = run_sim(tiny_app, alloc)
        assert m.services["front"].throttle_seconds > 0.0

    def test_latency_monotone_in_allocation(self, tiny_app):
        """Squeezing the front service can only hurt p95 (statistically)."""
        generous = tiny_app.generous_allocation(150.0)
        squeezed = generous.with_value("front", 0.08)
        _, m_gen = run_sim(tiny_app, generous, duration=6.0, seed=7)
        _, m_sq = run_sim(tiny_app, squeezed, duration=6.0, seed=7)
        assert m_sq.latency_p95 > m_gen.latency_p95

    def test_utilization_rises_when_squeezed(self, tiny_app):
        generous = tiny_app.generous_allocation(150.0)
        squeezed = generous.with_value("front", generous["front"] / 8)
        _, m_gen = run_sim(tiny_app, generous, seed=3)
        _, m_sq = run_sim(tiny_app, squeezed, seed=3)
        assert (
            m_sq.services["front"].utilization
            > m_gen.services["front"].utilization
        )

    def test_usage_p90_within_alloc(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        _, m = run_sim(tiny_app, alloc)
        for name, svc in m.services.items():
            assert svc.usage_p90_cores <= alloc[name] + 1e-9


class TestWarmup:
    def test_warmup_resets_measurement(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        cfg = SimConfig(arrivals="poisson")
        sim = MicroserviceSimulator(tiny_app, alloc, 150.0, config=cfg, seed=1)
        sim.run(4.0, warmup=2.0)
        # Roughly 4 seconds of completions, not 6.
        assert sim.window.completed / 4.0 == pytest.approx(150.0, rel=0.2)

    def test_validation(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim = MicroserviceSimulator(tiny_app, alloc, 150.0)
        with pytest.raises(ValueError):
            sim.run(0.0)
        with pytest.raises(ValueError):
            sim.run(1.0, warmup=-1.0)
        with pytest.raises(ValueError):
            MicroserviceSimulator(tiny_app, alloc, 0.0)


class TestTracing:
    def test_spans_recorded_when_enabled(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim, _ = run_sim(tiny_app, alloc, trace=True)
        assert sim.traces is not None
        assert len(sim.traces.spans) > 0
        span = sim.traces.spans[0]
        assert span.duration >= span.cpu_time - 1e-9
        assert span.queue_wait >= 0.0

    def test_spans_cover_planned_services(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim, _ = run_sim(tiny_app, alloc, trace=True, seed=5)
        services = {s.service for s in sim.traces.spans}
        assert "front" in services
        assert "db" in services

    def test_tracing_off_by_default(self, tiny_app):
        alloc = tiny_app.generous_allocation(150.0)
        sim, _ = run_sim(tiny_app, alloc)
        assert sim.traces is None


class TestDESEngine:
    def test_environment_protocol(self, tiny_app):
        engine = DESEngine(tiny_app, sim_seconds=3.0, warmup_seconds=1.0, seed=0)
        alloc = tiny_app.generous_allocation(150.0)
        m = engine.observe(alloc, 150.0, interval=120.0)
        assert m.latency_p95 > 0
        assert set(m.services) == set(tiny_app.service_names)

    def test_zero_workload_silent(self, tiny_app):
        engine = DESEngine(tiny_app)
        m = engine.observe(tiny_app.uniform_allocation(1.0), 0.0)
        assert m.latency_p95 == 0.0
        assert all(s.utilization == 0.0 for s in m.services.values())

    def test_throttle_scaled_to_interval(self, tiny_app):
        alloc = tiny_app.generous_allocation(200.0).with_value("front", 0.05)
        short = DESEngine(tiny_app, sim_seconds=3.0, warmup_seconds=0.5, seed=1)
        m = short.observe(alloc, 200.0, interval=120.0)
        m2 = short.observe(alloc, 200.0, interval=240.0)
        # Same sim length; throttle scaled by interval ratio (statistically).
        assert m2.services["front"].throttle_seconds > 0
        assert m.services["front"].throttle_seconds > 0

    def test_speed_knob(self, tiny_app):
        engine = DESEngine(tiny_app, sim_seconds=3.0, seed=2)
        engine.set_cpu_speed(0.5)
        assert engine.cpu_speed == 0.5
        with pytest.raises(ValueError):
            engine.set_cpu_speed(0.0)

    def test_validation(self, tiny_app):
        with pytest.raises(ValueError):
            DESEngine(tiny_app, sim_seconds=0.0)


class TestBackgroundLoad:
    def test_background_consumes_cpu_without_requests(self):
        """A baseline-bearing app shows usage even at negligible traffic."""
        app = build_app("sockshop")
        alloc = app.generous_allocation(100.0)
        cfg = SimConfig(arrivals="poisson")
        sim = MicroserviceSimulator(app, alloc, 1.0, config=cfg, seed=3)
        m = sim.run(4.0)
        usage = sum(s.usage_cores for s in m.services.values())
        baseline_total = float(app.baseline_array().sum())
        # Usage is in the ballpark of the configured baseline demand.
        assert usage > baseline_total * 0.5

    def test_background_off(self):
        app = build_app("sockshop")
        alloc = app.generous_allocation(100.0)
        cfg = SimConfig(arrivals="poisson", background=False)
        sim = MicroserviceSimulator(app, alloc, 1.0, config=cfg, seed=3)
        m = sim.run(4.0)
        usage = sum(s.usage_cores for s in m.services.values())
        baseline_total = float(app.baseline_array().sum())
        assert usage < baseline_total * 0.5

    def test_baseline_starvation_throttles(self):
        """Squeezing a service below its baseline demand throttles it even
        with no request traffic at all."""
        app = build_app("trainticket")
        alloc = app.generous_allocation(50.0).with_value("seat", 0.02)
        cfg = SimConfig(arrivals="poisson")
        sim = MicroserviceSimulator(app, alloc, 1.0, config=cfg, seed=4)
        m = sim.run(4.0)
        assert m.services["seat"].throttle_seconds > 0.0

    def test_request_conservation_with_background(self, tiny_app):
        """Background jobs never leak into request accounting."""
        app = build_app("sockshop")
        alloc = app.generous_allocation(150.0)
        sim = MicroserviceSimulator(app, alloc, 150.0, seed=5)
        sim.run(4.0)
        assert sim.window.started == sim.window.completed + sim.in_flight

    def test_background_interval_validation(self):
        with pytest.raises(ValueError):
            SimConfig(background_interval=0.0)
