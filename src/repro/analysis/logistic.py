"""Logistic regression from scratch (gradient descent + L2).

Second classifier for the Table 1 feature study; linear decision
boundaries make it a useful contrast to the tree on these 2-5 feature
problems.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression with feature standardization."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iter: int = 500,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0 or n_iter < 1 or l2 < 0:
            raise ValueError("invalid hyperparameters")
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("bad shapes")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("labels must be binary {0, 1}")
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma < 1e-12] = 1.0
        Z = (X - self._mu) / self._sigma
        n, d = Z.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            p = _sigmoid(Z @ w + b)
            err = p - y
            grad_w = Z.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("fit() before predict_proba()")
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self._mu) / self._sigma
        return _sigmoid(Z @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y)
        return float((self.predict(X) == y).mean())
