"""From-scratch classifiers and the Table 1 pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    FEATURE_NAMES,
    FEATURE_SUBSETS,
    DecisionTreeClassifier,
    LogisticRegression,
    generate_dataset,
    run_scenario,
    table1,
)
from repro.apps import build_app


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(5.0, 1.0, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    return X, y


class TestDecisionTree:
    def test_fits_separable(self):
        X, y = separable_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.score(X, y) >= 0.99

    def test_depth_limit(self):
        X, y = separable_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_constant_labels_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        y = np.ones(50, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0
        assert np.all(tree.predict(X) == 1)

    def test_predict_proba_bounds(self):
        X, y = separable_data()
        tree = DecisionTreeClassifier().fit(X, y)
        proba = tree.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_validation(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(RuntimeError):
            tree.predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([0, 1, 2]))  # non-binary
        with pytest.raises(ValueError):
            tree.fit(np.zeros(3), np.array([0, 1, 0]))  # 1-D X
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_predict_shape_check(self):
        X, y = separable_data()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((4, 5)))

    @given(
        n=st.integers(min_value=12, max_value=60),
        shift=st.floats(min_value=3.0, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_separable_always_learned(self, n, shift):
        rng = np.random.default_rng(n)
        X = np.vstack(
            [rng.normal(0, 0.5, (n, 1)), rng.normal(shift, 0.5, (n, 1))]
        )
        y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
        tree = DecisionTreeClassifier(max_depth=2, min_samples_leaf=1).fit(X, y)
        assert tree.score(X, y) == 1.0


class TestLogisticRegression:
    def test_fits_separable(self):
        X, y = separable_data()
        clf = LogisticRegression().fit(X, y)
        assert clf.score(X, y) >= 0.98

    def test_proba_bounds(self):
        X, y = separable_data()
        clf = LogisticRegression().fit(X, y)
        p = clf.predict_proba(X)
        assert np.all((p > 0) & (p < 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        clf = LogisticRegression()
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 2)), np.array([0.0, 0.5, 1.0]))

    def test_constant_feature_no_nan(self):
        X = np.ones((40, 2))
        X[:20, 0] = 0.0
        y = np.concatenate([np.zeros(20, dtype=int), np.ones(20, dtype=int)])
        clf = LogisticRegression().fit(X, y)
        assert np.isfinite(clf.predict_proba(X)).all()


class TestDataset:
    def test_shapes_and_labels(self):
        app = build_app("sockshop")
        data = generate_dataset(app, ("carts",), n_intervals=20, seed=0)
        assert data.X.shape == (20 * app.n_services, len(FEATURE_NAMES))
        assert set(np.unique(data.y)) <= {0, 1}
        assert data.y.sum() > 0  # some positives

    def test_split(self):
        app = build_app("sockshop")
        data = generate_dataset(app, ("carts",), n_intervals=20, seed=0)
        X_tr, y_tr, X_te, y_te = data.split(test_fraction=0.25, seed=1)
        assert X_tr.shape[0] + X_te.shape[0] == data.X.shape[0]
        assert X_te.shape[0] == pytest.approx(0.25 * data.X.shape[0], abs=1)

    def test_validation(self):
        app = build_app("sockshop")
        with pytest.raises(ValueError):
            generate_dataset(app, ("zzz",), n_intervals=5)
        with pytest.raises(ValueError):
            generate_dataset(app, (), n_intervals=5)
        data = generate_dataset(app, ("carts",), n_intervals=5)
        with pytest.raises(ValueError):
            data.split(test_fraction=1.5)


class TestTable1:
    def test_scenario_beats_majority_baseline(self):
        result = run_scenario("sockshop", ("carts",), n_intervals=60, seed=0)
        # Majority class (not-bottleneck) would score ~(1 - 1/13 * 0.5).
        assert result.accuracy > 0.96

    def test_util_throttle_among_best_subsets(self):
        result = run_scenario(
            "sockshop", ("carts", "orders"), n_intervals=60, seed=1,
            compare_subsets=True,
        )
        accs = result.subset_accuracies
        assert accs["util+throttle"] >= accs["memory"] - 1e-9
        assert accs["util+throttle"] >= 0.95

    def test_all_rows_accurate(self):
        rows = table1(n_intervals=40, seed=0)
        assert len(rows) == 6
        for row in rows:
            assert row.accuracy >= 0.90  # paper band: 94-100%

    def test_unknown_subset(self):
        with pytest.raises(KeyError):
            run_scenario("sockshop", ("carts",), feature_subset="zzz")

    def test_feature_subset_indices_valid(self):
        for cols in FEATURE_SUBSETS.values():
            assert all(0 <= c < len(FEATURE_NAMES) for c in cols)


class TestDESDataset:
    def test_des_dataset_shapes_and_learnability(self):
        """Real-span features from the DES still separate bottlenecked
        services (smaller but higher-fidelity study)."""
        from repro.analysis import generate_dataset_des

        app = build_app("sockshop")
        data = generate_dataset_des(
            app, ("carts",), workload_rps=150.0, n_intervals=12,
            sim_seconds=3.0, seed=2,
        )
        assert data.X.shape == (12 * app.n_services, len(FEATURE_NAMES))
        assert data.y.sum() > 0
        X_tr, y_tr, X_te, y_te = data.split(seed=3)
        tree = DecisionTreeClassifier(max_depth=4)
        tree.fit(X_tr[:, (0, 1)], y_tr)  # util + throttle
        # Beats always-negative by an observable margin.
        baseline = 1.0 - y_te.mean()
        assert tree.score(X_te[:, (0, 1)], y_te) >= baseline - 1e-9

    def test_des_dataset_validation(self):
        from repro.analysis import generate_dataset_des

        app = build_app("sockshop")
        with pytest.raises(ValueError):
            generate_dataset_des(app, ("zzz",), n_intervals=2)
        with pytest.raises(ValueError):
            generate_dataset_des(app, (), n_intervals=2)
