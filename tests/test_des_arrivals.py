"""Arrival processes: mean-rate preservation and burstiness."""

import numpy as np
import pytest

from repro.sim.des.arrivals import MMPPArrivals, PoissonArrivals


def mean_rate(process, n: int = 20000) -> float:
    total = sum(process.next_gap() for _ in range(n))
    return n / total


class TestPoisson:
    def test_mean_rate(self):
        p = PoissonArrivals(100.0, np.random.default_rng(0))
        assert mean_rate(p) == pytest.approx(100.0, rel=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, np.random.default_rng(0))


class TestMMPP:
    def test_mean_rate_preserved(self):
        p = MMPPArrivals(100.0, np.random.default_rng(1), burst_factor=4.0,
                         burst_fraction=0.2)
        assert mean_rate(p, 40000) == pytest.approx(100.0, rel=0.05)

    def test_burstier_than_poisson(self):
        """Squared CV of inter-arrival gaps must exceed 1 (Poisson)."""
        rng = np.random.default_rng(2)
        p = MMPPArrivals(100.0, rng, burst_factor=6.0, burst_fraction=0.15)
        gaps = np.asarray([p.next_gap() for _ in range(40000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            MMPPArrivals(0.0, rng)
        with pytest.raises(ValueError):
            MMPPArrivals(10.0, rng, burst_factor=0.5)
        with pytest.raises(ValueError):
            MMPPArrivals(10.0, rng, burst_fraction=0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(10.0, rng, dwell=0.0)
