"""Table 1 — bottleneck-service classification accuracy.

Paper: with CPU utilization + CPU throttling time as features, a
classifier identifies intentionally-bottlenecked services with 94.18-100%
accuracy across six (app, bottleneck-set) scenarios; these two features
beat the alternatives (memory, Jaeger self_time/duration).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis import TABLE1_SCENARIOS, run_scenario
from repro.bench import format_table

PAPER_ACCURACY = (94.18, 96.2, 100.0, 98.3, 97.8, 95.6)


def run_table1():
    results = []
    for i, (app, services) in enumerate(TABLE1_SCENARIOS):
        results.append(
            run_scenario(
                app,
                services,
                n_intervals=120,
                seed=10 + i,
                compare_subsets=(i == 2),  # one full feature comparison
            )
        )
    return results


def test_table1_classification(benchmark):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = [
        [
            r.app_name,
            ", ".join(r.bottleneck_services),
            f"{r.accuracy * 100:.1f}%",
            f"{paper:.1f}%",
        ]
        for r, paper in zip(results, PAPER_ACCURACY)
    ]
    text = format_table(
        ["app", "bottleneck services", "accuracy", "paper"],
        rows,
        title="Table 1 — bottleneck classification with util+throttle features",
    )
    subset = next(r for r in results if r.subset_accuracies)
    subset_rows = [
        [name, f"{acc * 100:.1f}%"]
        for name, acc in sorted(
            subset.subset_accuracies.items(), key=lambda kv: -kv[1]
        )
    ]
    text += "\n\n" + format_table(
        ["feature subset", "accuracy"],
        subset_rows,
        title=f"Feature-subset comparison ({subset.app_name}, "
        f"{','.join(subset.bottleneck_services)})",
    )
    emit("table1_classification", text)
    # Paper band: 94-100%.
    for r in results:
        assert r.accuracy >= 0.92, (r.app_name, r.accuracy)
    # util+throttle is at least as good as the uninformative memory feature.
    accs = subset.subset_accuracies
    assert accs["util+throttle"] >= accs["memory"] - 1e-9
