"""Fig. 16 — sensitivity to α (β = 0.3).

Paper: small α is too aggressive — many SLO violations force reverts to
inefficient allocations; large α slows PEMA down prematurely with few
violations but sub-optimal resource.  Both extremes yield worse resource
efficiency than the middle; violations decrease monotonically-ish with α.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.bench import format_table, optimum_total, pema_run
from repro.core import PEMAConfig

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
SCENARIOS = {"trainticket": 225.0, "sockshop": 700.0}
ITERS = 50
RUNS = 3


def run_fig16():
    rows = []
    curves: dict[str, dict[str, list[float]]] = {}
    for app_name, wl in SCENARIOS.items():
        opt = optimum_total(app_name, wl)
        res_norm, viols = [], []
        for alpha in ALPHAS:
            config = PEMAConfig(alpha=alpha, beta=0.3)
            totals, violations = [], []
            for r in range(RUNS):
                run = pema_run(
                    app_name, wl, ITERS, config=config, seed=700 + r
                )
                totals.append(run.result.settled_total())
                violations.append(run.result.violation_rate() * 100)
            res_norm.append(float(np.mean(totals)) / opt)
            viols.append(float(np.mean(violations)))
            rows.append(
                [
                    app_name,
                    alpha,
                    round(res_norm[-1], 2),
                    round(viols[-1], 1),
                ]
            )
        curves[app_name] = {"resource": res_norm, "violations": viols}
    return rows, curves


def test_fig16_alpha_sensitivity(benchmark):
    rows, curves = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    emit(
        "fig16_alpha_sensitivity",
        format_table(
            ["app", "alpha", "resource/optimum", "slo_violations_%"],
            rows,
            title="Fig. 16 — α sweep at β=0.3 (paper: extremes are "
            "sub-optimal; violations fall as α grows)",
        ),
    )
    for app_name, c in curves.items():
        res = c["resource"]
        vio = c["violations"]
        # Aggressive extreme (α=0.1) violates far more than conservative.
        assert vio[0] > vio[-1], app_name
        # The middle does at least as well as the aggressive extreme.
        assert min(res[1:4]) <= res[0] + 0.05, app_name
