"""Discrete-event microservice simulator with explicit CFS throttling."""

from repro.sim.des.arrivals import (
    MMPPArrivals,
    PoissonArrivals,
    mmpp_times,
    poisson_times,
)
from repro.sim.des.engine import DESEngine
from repro.sim.des.events import Event, EventKind, EventQueue, FastEventQueue
from repro.sim.des.metrics import MeasurementWindow
from repro.sim.des.reference import ReferenceSimulator
from repro.sim.des.request import CompiledPlan, RequestState, compile_plans
from repro.sim.des.server import CpuJob, ServiceServer
from repro.sim.des.simulator import MicroserviceSimulator, SimConfig
from repro.sim.des.tracing import Span, TraceLog
from repro.sim.des.variates import spawn_streams

__all__ = [
    "DESEngine",
    "MicroserviceSimulator",
    "ReferenceSimulator",
    "SimConfig",
    "ServiceServer",
    "CpuJob",
    "EventQueue",
    "FastEventQueue",
    "Event",
    "EventKind",
    "PoissonArrivals",
    "MMPPArrivals",
    "poisson_times",
    "mmpp_times",
    "spawn_streams",
    "MeasurementWindow",
    "RequestState",
    "CompiledPlan",
    "compile_plans",
    "Span",
    "TraceLog",
]
