"""Ablation — the design choices DESIGN.md calls out, measured.

Four variants of PEMA on SockShop @ 700 rps:

* full            — the paper's Algorithm 1 as evaluated;
* no-explore      — Eqn. (8) disabled (A = B = 0): risks settling at
                    sub-optimal allocations (§3.3 "escaping sub-optimum");
* no-filter       — throttle filter + Eqn. (5) guidance disabled (uniform
                    selection): reduces bottlenecked services, more
                    violations;
* no-mov-avg      — K = 1 (Eqns. 10-11 reduced to 3-4): transient dips
                    trigger over-reduction (§3.5);
* static-thresh   — Eqns. (6)-(7) disabled: thresholds stay at the
                    conservative initial values, selection starves.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.bench import format_table, optimum_total, pema_run
from repro.core import PEMAConfig

WORKLOAD = 700.0
ITERS = 60
RUNS = 4

VARIANTS: dict[str, PEMAConfig] = {
    "full": PEMAConfig(),
    "no-explore": PEMAConfig(explore_a=0.0, explore_b=0.0),
    "no-filter": PEMAConfig(use_bottleneck_filter=False),
    "no-mov-avg": PEMAConfig(moving_average_window=1),
    "static-thresh": PEMAConfig(use_dynamic_thresholds=False),
}


def run_ablation():
    opt = optimum_total("sockshop", WORKLOAD)
    out = {}
    for label, config in VARIANTS.items():
        totals, viols = [], []
        for r in range(RUNS):
            run = pema_run(
                "sockshop", WORKLOAD, ITERS, config=config, seed=900 + r
            )
            totals.append(run.result.settled_total())
            viols.append(run.result.violation_rate() * 100)
        out[label] = (
            float(np.mean(totals)) / opt,
            float(np.mean(viols)),
        )
    return out


def test_ablation_design(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(ratio, 3), round(viol, 1)]
        for label, (ratio, viol) in out.items()
    ]
    emit(
        "ablation_design",
        format_table(
            ["variant", "resource/optimum", "violations_%"],
            rows,
            title="Ablation — PEMA design choices on SockShop @ 700 rps "
            f"({RUNS} seeds x {ITERS} iterations)",
        ),
    )
    full_ratio, full_viol = out["full"]
    # The full design converges near the optimum.
    assert full_ratio < 1.35
    # Frozen thresholds starve the candidate set: the controller stalls at
    # (or near) the generous allocation — dynamic thresholds are load-
    # bearing, exactly why the paper ratchets them (Eqns. 6-7).
    assert out["static-thresh"][0] > full_ratio + 0.3
    # The other variants still converge; the full design stays competitive.
    for label in ("no-explore", "no-filter", "no-mov-avg"):
        assert out[label][0] < 1.5, label
    competitive = min(out[label][0] for label in
                      ("no-explore", "no-filter", "no-mov-avg"))
    assert full_ratio <= competitive + 0.15
