"""RULE — commercial rule-based autoscaling baseline (§4.2 and §5).

The paper compares PEMA against "Kubernetes' rule-based resource scaling":
utilization-threshold scaling in the style of the HPA/VPA and Google
Autopilot's percentile rules.  Two modes are provided:

* ``"utilization"`` (default) — keep every service's CPU utilization at a
  single app-wide target.  Because bottleneck utilizations differ per
  service (≈10-25%, Fig. 8a) the target must be set to the *lowest* safe
  level, which is precisely why rule-based scaling over-provisions
  (paper §2.3) — the headroom that lets PEMA save up to 33%.
* ``"vpa"`` — Kubernetes-VPA style: allocate the 90th percentile of
  recent fine-grained usage samples plus 15% overprovision (the rule the
  paper quotes in §5 for the Kubernetes autoscaler [20]).

Scaling up is immediate; scaling down is damped (HPA stabilization
window) to avoid flapping.
"""

from __future__ import annotations

from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["RuleBasedAutoscaler"]


class RuleBasedAutoscaler:
    """Utilization/percentile rule-based vertical autoscaler."""

    def __init__(
        self,
        initial_allocation: Allocation,
        *,
        mode: str = "utilization",
        target_utilization: float = 0.10,
        overprovision: float = 0.15,
        scale_down_limit: float = 0.15,
        min_cpu: float = 0.05,
        max_cpu: float = 32.0,
    ) -> None:
        if mode not in ("utilization", "vpa"):
            raise ValueError(f"unknown mode {mode!r}")
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if overprovision < 0:
            raise ValueError("overprovision must be >= 0")
        if not 0 < scale_down_limit <= 1:
            raise ValueError("scale_down_limit must be in (0, 1]")
        if min_cpu <= 0 or max_cpu <= min_cpu:
            raise ValueError("need 0 < min_cpu < max_cpu")
        self.mode = mode
        self.target_utilization = target_utilization
        self.overprovision = overprovision
        self.scale_down_limit = scale_down_limit
        self.min_cpu = min_cpu
        self.max_cpu = max_cpu
        self._allocation = initial_allocation

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    def decide(self, metrics: IntervalMetrics) -> Allocation:
        """Apply the scaling rule to every service independently."""
        new_values: dict[str, float] = {}
        for name in self._allocation:
            svc = metrics.services[name]
            current = self._allocation[name]
            if self.mode == "utilization":
                desired = (svc.usage_cores / self.target_utilization) * (
                    1.0 + self.overprovision
                )
            else:  # vpa
                desired = svc.usage_p90_cores * (1.0 + self.overprovision)
            if desired < current:
                # HPA-style stabilization: bounded downscale per interval.
                desired = max(desired, current * (1.0 - self.scale_down_limit))
            new_values[name] = min(max(desired, self.min_cpu), self.max_cpu)
        self._allocation = Allocation(new_values)
        return self._allocation
