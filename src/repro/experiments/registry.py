"""String-keyed factory registries for the declarative experiment layer.

Every pluggable piece of an experiment — the performance-model backend,
the autoscaler under test, the workload trace, the mid-run hooks — is
resolved from a registry by a short string key, so an
:class:`~repro.experiments.spec.ExperimentSpec` is fully described by
plain JSON data.  Extensions register new factories with
:meth:`Registry.register`; unknown keys fail with the list of known ones
so a typo in a spec file is a one-line diagnosis.

Factory call conventions (``params`` is the spec's params dict):

``ENGINES``
    ``factory(app, seed=..., **params) -> Environment``
``AUTOSCALERS``
    ``factory(app, start, slo, seed=..., **params) -> Autoscaler``
``WORKLOADS``
    ``factory(**params) -> WorkloadTrace``
``HOOKS``
    ``factory(**params) -> Callable[[int, ControlLoop], None]``
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = ["Registry", "ENGINES", "AUTOSCALERS", "WORKLOADS", "HOOKS"]


class Registry:
    """A named mapping from string keys to factory callables.

    Every entry carries a one-line human-readable description (explicit
    ``description=`` at registration, else the first line of the
    factory's docstring) — the ``repro registry`` CLI listing surfaces
    them, so a spec author can discover every kind without reading
    source.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self._factories: dict[str, Callable[..., Any]] = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str | None = None,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator."""
        if factory is None:
            return lambda fn: self.register(name, fn, description=description)
        if not name:
            raise ValueError(f"{self.label} key must be a non-empty string")
        if name in self._factories:
            raise ValueError(f"{self.label} {name!r} is already registered")
        if description is None:
            doc = (factory.__doc__ or "").strip()
            description = doc.splitlines()[0].strip() if doc else ""
        self._factories[name] = factory
        self._descriptions[name] = description
        return factory

    def get(self, name: str) -> Callable[..., Any]:
        """The factory for ``name``; KeyError names the alternatives."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise KeyError(
                f"unknown {self.label} {name!r} (known: {known})"
            ) from None

    def build(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)

    def describe(self, name: str) -> str:
        """The one-line description of ``name`` (KeyError when unknown)."""
        self.get(name)
        return self._descriptions[name]

    def entries(self) -> list[tuple[str, str]]:
        """Sorted ``(name, description)`` pairs — the CLI listing's rows."""
        return [(name, self._descriptions[name]) for name in self.names()]

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


ENGINES = Registry("engine backend")
AUTOSCALERS = Registry("autoscaler")
WORKLOADS = Registry("workload trace")
HOOKS = Registry("hook")


# -- engine backends -----------------------------------------------------------
@ENGINES.register("analytical")
def _analytical_engine(app, *, seed: int = 0, **params):
    """Closed-form Gamma/CFS latency model with measurement noise (default)."""
    from repro.sim import AnalyticalEngine, NoiseModel

    noise = params.pop("noise", None)
    if noise is not None:
        # Declarative noise override, e.g. {"sigma": 0, "anomaly_prob": 0}
        # for the noise-free scans of Fig. 10.
        noise = NoiseModel(**noise)
    return AnalyticalEngine(app, seed=seed, noise=noise, **params)


@ENGINES.register("des")
def _des_engine(app, *, seed: int = 0, **params):
    """Request-level discrete-event simulator (validation-grade)."""
    from repro.sim.des.engine import DESEngine
    from repro.sim.des.simulator import SimConfig

    config = params.pop("config", None)
    if config is not None:
        # Declarative simulator tunables, e.g. {"arrivals": "poisson"}.
        config = SimConfig(**config)
    return DESEngine(app, seed=seed, config=config, **params)


# -- autoscalers / baselines ---------------------------------------------------
@AUTOSCALERS.register("pema")
def _pema(app, start, slo, *, seed: int = 0, **params):
    """The paper's PEMA controller (Algorithm 1); params are PEMAConfig fields."""
    from repro.core import PEMAConfig, PEMAController

    config = PEMAConfig(**params) if params else None
    return PEMAController(app.service_names, slo, start, config, seed=seed)


@AUTOSCALERS.register("rule")
def _rule(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    """Threshold rule baseline (K8s VPA-style utilization/p90 scaling)."""
    from repro.baselines import RuleBasedAutoscaler

    return RuleBasedAutoscaler(start, **params)


@AUTOSCALERS.register("static")
def _static(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    """Fixed allocation: the start, or a pinned bottleneck_rps allocation."""
    from repro.baselines import StaticAllocator

    bottleneck_rps = params.pop("bottleneck_rps", None)
    scale = params.pop("scale", 1.0)
    if params:
        raise TypeError(f"unknown static autoscaler params: {sorted(params)}")
    if bottleneck_rps is not None:
        # Pin the engine-model bottleneck allocation at a declared
        # workload (scaled), e.g. the fixed-allocation scans of Fig. 10 —
        # instead of the headroom-scaled generous start.
        from repro.sim import AnalyticalEngine

        start = AnalyticalEngine(app).bottleneck_allocation(
            float(bottleneck_rps)
        )
        if scale != 1.0:
            start = start.scale(scale)
    elif scale != 1.0:
        raise TypeError("static 'scale' needs 'bottleneck_rps'")
    return StaticAllocator(start)


@AUTOSCALERS.register("optimum")
def _optimum(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    """OPTM baseline: pins the cached noiseless-optimum allocation per workload."""
    from repro.baselines import OptimumAllocator

    return OptimumAllocator(app, start, **params)


@AUTOSCALERS.register("pid")
def _pid(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    """PID feedback baseline: multiplicative CPU scaling on normalized SLO error."""
    from repro.baselines import PIDController

    return PIDController(start, slo, **params)


@AUTOSCALERS.register("brownout")
def _brownout(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    """Brownout baseline: fixed CPU, a service-level dimmer degrades to hold the SLO."""
    from repro.baselines import BrownoutController

    return BrownoutController(start, slo, **params)


@AUTOSCALERS.register("workload_aware_pema")
def _workload_aware_pema(app, start, slo, *, seed: int = 0, **params):
    """Dynamic-workload-range manager (S3.4): range-tree of PEMA processes."""
    from repro.core import PEMAConfig, WorkloadAwarePEMA

    start_rps = params.pop("start_rps", None)
    if start_rps is not None:
        # The dynamic-range figures start from the generous allocation of
        # a declared band-high workload, not of the trace's first rate.
        start = app.generous_allocation(float(start_rps))
    config = params.pop("config", None)
    if config is not None:
        config = PEMAConfig(**config)
    return WorkloadAwarePEMA(
        app.service_names, slo, start, config=config, seed=seed, **params
    )


# -- workload traces -----------------------------------------------------------
def _nested_trace(data, what: str):
    """Build a nested ``{"kind": ..., "params": ...}`` workload reference.

    Shared by the composing kinds (``noisy``/``phased``/``replay``) so a
    misspelled key inside the reference fails loudly instead of silently
    building the all-defaults trace.
    """
    try:
        fields = set(data)
    except TypeError:
        raise TypeError(f"{what} must be a {{'kind': ..., 'params': ...}} "
                        f"mapping: {data!r}") from None
    extra = fields - {"kind", "params"}
    if extra:
        raise TypeError(f"unknown {what} fields: {sorted(extra)}")
    if "kind" not in data:
        raise TypeError(f"{what} needs 'kind'")
    return WORKLOADS.build(data["kind"], **data.get("params", {}))


@WORKLOADS.register("constant")
def _constant(**params):
    """Fixed offered load: {"rps": ...} (the single-workload figures)."""
    from repro.workload import ConstantWorkload

    return ConstantWorkload(**params)


@WORKLOADS.register("step")
def _step(**params):
    """Piecewise-constant load: {"steps": [[t_start, rps], ...]}."""
    from repro.workload import StepWorkload

    steps = [tuple(s) for s in params.pop("steps")]
    return StepWorkload(steps, **params)


@WORKLOADS.register("ramp")
def _ramp(**params):
    """Linear ramp: {"start_rps", "end_rps", "duration"} seconds."""
    from repro.workload import RampWorkload

    return RampWorkload(**params)


@WORKLOADS.register("sinusoid")
def _sinusoid(**params):
    """Sinusoid between {"low"} and {"high"} with the given {"period"}."""
    from repro.workload import SinusoidalWorkload

    return SinusoidalWorkload(**params)


@WORKLOADS.register("burst")
def _burst(**params):
    """Base load plus rectangular bursts: {"base_rps", "bursts": [[t, dur, rps]]}."""
    from repro.workload import BurstWorkload

    bursts = [tuple(b) for b in params.pop("bursts")]
    return BurstWorkload(params.pop("base_rps"), bursts, **params)


@WORKLOADS.register("wikipedia")
def _wikipedia(**params):
    """Synthetic Wikipedia-like diurnal trace scaled to [low_rps, high_rps]."""
    from repro.workload import WikipediaTrace

    return WikipediaTrace(**params)


@WORKLOADS.register("noisy")
def _noisy(**params):
    """Multiplicative jitter around a nested {"base": {"kind": ...}} trace."""
    from repro.workload import NoisyTrace

    return NoisyTrace(_nested_trace(params.pop("base"), "noisy 'base'"), **params)


@WORKLOADS.register("phased")
def _phased(**params):
    """Sequential phases with restarted clocks: {"phases": [{"base", "duration"}]}."""
    from repro.workload import PhasedTrace

    phases = []
    for ph in params.pop("phases"):
        extra = set(ph) - {"base", "duration"}
        if extra:
            raise TypeError(f"unknown phase fields: {sorted(extra)}")
        phases.append(
            (_nested_trace(ph["base"], "phase 'base'"), ph.get("duration"))
        )
    if params:
        raise TypeError(f"unknown phased params: {sorted(params)}")
    return PhasedTrace(phases)


@WORKLOADS.register("flash_crowd")
def _flash_crowd(**params):
    """Multiplicative rate spike over a nested {"base"} trace: {"at", "ramp", "factor", "hold", "decay"}."""
    from repro.faults import FlashCrowdTrace

    return FlashCrowdTrace(
        _nested_trace(params.pop("base"), "flash_crowd 'base'"), **params
    )


@WORKLOADS.register("replay")
def _replay(**params):
    """Long-horizon trace replay: ordered {"segments"}, optional {"loop"}.

    Each segment is ``{"source": {"kind": ..., "params": ...}}`` plus at
    most one of ``"duration"`` (seconds) or ``"hours"``; the last segment
    may omit both (open-ended).  ``{"loop": true}`` wraps time modulo the
    schedule length (every duration must then be bounded) — the Fig. 14
    evaluation mode: replay a finite recording for as long as the run
    needs.
    """
    from repro.workload import ReplaySegment, ReplayTrace

    segment_data = params.pop("segments")
    loop = bool(params.pop("loop", False))
    if params:
        raise TypeError(f"unknown replay params: {sorted(params)}")
    if not isinstance(segment_data, (list, tuple)) or not segment_data:
        raise TypeError("replay needs a non-empty 'segments' list")
    segments = []
    for seg in segment_data:
        extra = set(seg) - {"source", "duration", "hours"}
        if extra:
            raise TypeError(f"unknown replay segment fields: {sorted(extra)}")
        if "source" not in seg:
            raise TypeError("replay segment needs 'source'")
        if "duration" in seg and "hours" in seg:
            raise TypeError(
                "replay segment takes 'duration' or 'hours', not both"
            )
        duration = seg.get("duration")
        if duration is None and "hours" in seg:
            duration = float(seg["hours"]) * 3600.0
        segments.append(
            ReplaySegment(_nested_trace(seg["source"], "replay 'source'"), duration)
        )
    return ReplayTrace(segments, loop=loop)


# -- mid-run hooks -------------------------------------------------------------
@HOOKS.register("set_slo")
def _set_slo_hook(*, at: int, slo: float):
    """Change the autoscaler's SLO at step ``at`` (the Fig. 20 experiment)."""

    def hook(step, loop):
        if step == at:
            loop.autoscaler.set_slo(slo)

    return hook


@HOOKS.register("set_cpu_speed")
def _set_cpu_speed_hook(*, at: int, speed: float):
    """Change the environment's CPU clock at step ``at`` (Fig. 19).

    ``speed`` is relative to nominal (e.g. 1.6 GHz / 1.8 GHz = 0.889).
    """

    def hook(step, loop):
        if step == at:
            loop.environment.set_cpu_speed(speed)

    return hook


@HOOKS.register("service_crash")
def _service_crash_hook(**params):
    """One service's capacity collapses for a window, then recovers: {"at", "duration", "service", "residual"}."""
    from repro.faults import engine_fault_hook

    return engine_fault_hook("service_crash", params)


@HOOKS.register("calibration_drift")
def _calibration_drift_hook(**params):
    """CPU demands drift by a compounding {"rate"} per step: {"at", "service", "every", "until"}."""
    from repro.faults import engine_fault_hook

    return engine_fault_hook("calibration_drift", params)


@HOOKS.register("correlated_surge")
def _correlated_surge_hook(**params):
    """Several services' demands shift at once: {"services", "factor", "at", "duration"}."""
    from repro.faults import engine_fault_hook

    return engine_fault_hook("correlated_surge", params)


@HOOKS.register("metric_dropout")
def _metric_dropout_hook(**params):
    """Service-layer delivery fault: drop the sample for step {"at"}, retransmit next round."""
    from repro.faults import stream_fault_hook

    return stream_fault_hook("metric_dropout", params)


@HOOKS.register("metric_duplicate")
def _metric_duplicate_hook(**params):
    """Service-layer delivery fault: deliver the sample for step {"at"} twice."""
    from repro.faults import stream_fault_hook

    return stream_fault_hook("metric_duplicate", params)


@HOOKS.register("metric_delay")
def _metric_delay_hook(**params):
    """Service-layer delivery fault: deliver step {"at"}'s sample {"rounds"} rounds late."""
    from repro.faults import stream_fault_hook

    return stream_fault_hook("metric_delay", params)
