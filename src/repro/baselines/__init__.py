"""Benchmark resource-allocation strategies: OPTM, RULE, static."""

from repro.baselines.optm import OptimumResult, OptimumSearch
from repro.baselines.rule import RuleBasedAutoscaler, RuleBatch
from repro.baselines.static import StaticAllocator

__all__ = [
    "OptimumSearch",
    "OptimumResult",
    "RuleBasedAutoscaler",
    "RuleBatch",
    "StaticAllocator",
]
