#!/usr/bin/env python
"""Request-level (discrete-event) simulation with CFS throttling.

Drops below the analytical model: simulates individual requests fanning
out through SockShop's services, explicit 100 ms CFS quota periods, and
throttle events — then shows the same bottleneck signatures the paper
measures (Fig. 8) emerging from first principles, plus Jaeger-style spans.

Run:  python examples/request_level_simulation.py
"""

import numpy as np

from repro import AnalyticalEngine, build_app
from repro.sim.des import MicroserviceSimulator, SimConfig

WORKLOAD = 200.0


def main() -> None:
    app = build_app("sockshop")
    knee = AnalyticalEngine(app).bottleneck_allocation(WORKLOAD)

    print(f"{app.name} @ {WORKLOAD:.0f} rps — DES sweep around the knee\n")
    print(f"{'alloc/knee':>10s} {'p95_ms':>8s} {'mean_ms':>8s} "
          f"{'completed':>9s} {'throttle_s':>10s}")
    for scale in (2.0, 1.0, 0.5, 0.3, 0.2):
        sim = MicroserviceSimulator(
            app, knee.scale(scale), WORKLOAD, config=SimConfig(), seed=7
        )
        m = sim.run(8.0, warmup=2.0)
        throttle = sum(s.throttle_seconds for s in m.services.values())
        print(f"{scale:10.2f} {m.latency_p95 * 1000:8.1f} "
              f"{m.latency_mean * 1000:8.1f} {m.completed_requests:9d} "
              f"{throttle:10.2f}")

    # Jaeger-style tracing (the paper collects this for its Table 1 study
    # but PEMA itself never uses it).
    sim = MicroserviceSimulator(
        app, knee.scale(0.4), WORKLOAD, config=SimConfig(trace=True), seed=8
    )
    sim.run(4.0, warmup=1.0)
    spans = sim.traces.spans
    print(f"\ntraced {len(spans)} spans; slowest five:")
    for span in sorted(spans, key=lambda s: -s.duration)[:5]:
        print(f"  req {span.request_id:5d}  {span.service:12s} "
              f"duration {span.duration * 1000:7.2f} ms "
              f"(cpu {span.cpu_time * 1000:5.2f} ms, "
              f"stall {span.queue_wait * 1000:7.2f} ms)")

    by_service: dict[str, list[float]] = {}
    for span in spans:
        by_service.setdefault(span.service, []).append(span.queue_wait)
    print("\nmean stall per visit (top 5 services):")
    items = sorted(by_service.items(), key=lambda kv: -float(np.mean(kv[1])))
    for name, waits in items[:5]:
        print(f"  {name:14s} {np.mean(waits) * 1000:7.2f} ms "
              f"over {len(waits)} visits")


if __name__ == "__main__":
    main()
