"""Append-only time series, the primitive of the metrics store."""

from __future__ import annotations

import bisect
from typing import Iterator

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """A single labelled metric stream: (timestamp, value) pairs.

    Timestamps must be appended in non-decreasing order (scrapes are
    ordered), which keeps window queries O(log n).
    """

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def append(self, timestamp: float, value: float) -> None:
        if self._times and timestamp < self._times[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing: {timestamp} < {self._times[-1]}"
            )
        if not np.isfinite(value):
            raise ValueError(f"non-finite metric value: {value}")
        self._times.append(float(timestamp))
        self._values.append(float(value))

    @property
    def last_value(self) -> float:
        if not self._values:
            raise LookupError("empty series")
        return self._values[-1]

    @property
    def last_time(self) -> float:
        if not self._times:
            raise LookupError("empty series")
        return self._times[-1]

    def window(self, start: float, end: float) -> np.ndarray:
        """Values with timestamp in ``[start, end]`` (inclusive)."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return np.asarray(self._values[lo:hi], dtype=np.float64)

    def window_pairs(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return (
            np.asarray(self._times[lo:hi], dtype=np.float64),
            np.asarray(self._values[lo:hi], dtype=np.float64),
        )

    def tail(self, count: int) -> np.ndarray:
        """The most recent ``count`` values (fewer if the series is short)."""
        if count <= 0:
            raise ValueError("count must be positive")
        return np.asarray(self._values[-count:], dtype=np.float64)

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=np.float64)
