"""Resource allocation history database (RHDb) — §3.3 of the paper.

A lightweight single-table log of every applied allocation and the
response it produced.  Two queries matter:

* **rollback** (Alg. 1 line 4): on an SLO violation, return the
  *minimum-total-CPU* recorded configuration whose response satisfied the
  SLO;
* **exploration** (Alg. 1 line 6 / Eqn. 8): return a uniformly random
  recorded configuration without an SLO violation, letting PEMA walk back
  its reduction path and escape sub-optimal corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.sim.types import Allocation

__all__ = ["RHDbRecord", "ResourceHistoryDB"]


@dataclass(frozen=True)
class RHDbRecord:
    """One row: the allocation applied at a step and what it produced."""

    step: int
    allocation: Allocation
    response: float
    workload: float
    slo: float
    util_thresholds: Mapping[str, float] = field(default_factory=dict)
    throttle_thresholds: Mapping[str, float] = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return self.response > self.slo

    @property
    def total_cpu(self) -> float:
        return self.allocation.total()


class ResourceHistoryDB:
    """Append-only in-memory history with the two PEMA queries."""

    def __init__(self, max_records: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._records: list[RHDbRecord] = []
        self._tainted: set[Allocation] = set()
        self.max_records = max_records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RHDbRecord]:
        return iter(self._records)

    def insert(self, record: RHDbRecord) -> None:
        if self._records and record.step <= self._records[-1].step:
            raise ValueError(
                f"steps must increase: {record.step} after {self._records[-1].step}"
            )
        self._records.append(record)
        if len(self._records) > self.max_records:
            # Drop oldest but never the current best rollback candidate.
            best = self.best_rollback(record.slo)
            drop = self._records[0]
            if best is not None and drop is best:
                del self._records[1]
            else:
                del self._records[0]

    def last(self) -> RHDbRecord | None:
        return self._records[-1] if self._records else None

    def records(self) -> tuple[RHDbRecord, ...]:
        return tuple(self._records)

    # -- violation tainting -------------------------------------------------------
    def taint(self, allocation: Allocation) -> None:
        """Mark an allocation as having produced an SLO violation.

        Measurement noise can log a marginally infeasible allocation with a
        satisfying response; without tainting, rollback would return to it
        forever (violation → rollback to the same lucky record → violation
        …).  Once any interval under an allocation violates, every record
        of that exact allocation is excluded from rollback and exploration.
        """
        self._tainted.add(allocation)

    def is_tainted(self, allocation: Allocation) -> bool:
        return allocation in self._tainted

    def _safe(self, slo: float) -> list[RHDbRecord]:
        return [
            r
            for r in self._records
            if r.response <= slo and r.allocation not in self._tainted
        ]

    # -- PEMA queries ----------------------------------------------------------
    def best_rollback(self, slo: float) -> RHDbRecord | None:
        """Minimum-total-CPU untainted record whose response satisfied ``slo``."""
        satisfying = self._safe(slo)
        if not satisfying:
            return None
        return min(satisfying, key=lambda r: r.total_cpu)

    def random_non_violating(
        self, slo: float, rng: np.random.Generator
    ) -> RHDbRecord | None:
        """Uniformly random untainted, non-violating record (exploration)."""
        satisfying = self._safe(slo)
        if not satisfying:
            return None
        return satisfying[int(rng.integers(len(satisfying)))]

    def clone(self) -> "ResourceHistoryDB":
        """A shallow copy (records are immutable) for range bootstrapping."""
        out = ResourceHistoryDB(max_records=self.max_records)
        out._records = list(self._records)
        out._tainted = set(self._tainted)
        return out
