"""Batched analytical engine: one vectorized observation for many cells.

The scalar :class:`~repro.sim.engine.AnalyticalEngine` evaluates one
(allocation, workload) pair per call; a large sweep therefore pays the
full NumPy/scipy call overhead once per *cell* per control interval.
:class:`BatchedAnalyticalEngine` stacks ``B`` compatible cells of the same
application into ``(B, S)`` arrays and runs the identical closed forms
(Gamma concurrency → throttling/overload → visit latency → end-to-end
aggregation) once per *batch* per interval.

Bit-exactness contract: every deterministic operation is the same IEEE
float64 operation in the same order as the scalar engine, applied
elementwise across the batch (scipy's incomplete-gamma ufuncs and NumPy's
arithmetic/``exp``/``power`` kernels are value-deterministic regardless of
array shape), and every *stochastic* draw comes from a dedicated per-cell
``np.random.default_rng(seed)`` stream consumed in exactly the scalar
call order (latency noise factor first, then the per-service usage
normals).  Row ``i`` of a batched observation is therefore byte-identical
to what a scalar engine seeded like cell ``i`` would observe —
``tests/test_batched.py`` enforces this cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.sim.cfs import CFSModel
from repro.sim.concurrency import gamma_quantile
from repro.sim.latency import LatencyParams, NoiselessLatencyKernel
from repro.sim.noise import NoiseModel

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.apps.spec import AppSpec

__all__ = ["BatchObservation", "BatchedAnalyticalEngine"]


@dataclass(frozen=True)
class BatchObservation:
    """One monitoring interval observed for a whole batch of cells.

    The batched counterpart of ``B`` :class:`~repro.sim.types.IntervalMetrics`
    objects, kept as arrays: scalars are ``(B,)``, per-service signals are
    ``(B, S)`` in the app's service order.
    """

    latency_p95: np.ndarray
    workload_rps: np.ndarray
    utilization: np.ndarray
    throttle_seconds: np.ndarray
    usage_cores: np.ndarray
    usage_p90_cores: np.ndarray

    @property
    def n_cells(self) -> int:
        return self.latency_p95.shape[0]


class BatchedAnalyticalEngine:
    """Closed-form engine evaluating ``B`` same-app cells per call.

    Parameters
    ----------
    app:
        The (shared) application specification.
    seeds:
        One measurement-noise seed per cell; cell ``i`` observes the same
        noise stream as ``AnalyticalEngine(app, seed=seeds[i])``.
    latency_params, cfs, noise:
        Model tunables, shared across the batch (cells whose engine params
        differ belong in different batches).
    """

    def __init__(
        self,
        app: "AppSpec",
        seeds: Sequence[int],
        *,
        latency_params: LatencyParams | None = None,
        cfs: CFSModel | None = None,
        noise: NoiseModel | None = None,
    ) -> None:
        if not len(seeds):
            raise ValueError("need at least one cell seed")
        self._app = app
        self.latency_params = latency_params or LatencyParams()
        self.cfs = cfs or CFSModel()
        self.noise = noise if noise is not None else NoiseModel()
        self._rngs = [np.random.default_rng(int(s)) for s in seeds]
        self._kernel = NoiselessLatencyKernel(app, params=self.latency_params)
        self.cpu_speed = np.ones(len(self._rngs), dtype=np.float64)
        # Scalar-cache replica: ``AnalyticalEngine._concurrency`` memoizes
        # its model per (round(workload, 9), cpu_speed), so two workloads
        # equal to 9 decimals but one ulp apart observe the *first* one's
        # model.  Each cell keeps the same canonical-workload mapping so
        # those collisions resolve identically here (bit-exactness).
        self._canonical_workloads: list[dict[tuple[float, float], float]] = [
            {} for _ in self._rngs
        ]
        # Fault-injection channels (repro.faults), per cell × service.
        # All-ones means "no disturbance"; ``x * 1.0`` is bitwise identity
        # for finite floats, so clean cells inside a faulted batch still
        # produce their clean bytes.  ``_faulted`` keeps fully clean
        # batches on the exact pre-fault code path.
        shape = (len(self._rngs), len(app.service_names))
        self._capacity_scale = np.ones(shape)
        self._demand_scale = np.ones(shape)
        self._service_level = np.ones(len(self._rngs))
        self._faulted = False

    @property
    def app(self) -> "AppSpec":
        return self._app

    @property
    def n_cells(self) -> int:
        return len(self._rngs)

    def set_cpu_speed(self, cell: int, speed: float) -> None:
        """Change one cell's CPU clock (the Fig. 19 ``set_cpu_speed`` hook)."""
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed}")
        self.cpu_speed[cell] = float(speed)
        # The scalar engine clears its concurrency-model cache here.
        self._canonical_workloads[cell].clear()

    # -- fault-injection channels (repro.faults) ---------------------------------
    def _service_index(self, service: str | None) -> int | slice:
        if service is None:
            return slice(None)
        try:
            return self._app.service_names.index(service)
        except ValueError:
            raise ValueError(
                f"unknown service {service!r} for app {self._app.name!r}"
            ) from None

    def set_capacity_scale(
        self, cell: int, scale: float, service: str | None = None
    ) -> None:
        """One cell's effective-capacity scale (``service_crash``).

        Mirrors :meth:`AnalyticalEngine.set_capacity_scale`: capacity does
        not enter the concurrency model, so no cache invalidation.
        """
        if scale < 0:
            raise ValueError(f"capacity scale must be >= 0: {scale}")
        self._capacity_scale[cell, self._service_index(service)] = float(scale)
        self._faulted = True

    def set_demand_scale(
        self, cell: int, scale: float, service: str | None = None
    ) -> None:
        """One cell's CPU-demand scale (``calibration_drift``).

        Demands enter the concurrency model: the cell's canonical-workload
        map is cleared, exactly as the scalar engine clears its model
        cache.
        """
        if scale <= 0:
            raise ValueError(f"demand scale must be positive: {scale}")
        self._demand_scale[cell, self._service_index(service)] = float(scale)
        self._faulted = True
        self._canonical_workloads[cell].clear()

    def set_service_level(self, cell: int, level: float) -> None:
        """One cell's app-wide service-level dimmer (brownout actuation)."""
        if not 0 < level <= 1.0:
            raise ValueError(f"service level must be in (0, 1]: {level}")
        self._service_level[cell] = float(level)
        self._faulted = True
        self._canonical_workloads[cell].clear()

    def observe(
        self,
        alloc: np.ndarray,
        workload_rps: np.ndarray,
        interval: np.ndarray,
    ) -> BatchObservation:
        """One interval's metrics for every cell, with measurement noise.

        ``alloc`` is ``(B, S)`` in service order; ``workload_rps`` and
        ``interval`` are ``(B,)``.
        """
        alloc = np.asarray(alloc, dtype=np.float64)
        workload = np.asarray(workload_rps, dtype=np.float64)
        interval = np.asarray(interval, dtype=np.float64)
        if np.any(workload < 0):
            raise ValueError("workload must be >= 0")
        if np.any(interval <= 0):
            raise ValueError("interval must be positive")
        if self._faulted:
            # Same rebinding as the scalar engine: the recorded allocation
            # stays the controller's; everything downstream sees the
            # effective capacity.
            alloc = alloc * self._capacity_scale

        # Deterministic closed forms: the shared noiseless kernel (same
        # formula order as the scalar engine's ``_concurrency`` +
        # ``ConcurrencyModel`` + ``_latency_from``).  The model workload is
        # canonicalized through the scalar cache's round-to-9-decimals key
        # first (the recorded/observed workload stays exact).
        model_workload = workload.copy()
        for i, seen in enumerate(self._canonical_workloads):
            key = (round(float(workload[i]), 9), float(self.cpu_speed[i]))
            canonical = seen.get(key)
            if canonical is None:
                if len(seen) > 4096:  # the scalar cache's size bound
                    seen.clear()
                seen[key] = float(workload[i])
            else:
                model_workload[i] = canonical
        if self._faulted:
            demand_scale = self._demand_scale * self._service_level[:, None]
            sig = self._kernel.evaluate(
                alloc, model_workload, self.cpu_speed, demand_scale
            )
        else:
            sig = self._kernel.evaluate(alloc, model_workload, self.cpu_speed)
        excess_arr = sig.overload * np.maximum(alloc, 1e-12)
        frac = self.cfs.throttled_fraction(sig.exceed, excess_arr, alloc)
        thr_seconds = frac * interval[:, None]
        thr_seconds[thr_seconds < self.cfs.zero_floor] = 0.0
        latency = sig.latency

        # Stochastic draws, per cell, in the scalar engine's exact order:
        # the latency-noise factor, then the per-service usage normals.
        n_services = alloc.shape[1]
        factors = np.empty(len(self._rngs), dtype=np.float64)
        normals = np.empty_like(alloc)
        for i, rng in enumerate(self._rngs):
            factors[i] = self.noise.sample(rng)
            normals[i] = rng.normal(0.0, 0.03, size=n_services)
        latency = latency * factors

        usage = np.minimum(sig.mean, alloc)
        svc_noise = np.exp(normals)
        usage_noisy = usage * svc_noise
        util = np.clip(usage_noisy / np.maximum(alloc, 1e-12), 0.0, 1.0)
        p90 = np.minimum(alloc, gamma_quantile(0.90, sig.shape, sig.scale))

        return BatchObservation(
            latency_p95=latency,
            workload_rps=workload,
            utilization=util,
            throttle_seconds=thr_seconds,
            usage_cores=usage_noisy,
            usage_p90_cores=p90,
        )
