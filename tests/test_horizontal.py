"""Horizontal scaling extension (§6 trade-off)."""

import pytest

from repro.apps import build_app
from repro.cluster import HorizontalRuleAutoscaler, ReplicaAllocator
from repro.core import ControlLoop
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload
from tests.conftest import make_metrics


@pytest.fixture
def allocator(tiny_app) -> ReplicaAllocator:
    return ReplicaAllocator(tiny_app, pod_cpu=0.5, max_replicas=8)


class TestReplicaAllocator:
    def test_effective_cpu_single_replica(self, tiny_app, allocator):
        # One replica: the full pod (baselines are 0 in the tiny app).
        assert allocator.effective_cpu("front", 1) == pytest.approx(0.5)

    def test_overhead_per_extra_replica(self):
        app = build_app("trainticket")
        alloc = ReplicaAllocator(app, pod_cpu=1.0)
        baseline = app.service("seat").baseline_cores
        one = alloc.effective_cpu("seat", 1)
        three = alloc.effective_cpu("seat", 3)
        assert one == pytest.approx(1.0)
        assert three == pytest.approx(3.0 - 2 * baseline)
        assert three < 3 * one  # scale-out is sub-linear: the trade-off

    def test_replicas_for_covers_target(self):
        app = build_app("trainticket")
        alloc = ReplicaAllocator(app, pod_cpu=1.0, max_replicas=10)
        n = alloc.replicas_for("seat", 2.5)
        assert alloc.effective_cpu("seat", n) >= 2.5
        if n > 1:
            assert alloc.effective_cpu("seat", n - 1) < 2.5

    def test_replicas_for_clamps(self):
        app = build_app("trainticket")
        alloc = ReplicaAllocator(app, pod_cpu=1.0, max_replicas=4)
        assert alloc.replicas_for("seat", 0.0) == 1
        assert alloc.replicas_for("seat", 1e9) == 4

    def test_raw_total(self, tiny_app, allocator):
        replicas = {name: 2 for name in tiny_app.service_names}
        assert allocator.raw_total(replicas) == pytest.approx(2 * 0.5 * 4)

    def test_validation(self, tiny_app):
        with pytest.raises(ValueError):
            ReplicaAllocator(tiny_app, pod_cpu=0.5, max_replicas=0)
        with pytest.raises(ValueError):
            ReplicaAllocator(tiny_app, pod_cpu={"front": 1.0})  # missing
        app = build_app("trainticket")
        with pytest.raises(ValueError):
            # Pod smaller than the per-replica baseline is nonsense.
            ReplicaAllocator(app, pod_cpu=0.01)
        alloc = ReplicaAllocator(tiny_app, pod_cpu=0.5)
        with pytest.raises(ValueError):
            alloc.effective_cpu("front", 0)


class TestHorizontalRuleAutoscaler:
    def test_scale_up_on_high_usage(self, tiny_app, allocator):
        hpa = HorizontalRuleAutoscaler(
            allocator, target_utilization=0.5, initial_replicas=1
        )
        m = make_metrics(0.05, utils={"front": 2.0})  # usage 2.0 cores
        hpa.decide(m)
        assert hpa.replicas["front"] > 1

    def test_scale_down_damped(self, tiny_app, allocator):
        hpa = HorizontalRuleAutoscaler(
            allocator, target_utilization=0.5, initial_replicas=6,
            scale_down_limit=1,
        )
        m = make_metrics(0.05, utils={s: 0.0 for s in tiny_app.service_names})
        hpa.decide(m)
        assert hpa.replicas["front"] == 5  # one step at a time

    def test_allocation_protocol(self, tiny_app, allocator):
        hpa = HorizontalRuleAutoscaler(allocator, initial_replicas=2)
        assert hpa.allocation.total() > 0
        out = hpa.decide(make_metrics(0.05))
        assert out == hpa.allocation

    def test_validation(self, allocator):
        with pytest.raises(ValueError):
            HorizontalRuleAutoscaler(allocator, target_utilization=0.0)
        with pytest.raises(ValueError):
            HorizontalRuleAutoscaler(allocator, scale_down_limit=0)

    def test_end_to_end_satisfies_slo(self):
        """HPA keeps QoS but provisions more raw CPU than vertical RULE
        (the per-replica overhead) — §6's trade-off, measured."""
        app = build_app("sockshop")
        wl = 700.0
        allocator = ReplicaAllocator(app, pod_cpu=1.0, max_replicas=16)
        hpa = HorizontalRuleAutoscaler(
            allocator, target_utilization=0.10, initial_replicas=4
        )
        engine = AnalyticalEngine(app, seed=19)
        result = ControlLoop(
            engine, hpa, ConstantWorkload(wl), slo=app.slo
        ).run(25)
        assert result.violation_rate() < 0.2
        assert hpa.raw_total() >= hpa.allocation.total()
