"""Event-driven microservice simulator.

Executes an application's request plans against CFS-quota servers:

* open-loop arrivals (Poisson or MMPP) pick a request class by weight;
* requests walk their stages; stage entries fan out in parallel; each
  visit is a CPU burst (runs at 1 core while the container's quota lasts)
  followed by a non-CPU wait;
* quota exhaustion freezes a service until the 100 ms period boundary,
  accumulating the throttle time PEMA observes.

The simulator is single-allocation/single-rate per run; the
:class:`~repro.sim.des.engine.DESEngine` wraps runs into the
``Environment`` protocol.

Two execution modes share the event logic in :class:`_SimCore` and the
per-purpose variate streams of :mod:`repro.sim.des.variates`:

* :class:`MicroserviceSimulator` (production, vectorized): pre-draws
  every stream in NumPy blocks, pre-computes the whole arrival and
  background schedules up to the horizon, and runs the heap as plain
  ``(time, seq, ...)`` tuples (:class:`~repro.sim.des.events.FastEventQueue`).
* :class:`~repro.sim.des.reference.ReferenceSimulator` (the retained
  scalar oracle): one scalar Generator call per variate, dataclass
  events, lazy arrival draws — the transparently-correct implementation
  the fidelity gate holds the vectorized mode bit-identical to.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush
from operator import attrgetter

import numpy as np

from repro.apps.spec import AppSpec
from repro.sim.des.arrivals import mmpp_times, poisson_times
from repro.sim.des.events import EventKind, FastEventQueue
from repro.sim.des.metrics import MeasurementWindow
from repro.sim.des.request import RequestState, compile_plans
from repro.sim.des.server import CpuJob, ServiceServer
from repro.sim.des.tracing import Span, TraceLog
from repro.sim.des.variates import (
    BlockExp,
    BlockGamma,
    BlockNormal,
    BlockUniform,
    spawn_streams,
)
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["SimConfig", "MicroserviceSimulator"]

_DONE_EPS = 1e-7


@dataclass(frozen=True)
class SimConfig:
    """Simulator tunables."""

    period: float = 0.1
    """CFS bandwidth period (Linux default 100 ms)."""

    arrivals: str = "mmpp"
    """"poisson" or "mmpp" (burstier, the realistic default)."""

    burst_factor: float = 4.0
    burst_fraction: float = 0.2
    demand_cv: float = 0.5
    """Coefficient of variation of per-visit CPU demand (Gamma)."""

    wait_jitter: float = 0.10
    """Lognormal sigma on the non-CPU wait part of each visit."""

    cpu_speed: float = 1.0
    """Relative clock speed (1.0 = nominal)."""

    background: bool = True
    """Simulate each service's workload-independent baseline CPU demand
    (runtime/GC overhead) as Poisson background jobs."""

    background_interval: float = 0.05
    """Mean gap between background jobs per service (seconds)."""

    trace: bool = False
    """Record Jaeger-like spans (needed only by the analysis package)."""

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.arrivals not in ("poisson", "mmpp"):
            raise ValueError(f"unknown arrival process {self.arrivals!r}")
        if self.demand_cv < 0 or self.wait_jitter < 0:
            raise ValueError("dispersion parameters must be >= 0")
        if self.background_interval <= 0:
            raise ValueError("background_interval must be positive")
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")


@dataclass(slots=True)
class _Visit:
    """Payload threading one visit through CPU_DONE / WAIT_DONE."""

    request: RequestState
    service: str
    visits_left: int
    span_start: float = 0.0
    cpu_time: float = 0.0


_JOB_REMAINING = attrgetter("remaining")

# Hoisted enum members: enum attribute access costs a metaclass lookup,
# which the vectorized fast paths pay hundreds of thousands of times.
_ARRIVAL = EventKind.ARRIVAL
_STAGE_START = EventKind.STAGE_START
_CPU_DONE = EventKind.CPU_DONE
_WAIT_DONE = EventKind.WAIT_DONE
_QUOTA_EXHAUST = EventKind.QUOTA_EXHAUST
_PERIOD_END = EventKind.PERIOD_END
_BACKGROUND = EventKind.BACKGROUND


class _SimCore:
    """Event logic shared by the vectorized and reference simulators.

    Subclasses supply the variate streams (:meth:`_init_streams`), the
    event queue (:meth:`_make_queue`), the arrival/background sources,
    and the event-loop drain.  Everything here consumes randomness only
    through those abstractions, so both modes execute the same float
    operations in the same order.
    """

    def __init__(
        self,
        app: AppSpec,
        allocation: Allocation,
        workload_rps: float,
        *,
        config: SimConfig | None = None,
        seed: int = 0,
    ) -> None:
        if workload_rps <= 0:
            raise ValueError("workload must be positive")
        self.app = app
        self.config = config or SimConfig()
        self.servers = {
            name: ServiceServer(
                name, max(allocation[name], 1e-3), period=self.config.period
            )
            for name in app.service_names
        }
        self.plans = compile_plans(app)
        weights = np.asarray([p.weight for p in self.plans], dtype=np.float64)
        self._plan_cum = np.cumsum(weights / weights.sum()).tolist()
        self._n_plans = len(self.plans)
        self.workload_rps = float(workload_rps)
        self.queue = self._make_queue()
        self.window = MeasurementWindow()
        self.traces = TraceLog() if self.config.trace else None
        self._next_request_id = 0
        self._next_job_id = 0
        self.in_flight = 0
        cfg = self.config
        shape = 1.0 / cfg.demand_cv**2 if cfg.demand_cv > 0 else 0.0
        self._demand_shape = shape
        self._jitter = cfg.wait_jitter
        # Per-service constants, resolved once: (demand mean, Gamma scale
        # or None when the demand is deterministic), wait floor, and the
        # background work/gap exponential scales.
        self._demand_params: dict[str, tuple[float, float | None]] = {}
        self._floor: dict[str, float] = {}
        self._bg_work_scale: dict[str, float] = {}
        self._hop_latency = app.hop_latency
        for name in app.service_names:
            svc = app.service(name)
            mean = svc.cpu_demand / cfg.cpu_speed
            if mean <= 0:
                self._demand_params[name] = (0.0, None)
            elif shape <= 0:
                self._demand_params[name] = (mean, None)
            else:
                self._demand_params[name] = (mean, mean / shape)
            self._floor[name] = svc.latency_floor / cfg.cpu_speed
            self._bg_work_scale[name] = (
                svc.baseline_cores / cfg.cpu_speed
            ) * cfg.background_interval
        core, background = spawn_streams(seed, len(app.service_names))
        self._init_streams(core, background)

    # -- mode hooks --------------------------------------------------------------
    def _make_queue(self):
        raise NotImplementedError

    def _init_streams(self, core, background) -> None:
        raise NotImplementedError

    def _prepare(self, horizon: float) -> None:
        """Per-run setup before the first event is pushed (default: none)."""

    def _first_arrival_time(self) -> float:
        raise NotImplementedError

    def _next_arrival_time(self, now: float) -> float | None:
        raise NotImplementedError

    def _background_first_time(self, service: str) -> float:
        raise NotImplementedError

    def _background_work(self, service: str) -> float:
        raise NotImplementedError

    def _background_next_time(self, service: str, now: float) -> float | None:
        raise NotImplementedError

    def _drain(self, horizon: float, warmup: float) -> bool:
        """Pop-and-dispatch until the horizon; True once warmup was reset."""
        raise NotImplementedError

    # -- demand sampling ---------------------------------------------------------
    def _sample_cpu_demand(self, service: str) -> float:
        mean, scale = self._demand_params[service]
        if scale is None:
            return mean
        return self._next_gamma() * scale

    def _sample_wait(self, service: str, cpu_time: float) -> float:
        base = self._floor[service] - cpu_time
        if base <= 0.0:
            return 0.0
        jitter = self._jitter
        if jitter == 0:
            return base
        return base * float(np.exp(jitter * self._next_normal()))

    def _choose_plan(self):
        idx = bisect_right(self._plan_cum, self._next_plan_u())
        if idx >= self._n_plans:  # u landed past cum[-1]'s rounding
            idx = self._n_plans - 1
        return self.plans[idx]

    # -- event scheduling ----------------------------------------------------------
    def _resched(self, server: ServiceServer) -> None:
        """Re-arm completion and quota events after any server change."""
        now = self.queue.now
        completion = server.next_completion()
        if completion is not None:
            job_id, dt = completion
            self.queue.push(
                now + dt,
                EventKind.CPU_DONE,
                payload=(server.name, job_id),
                epoch=server.epoch,
            )
        quota_dt = server.time_to_quota_exhaust()
        if quota_dt is not None:
            self.queue.push(
                now + quota_dt,
                EventKind.QUOTA_EXHAUST,
                payload=server.name,
                epoch=server.epoch,
            )

    def _schedule_period_end(self, server: ServiceServer) -> None:
        if server.period_event_armed:
            return
        boundary = (
            int(self.queue.now / self.config.period + 1e-9) + 1
        ) * self.config.period
        self.queue.push(boundary, EventKind.PERIOD_END, payload=server.name)
        server.period_event_armed = True

    # -- visit lifecycle -------------------------------------------------------------
    def _start_visit(self, visit: _Visit) -> None:
        now = self.queue.now
        server = self.servers[visit.service]
        server.advance(now)
        demand = self._sample_cpu_demand(visit.service)
        visit.span_start = now
        visit.cpu_time = demand
        if demand <= 0:
            self._finish_cpu_phase(visit)
            return
        job = CpuJob(
            job_id=self._next_job_id,
            remaining=demand,
            visit_ref=visit,
            started_at=now,
        )
        self._next_job_id += 1
        was_idle = not server.jobs
        server.add_job(job, now)
        if was_idle:
            self._schedule_period_end(server)
        self._resched(server)

    def _finish_cpu_phase(self, visit: _Visit) -> None:
        wait = self._sample_wait(visit.service, visit.cpu_time)
        self.queue.push(self.queue.now + wait, EventKind.WAIT_DONE, payload=visit)

    def _finish_visit(self, visit: _Visit) -> None:
        now = self.queue.now
        if self.traces is not None:
            self.traces.record(
                Span(
                    request_id=visit.request.request_id,
                    service=visit.service,
                    start=visit.span_start,
                    end=now,
                    cpu_time=visit.cpu_time,
                )
            )
        visit.visits_left -= 1
        if visit.visits_left > 0:
            self._start_visit(visit)
            return
        request = visit.request
        request.entries_pending -= 1
        if request.entries_pending > 0:
            return
        if request.finished_stages:
            self._complete_request(request)
        else:
            self.queue.push(
                now + self._hop_latency, EventKind.STAGE_START, payload=request
            )

    def _complete_request(self, request: RequestState) -> None:
        self.in_flight -= 1
        self.window.record_completion(self.queue.now - request.arrived_at)

    def _start_stage(self, request: RequestState) -> None:
        entries = request.sample_stage_entries(self._next_entry_u)
        if not entries:
            # Every call in the stage sampled to zero visits.
            if request.finished_stages:
                self._complete_request(request)
            else:
                self.queue.push(
                    self.queue.now, EventKind.STAGE_START, payload=request
                )
            return
        for entry in entries:
            self._start_visit(
                _Visit(
                    request=request,
                    service=entry.service,
                    visits_left=entry.visits_left,
                )
            )

    # -- event handlers ------------------------------------------------------------
    def _on_arrival(self, horizon: float) -> None:
        now = self.queue.now
        request = RequestState(
            request_id=self._next_request_id,
            plan=self._choose_plan(),
            arrived_at=now,
        )
        self._next_request_id += 1
        self.in_flight += 1
        self.window.started += 1
        self.queue.push(now, EventKind.STAGE_START, payload=request)
        t = self._next_arrival_time(now)
        if t is not None and t <= horizon:
            self.queue.push(t, EventKind.ARRIVAL, payload=horizon)

    def _on_cpu_done(self, service: str, job_id: int, epoch: int) -> None:
        server = self.servers[service]
        if epoch != server.epoch or job_id not in server.jobs:
            return  # stale
        server.advance(self.queue.now)
        job = server.jobs[job_id]
        if job.remaining > _DONE_EPS:
            # Numerical drift; re-arm from current state.
            self._resched(server)
            return
        server.remove_job(job_id)
        self._resched(server)
        if job.visit_ref is not None:
            self._finish_cpu_phase(job.visit_ref)
        # Background jobs (visit_ref None) just end.

    def _on_background(self, service: str, horizon: float) -> None:
        """One baseline-demand CPU burst (runtime/GC overhead)."""
        now = self.queue.now
        work = self._background_work(service)
        if work > 0:
            server = self.servers[service]
            server.advance(now)
            job = CpuJob(job_id=self._next_job_id, remaining=work, visit_ref=None)
            self._next_job_id += 1
            was_idle = not server.jobs
            server.add_job(job, now)
            if was_idle:
                self._schedule_period_end(server)
            self._resched(server)
        t = self._background_next_time(service, now)
        if t is not None and t <= horizon:
            self.queue.push(t, EventKind.BACKGROUND, payload=(service, horizon))

    def _on_quota_exhaust(self, service: str, epoch: int) -> None:
        server = self.servers[service]
        if epoch != server.epoch:
            return  # stale
        server.advance(self.queue.now)
        if not server.jobs or server.quota_left > _DONE_EPS:
            self._resched(server)
            return
        server.set_throttled()
        # PERIOD_END is always armed while the server is busy; the freeze
        # lasts until the next boundary.

    def _on_period_end(self, service: str) -> None:
        server = self.servers[service]
        server.period_event_armed = False
        server.advance(self.queue.now)
        server.new_period(self.queue.now)
        if server.jobs:
            self._schedule_period_end(server)
            self._resched(server)

    # -- run -----------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> IntervalMetrics:
        """Simulate ``warmup + duration`` seconds; measure the last part."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        horizon = warmup + duration
        self._prepare(horizon)
        self.queue.push(
            self._first_arrival_time(), EventKind.ARRIVAL, payload=horizon
        )
        if self.config.background:
            for name in self.app.service_names:
                if self.app.service(name).baseline_cores > 0:
                    self.queue.push(
                        self._background_first_time(name),
                        EventKind.BACKGROUND,
                        payload=(name, horizon),
                    )
        warmup_done = self._drain(horizon, warmup)
        for server in self.servers.values():
            server.advance(horizon)
        measured = duration if warmup_done else horizon
        return self.window.build(self.servers, measured, self.workload_rps)

    def _reset_measurement(self, at: float) -> None:
        for server in self.servers.values():
            server.advance(at)
            server.reset_accumulators()
        self.window = MeasurementWindow()
        if self.traces is not None:
            self.traces.clear()


class MicroserviceSimulator(_SimCore):
    """One simulation run of one application at one allocation and rate.

    The vectorized production mode: every variate stream is pre-drawn in
    NumPy blocks, the arrival and per-service background schedules are
    pre-computed as arrays before the first event fires, and the event
    heap holds plain tuples.  Bit-identical to
    :class:`~repro.sim.des.reference.ReferenceSimulator` — traces,
    metrics, and counters — under the
    :mod:`repro.sim.des.variates` stream contract.
    """

    def _make_queue(self) -> FastEventQueue:
        return FastEventQueue()

    def _init_streams(self, core, background) -> None:
        self._arrival_exp = BlockExp(core[0])
        self._next_plan_u = BlockUniform(core[1]).next
        self._next_entry_u = BlockUniform(core[2]).next
        self._next_gamma = (
            BlockGamma(core[3], self._demand_shape).next
            if self._demand_shape > 0
            else None
        )
        self._next_normal = BlockNormal(core[4]).next
        self._bg_exp = {
            name: BlockExp(background[i])
            for i, name in enumerate(self.app.service_names)
        }
        self._arrival_times: list[float] = []
        self._arrival_idx = 0
        self._bg_works: dict[str, list[float]] = {}
        self._bg_times: dict[str, list[float]] = {}
        self._bg_idx: dict[str, int] = {}

    # -- pre-computed schedules ---------------------------------------------------
    def _prepare(self, horizon: float) -> None:
        cfg = self.config
        if cfg.arrivals == "poisson":
            self._arrival_times = poisson_times(
                self._arrival_exp, self.workload_rps, horizon
            )
        else:
            self._arrival_times = mmpp_times(
                self._arrival_exp,
                self.workload_rps,
                horizon,
                burst_factor=cfg.burst_factor,
                burst_fraction=cfg.burst_fraction,
            )
        self._arrival_idx = 1
        if not cfg.background:
            return
        interval = cfg.background_interval
        for name in self.app.service_names:
            if self.app.service(name).baseline_cores <= 0:
                continue
            stream = self._bg_exp[name]
            work_scale = self._bg_work_scale[name]
            # Same per-event draw order as the reference handler: the
            # work burst first, then the gap to the next event.
            t = stream.next() * interval
            times = [t]
            works: list[float] = []
            while t <= horizon:
                works.append(stream.next() * work_scale)
                t = t + stream.next() * interval
                if t > horizon:
                    break
                times.append(t)
            self._bg_times[name] = times
            self._bg_works[name] = works
            self._bg_idx[name] = 0

    def _first_arrival_time(self) -> float:
        return self._arrival_times[0]

    def _next_arrival_time(self, now: float) -> float | None:
        idx = self._arrival_idx
        if idx >= len(self._arrival_times):
            return None
        self._arrival_idx = idx + 1
        return self._arrival_times[idx]

    def _background_first_time(self, service: str) -> float:
        return self._bg_times[service][0]

    def _background_work(self, service: str) -> float:
        return self._bg_works[service][self._bg_idx[service]]

    def _background_next_time(self, service: str, now: float) -> float | None:
        idx = self._bg_idx[service] + 1
        self._bg_idx[service] = idx
        times = self._bg_times[service]
        if idx >= len(times):
            return None
        return times[idx]

    # -- hot loop ----------------------------------------------------------------
    #
    # The overrides below are the hand-optimized copies of the hottest
    # _SimCore paths: same draws from the same streams, same pushes in
    # the same order (so the (time, seq) event sequence — and therefore
    # every trace, metric, and payload byte — matches the reference),
    # with the queue/server method calls inlined.  The property tests and
    # ``benchmarks/des_gate.py`` hold them to the reference bit for bit.

    def _drain(self, horizon: float, warmup: float) -> bool:
        queue = self.queue
        heap = queue._heap
        warmup_done = warmup == 0.0
        # Locals for the dispatch: attribute lookups cost real time at
        # tens of thousands of events per run.
        arrival = _ARRIVAL
        stage_start = _STAGE_START
        cpu_done = _CPU_DONE
        wait_done = _WAIT_DONE
        quota_exhaust = _QUOTA_EXHAUST
        period_end = _PERIOD_END
        background = _BACKGROUND
        on_cpu_done = self._on_cpu_done
        finish_visit = self._finish_visit
        on_quota = self._on_quota_exhaust
        on_period_end = self._on_period_end
        start_stage = self._start_stage
        on_arrival = self._on_arrival
        on_background = self._on_background
        pop = heappop
        # Dispatch in event-frequency order (CPU_DONE and QUOTA_EXHAUST
        # dominate: every resched arms one of each).
        while heap and heap[0][0] <= horizon:
            time, _seq, kind, payload, epoch = pop(heap)
            queue.now = time
            if not warmup_done and time >= warmup:
                self._reset_measurement(warmup)
                warmup_done = True
            if kind is cpu_done:
                on_cpu_done(payload[0], payload[1], epoch)
            elif kind is quota_exhaust:
                on_quota(payload, epoch)
            elif kind is period_end:
                on_period_end(payload)
            elif kind is wait_done:
                finish_visit(payload)
            elif kind is stage_start:
                start_stage(payload)
            elif kind is background:
                on_background(payload[0], payload[1])
            else:  # ARRIVAL
                on_arrival(payload)
        return warmup_done

    def _resched(self, server: ServiceServer) -> None:
        # Inlined ``next_completion``/``time_to_quota_exhaust``/``push``:
        # both queries share one gate (busy and unthrottled), and every
        # pushed time is ``now + dt`` with ``dt >= 0``, so the queue's
        # past-check/clamp can never fire.
        jobs = server.jobs
        if not jobs or server.throttled:
            return
        queue = self.queue
        now = queue.now
        heap = queue._heap
        seq = queue._next_seq
        queue._next_seq = seq + 2
        epoch = server.epoch
        job = min(jobs.values(), key=_JOB_REMAINING)
        remaining = job.remaining
        heappush(
            heap,
            (
                now + (remaining if remaining > 0.0 else 0.0),
                seq,
                _CPU_DONE,
                (server.name, job.job_id),
                epoch,
            ),
        )
        quota = server.quota_left
        heappush(
            heap,
            (
                now + (quota if quota > 0.0 else 0.0) / len(jobs),
                seq + 1,
                _QUOTA_EXHAUST,
                server.name,
                epoch,
            ),
        )

    def _advance(self, server: ServiceServer, now: float) -> None:
        # Inlined ``ServiceServer.advance``: event times are heap-ordered,
        # so the backwards guard can never fire from the drain loop.
        elapsed = now - server.last_advance
        if elapsed > 0.0:
            jobs = server.jobs
            n = len(jobs)
            if n and not server.throttled:
                used = n * elapsed
                for job in jobs.values():
                    job.remaining -= elapsed
                server.usage_seconds += used
                server.quota_left -= used
                server.period_usage += used
            elif n:
                server.throttle_seconds += elapsed
        server.last_advance = now

    def _schedule_period_end(self, server: ServiceServer) -> None:
        if server.period_event_armed:
            return
        queue = self.queue
        period = self.config.period
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(
            queue._heap,
            (
                (int(queue.now / period + 1e-9) + 1) * period,
                seq,
                _PERIOD_END,
                server.name,
                -1,
            ),
        )
        server.period_event_armed = True

    def _start_visit(self, visit: _Visit) -> None:
        queue = self.queue
        now = queue.now
        service = visit.service
        server = self.servers[service]
        jobs = server.jobs
        # Inlined advance.
        elapsed = now - server.last_advance
        if elapsed > 0.0:
            n = len(jobs)
            if n and not server.throttled:
                used = n * elapsed
                for job in jobs.values():
                    job.remaining -= elapsed
                server.usage_seconds += used
                server.quota_left -= used
                server.period_usage += used
            elif n:
                server.throttle_seconds += elapsed
        server.last_advance = now
        mean, scale = self._demand_params[service]
        demand = mean if scale is None else self._next_gamma() * scale
        visit.span_start = now
        visit.cpu_time = demand
        if demand <= 0:
            self._finish_cpu_phase(visit)
            return
        job_id = self._next_job_id
        self._next_job_id = job_id + 1
        if not jobs:
            # Inlined ``add_job`` idle branch + period-end arming.
            server.sync_period(now)
            self._schedule_period_end(server)
        jobs[job_id] = CpuJob(job_id, demand, visit, now)
        epoch = server.epoch = server.epoch + 1
        # Inlined resched (jobs is non-empty; sync_period may have just
        # cleared a stale throttle, so the flag is read after it).
        if not server.throttled:
            heap = queue._heap
            seq = queue._next_seq
            queue._next_seq = seq + 2
            job = min(jobs.values(), key=_JOB_REMAINING)
            remaining = job.remaining
            heappush(
                heap,
                (
                    now + (remaining if remaining > 0.0 else 0.0),
                    seq,
                    _CPU_DONE,
                    (service, job.job_id),
                    epoch,
                ),
            )
            quota = server.quota_left
            heappush(
                heap,
                (
                    now + (quota if quota > 0.0 else 0.0) / len(jobs),
                    seq + 1,
                    _QUOTA_EXHAUST,
                    service,
                    epoch,
                ),
            )

    def _finish_cpu_phase(self, visit: _Visit) -> None:
        # Inlined ``_sample_wait`` plus a direct WAIT_DONE push.
        base = self._floor[visit.service] - visit.cpu_time
        jitter = self._jitter
        if base <= 0.0:
            wait = 0.0
        elif jitter == 0:
            wait = base
        else:
            wait = base * float(np.exp(jitter * self._next_normal()))
        queue = self.queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(
            queue._heap,
            (queue.now + wait, seq, _WAIT_DONE, visit, -1),
        )

    def _finish_visit(self, visit: _Visit) -> None:
        queue = self.queue
        now = queue.now
        traces = self.traces
        if traces is not None:
            traces.record(
                Span(visit.request.request_id, visit.service, visit.span_start, now, visit.cpu_time)
            )
        left = visit.visits_left - 1
        visit.visits_left = left
        if left > 0:
            self._start_visit(visit)
            return
        request = visit.request
        pending = request.entries_pending - 1
        request.entries_pending = pending
        if pending > 0:
            return
        if request.stage_index >= request.plan.last_stage:
            self.in_flight -= 1
            self.window.record_completion(now - request.arrived_at)
        else:
            seq = queue._next_seq
            queue._next_seq = seq + 1
            heappush(
                queue._heap,
                (now + self._hop_latency, seq, _STAGE_START, request, -1),
            )

    def _start_stage(self, request: RequestState) -> None:
        entries = request.sample_stage_entries(self._next_entry_u)
        if not entries:
            # Every call in the stage sampled to zero visits.
            if request.stage_index >= request.plan.last_stage:
                self.in_flight -= 1
                self.window.record_completion(
                    self.queue.now - request.arrived_at
                )
            else:
                queue = self.queue
                seq = queue._next_seq
                queue._next_seq = seq + 1
                heappush(
                    queue._heap,
                    (queue.now, seq, _STAGE_START, request, -1),
                )
            return
        start_visit = self._start_visit
        for entry in entries:
            start_visit(_Visit(request, entry.service, entry.visits_left))

    def _on_cpu_done(self, service: str, job_id: int, epoch: int) -> None:
        server = self.servers[service]
        jobs = server.jobs
        if epoch != server.epoch or job_id not in jobs:
            return  # stale
        queue = self.queue
        now = queue.now
        # Inlined advance (jobs is non-empty: job_id is in it).
        elapsed = now - server.last_advance
        if elapsed > 0.0:
            if not server.throttled:
                used = len(jobs) * elapsed
                for job in jobs.values():
                    job.remaining -= elapsed
                server.usage_seconds += used
                server.quota_left -= used
                server.period_usage += used
            else:
                server.throttle_seconds += elapsed
        server.last_advance = now
        job = jobs[job_id]
        if job.remaining > _DONE_EPS:
            # Numerical drift; re-arm from current state.
            self._resched(server)
            return
        del jobs[job_id]
        epoch = server.epoch = server.epoch + 1
        # Inlined resched.
        if jobs and not server.throttled:
            heap = queue._heap
            seq = queue._next_seq
            queue._next_seq = seq + 2
            nxt = min(jobs.values(), key=_JOB_REMAINING)
            remaining = nxt.remaining
            heappush(
                heap,
                (
                    now + (remaining if remaining > 0.0 else 0.0),
                    seq,
                    _CPU_DONE,
                    (service, nxt.job_id),
                    epoch,
                ),
            )
            quota = server.quota_left
            heappush(
                heap,
                (
                    now + (quota if quota > 0.0 else 0.0) / len(jobs),
                    seq + 1,
                    _QUOTA_EXHAUST,
                    service,
                    epoch,
                ),
            )
        visit = job.visit_ref
        if visit is None:
            return  # background jobs just end
        # Inlined _finish_cpu_phase.
        base = self._floor[service] - visit.cpu_time
        jitter = self._jitter
        if base <= 0.0:
            wait = 0.0
        elif jitter == 0:
            wait = base
        else:
            wait = base * float(np.exp(jitter * self._next_normal()))
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(queue._heap, (now + wait, seq, _WAIT_DONE, visit, -1))

    def _on_quota_exhaust(self, service: str, epoch: int) -> None:
        server = self.servers[service]
        if epoch != server.epoch:
            return  # stale
        self._advance(server, self.queue.now)
        if not server.jobs or server.quota_left > _DONE_EPS:
            self._resched(server)
            return
        server.set_throttled()

    def _on_period_end(self, service: str) -> None:
        server = self.servers[service]
        server.period_event_armed = False
        now = self.queue.now
        self._advance(server, now)
        server.new_period(now)
        if server.jobs:
            self._schedule_period_end(server)
            self._resched(server)

    def _on_arrival(self, horizon: float) -> None:
        queue = self.queue
        now = queue.now
        request_id = self._next_request_id
        self._next_request_id = request_id + 1
        # Inlined _choose_plan.
        idx = bisect_right(self._plan_cum, self._next_plan_u())
        if idx >= self._n_plans:  # u landed past cum[-1]'s rounding
            idx = self._n_plans - 1
        request = RequestState(
            request_id=request_id, plan=self.plans[idx], arrived_at=now
        )
        self.in_flight += 1
        self.window.started += 1
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(queue._heap, (now, seq, _STAGE_START, request, -1))
        aidx = self._arrival_idx
        times = self._arrival_times
        if aidx < len(times):
            self._arrival_idx = aidx + 1
            t = times[aidx]
            if t <= horizon:
                seq = queue._next_seq
                queue._next_seq = seq + 1
                heappush(queue._heap, (t, seq, _ARRIVAL, horizon, -1))

    def _on_background(self, service: str, horizon: float) -> None:
        queue = self.queue
        now = queue.now
        bg_idx = self._bg_idx[service]
        work = self._bg_works[service][bg_idx]
        if work > 0:
            server = self.servers[service]
            jobs = server.jobs
            # Inlined advance.
            elapsed = now - server.last_advance
            if elapsed > 0.0:
                n = len(jobs)
                if n and not server.throttled:
                    used = n * elapsed
                    for job in jobs.values():
                        job.remaining -= elapsed
                    server.usage_seconds += used
                    server.quota_left -= used
                    server.period_usage += used
                elif n:
                    server.throttle_seconds += elapsed
            server.last_advance = now
            job_id = self._next_job_id
            self._next_job_id = job_id + 1
            if not jobs:
                server.sync_period(now)
                self._schedule_period_end(server)
            jobs[job_id] = CpuJob(job_id, work, None)
            epoch = server.epoch = server.epoch + 1
            # Inlined resched.
            if not server.throttled:
                heap = queue._heap
                seq = queue._next_seq
                queue._next_seq = seq + 2
                nxt = min(jobs.values(), key=_JOB_REMAINING)
                remaining = nxt.remaining
                heappush(
                    heap,
                    (
                        now + (remaining if remaining > 0.0 else 0.0),
                        seq,
                        _CPU_DONE,
                        (service, nxt.job_id),
                        epoch,
                    ),
                )
                quota = server.quota_left
                heappush(
                    heap,
                    (
                        now + (quota if quota > 0.0 else 0.0) / len(jobs),
                        seq + 1,
                        _QUOTA_EXHAUST,
                        service,
                        epoch,
                    ),
                )
        bg_idx += 1
        self._bg_idx[service] = bg_idx
        times = self._bg_times[service]
        if bg_idx < len(times):
            t = times[bg_idx]
            if t <= horizon:
                seq = queue._next_seq
                queue._next_seq = seq + 1
                heappush(
                    queue._heap, (t, seq, _BACKGROUND, (service, horizon), -1)
                )
