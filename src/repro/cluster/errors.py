"""Cluster-level errors."""

from __future__ import annotations

__all__ = ["ClusterError", "SchedulingError", "CapacityError"]


class ClusterError(RuntimeError):
    """Base class for cluster failures."""


class SchedulingError(ClusterError):
    """A pod could not be placed on any node."""


class CapacityError(ClusterError):
    """An allocation exceeds the cluster's aggregate capacity."""
