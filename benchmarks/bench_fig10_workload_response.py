"""Fig. 10(a) — response time vs. workload at a fixed allocation.

Paper: response grows with workload roughly linearly over the operating
band, which is what justifies the linear dynamic response target of
Eqn. (9) and the slope regression PEMA runs at startup.

The 2 apps x 10 workload points are
``benchmarks/grids/fig10_workload_response.json``: static cells pinned at
the band-high bottleneck allocation (x1.15) on a noise-free analytical
engine, so each cell's recorded response is exactly the noiseless scan
the figure plots.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core.target import learn_slope

BANDS = {"trainticket": (150.0, 320.0), "sockshop": (400.0, 1000.0)}


def run_fig10():
    run = run_figure_grid("fig10_workload_response")
    cells = list(run)
    rows = []
    fits = {}
    cursor = 0
    for app_name, (lo, hi) in BANDS.items():
        app = build_app(app_name)
        workloads = np.linspace(lo, hi, 10)
        responses = [
            cells[cursor + k][1].results[0].records[0].response
            for k in range(10)
        ]
        cursor += 10
        slope = learn_slope(workloads, responses)
        # Linearity: r^2 of the linear fit.
        pred = np.polyval(np.polyfit(workloads, responses, 1), workloads)
        ss_res = float(np.sum((np.asarray(responses) - pred) ** 2))
        ss_tot = float(np.sum((responses - np.mean(responses)) ** 2))
        r2 = 1.0 - ss_res / ss_tot
        fits[app_name] = (slope, r2)
        for w, r in zip(workloads, responses):
            rows.append(
                [
                    app_name,
                    round(float(w), 0),
                    round((w - lo) / (hi - lo), 2),
                    round(r / app.slo, 3),
                ]
            )
        rows.append([app_name, "slope", f"{slope * 1e3:.3f} ms/rps", f"r2={r2:.3f}"])
    return rows, fits


def test_fig10_workload_response(benchmark):
    rows, fits = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    emit(
        "fig10_workload_response",
        format_table(
            ["app", "workload_rps", "norm_workload", "response/SLO"],
            rows,
            title="Fig. 10a — response vs workload at fixed allocation "
            "(paper: approximately linear growth)",
        ),
    )
    for app_name, (slope, r2) in fits.items():
        assert slope > 0.0, f"{app_name}: response must grow with workload"
        assert r2 > 0.90, f"{app_name}: relation should be near-linear (r2={r2})"
