"""Event-driven microservice simulator.

Executes an application's request plans against CFS-quota servers:

* open-loop arrivals (Poisson or MMPP) pick a request class by weight;
* requests walk their stages; stage entries fan out in parallel; each
  visit is a CPU burst (runs at 1 core while the container's quota lasts)
  followed by a non-CPU wait;
* quota exhaustion freezes a service until the 100 ms period boundary,
  accumulating the throttle time PEMA observes.

The simulator is single-allocation/single-rate per run; the
:class:`~repro.sim.des.engine.DESEngine` wraps runs into the
``Environment`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.spec import AppSpec
from repro.sim.des.arrivals import MMPPArrivals, PoissonArrivals
from repro.sim.des.events import EventKind, EventQueue
from repro.sim.des.metrics import MeasurementWindow
from repro.sim.des.request import RequestState, compile_plans
from repro.sim.des.server import CpuJob, ServiceServer
from repro.sim.des.tracing import Span, TraceLog
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["SimConfig", "MicroserviceSimulator"]

_DONE_EPS = 1e-7


@dataclass(frozen=True)
class SimConfig:
    """Simulator tunables."""

    period: float = 0.1
    """CFS bandwidth period (Linux default 100 ms)."""

    arrivals: str = "mmpp"
    """"poisson" or "mmpp" (burstier, the realistic default)."""

    burst_factor: float = 4.0
    burst_fraction: float = 0.2
    demand_cv: float = 0.5
    """Coefficient of variation of per-visit CPU demand (Gamma)."""

    wait_jitter: float = 0.10
    """Lognormal sigma on the non-CPU wait part of each visit."""

    cpu_speed: float = 1.0
    """Relative clock speed (1.0 = nominal)."""

    background: bool = True
    """Simulate each service's workload-independent baseline CPU demand
    (runtime/GC overhead) as Poisson background jobs."""

    background_interval: float = 0.05
    """Mean gap between background jobs per service (seconds)."""

    trace: bool = False
    """Record Jaeger-like spans (needed only by the analysis package)."""

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.arrivals not in ("poisson", "mmpp"):
            raise ValueError(f"unknown arrival process {self.arrivals!r}")
        if self.demand_cv < 0 or self.wait_jitter < 0:
            raise ValueError("dispersion parameters must be >= 0")
        if self.background_interval <= 0:
            raise ValueError("background_interval must be positive")
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")


@dataclass
class _Visit:
    """Payload threading one visit through CPU_DONE / WAIT_DONE."""

    request: RequestState
    service: str
    visits_left: int
    span_start: float = 0.0
    cpu_time: float = 0.0


class MicroserviceSimulator:
    """One simulation run of one application at one allocation and rate."""

    def __init__(
        self,
        app: AppSpec,
        allocation: Allocation,
        workload_rps: float,
        *,
        config: SimConfig | None = None,
        seed: int = 0,
    ) -> None:
        if workload_rps <= 0:
            raise ValueError("workload must be positive")
        self.app = app
        self.config = config or SimConfig()
        self.rng = np.random.default_rng(seed)
        self.servers = {
            name: ServiceServer(
                name, max(allocation[name], 1e-3), period=self.config.period
            )
            for name in app.service_names
        }
        self.plans = compile_plans(app)
        self._weights = np.asarray([p.weight for p in self.plans])
        self._weights = self._weights / self._weights.sum()
        self.workload_rps = float(workload_rps)
        if self.config.arrivals == "poisson":
            self.arrivals = PoissonArrivals(self.workload_rps, self.rng)
        else:
            self.arrivals = MMPPArrivals(
                self.workload_rps,
                self.rng,
                burst_factor=self.config.burst_factor,
                burst_fraction=self.config.burst_fraction,
            )
        self.queue = EventQueue()
        self.window = MeasurementWindow()
        self.traces = TraceLog() if self.config.trace else None
        self._next_request_id = 0
        self._next_job_id = 0
        self.in_flight = 0
        self._demand_shape = (
            1.0 / self.config.demand_cv**2 if self.config.demand_cv > 0 else 0.0
        )

    # -- demand sampling ---------------------------------------------------------
    def _sample_cpu_demand(self, service: str) -> float:
        mean = self.app.service(service).cpu_demand / self.config.cpu_speed
        if mean <= 0:
            return 0.0
        if self._demand_shape <= 0:
            return mean
        return float(
            self.rng.gamma(self._demand_shape, mean / self._demand_shape)
        )

    def _sample_wait(self, service: str, cpu_time: float) -> float:
        floor = self.app.service(service).latency_floor / self.config.cpu_speed
        base = max(floor - cpu_time, 0.0)
        if base == 0.0 or self.config.wait_jitter == 0:
            return base
        return base * float(np.exp(self.rng.normal(0.0, self.config.wait_jitter)))

    # -- event scheduling ----------------------------------------------------------
    def _resched(self, server: ServiceServer) -> None:
        """Re-arm completion and quota events after any server change."""
        now = self.queue.now
        completion = server.next_completion()
        if completion is not None:
            job_id, dt = completion
            self.queue.push(
                now + dt,
                EventKind.CPU_DONE,
                payload=(server.name, job_id),
                epoch=server.epoch,
            )
        quota_dt = server.time_to_quota_exhaust()
        if quota_dt is not None:
            self.queue.push(
                now + quota_dt,
                EventKind.QUOTA_EXHAUST,
                payload=server.name,
                epoch=server.epoch,
            )

    def _schedule_period_end(self, server: ServiceServer) -> None:
        if server.period_event_armed:
            return
        boundary = (
            int(self.queue.now / self.config.period + 1e-9) + 1
        ) * self.config.period
        self.queue.push(boundary, EventKind.PERIOD_END, payload=server.name)
        server.period_event_armed = True

    # -- visit lifecycle -------------------------------------------------------------
    def _start_visit(self, visit: _Visit) -> None:
        now = self.queue.now
        server = self.servers[visit.service]
        server.advance(now)
        demand = self._sample_cpu_demand(visit.service)
        visit.span_start = now
        visit.cpu_time = demand
        if demand <= 0:
            self._finish_cpu_phase(visit)
            return
        job = CpuJob(
            job_id=self._next_job_id,
            remaining=demand,
            visit_ref=visit,
            started_at=now,
        )
        self._next_job_id += 1
        was_idle = not server.jobs
        server.add_job(job, now)
        if was_idle:
            self._schedule_period_end(server)
        self._resched(server)

    def _finish_cpu_phase(self, visit: _Visit) -> None:
        wait = self._sample_wait(visit.service, visit.cpu_time)
        self.queue.push(self.queue.now + wait, EventKind.WAIT_DONE, payload=visit)

    def _finish_visit(self, visit: _Visit) -> None:
        now = self.queue.now
        if self.traces is not None:
            self.traces.record(
                Span(
                    request_id=visit.request.request_id,
                    service=visit.service,
                    start=visit.span_start,
                    end=now,
                    cpu_time=visit.cpu_time,
                )
            )
        visit.visits_left -= 1
        if visit.visits_left > 0:
            self._start_visit(visit)
            return
        request = visit.request
        request.entries_pending -= 1
        if request.entries_pending > 0:
            return
        if request.finished_stages:
            self._complete_request(request)
        else:
            self.queue.push(
                now + self.app.hop_latency, EventKind.STAGE_START, payload=request
            )

    def _complete_request(self, request: RequestState) -> None:
        self.in_flight -= 1
        self.window.record_completion(self.queue.now - request.arrived_at)

    def _start_stage(self, request: RequestState) -> None:
        entries = request.sample_stage_entries(self.rng)
        if not entries:
            # Every call in the stage sampled to zero visits.
            if request.finished_stages:
                self._complete_request(request)
            else:
                self.queue.push(
                    self.queue.now, EventKind.STAGE_START, payload=request
                )
            return
        for entry in entries:
            self._start_visit(
                _Visit(
                    request=request,
                    service=entry.service,
                    visits_left=entry.visits_left,
                )
            )

    # -- event handlers ------------------------------------------------------------
    def _on_arrival(self, horizon: float) -> None:
        now = self.queue.now
        plan = self.plans[
            int(self.rng.choice(len(self.plans), p=self._weights))
        ]
        request = RequestState(
            request_id=self._next_request_id, plan=plan, arrived_at=now
        )
        self._next_request_id += 1
        self.in_flight += 1
        self.window.started += 1
        self.queue.push(now, EventKind.STAGE_START, payload=request)
        gap = self.arrivals.next_gap()
        if now + gap <= horizon:
            self.queue.push(now + gap, EventKind.ARRIVAL, payload=horizon)

    def _on_cpu_done(self, service: str, job_id: int, epoch: int) -> None:
        server = self.servers[service]
        if epoch != server.epoch or job_id not in server.jobs:
            return  # stale
        server.advance(self.queue.now)
        job = server.jobs[job_id]
        if job.remaining > _DONE_EPS:
            # Numerical drift; re-arm from current state.
            self._resched(server)
            return
        server.remove_job(job_id)
        self._resched(server)
        if job.visit_ref is not None:
            self._finish_cpu_phase(job.visit_ref)
        # Background jobs (visit_ref None) just end.

    def _on_background(self, service: str, horizon: float) -> None:
        """One baseline-demand CPU burst (runtime/GC overhead)."""
        now = self.queue.now
        server = self.servers[service]
        baseline = self.app.service(service).baseline_cores / self.config.cpu_speed
        work = float(
            self.rng.exponential(baseline * self.config.background_interval)
        )
        if work > 0:
            server.advance(now)
            job = CpuJob(job_id=self._next_job_id, remaining=work, visit_ref=None)
            self._next_job_id += 1
            was_idle = not server.jobs
            server.add_job(job, now)
            if was_idle:
                self._schedule_period_end(server)
            self._resched(server)
        gap = float(self.rng.exponential(self.config.background_interval))
        if now + gap <= horizon:
            self.queue.push(
                now + gap, EventKind.BACKGROUND, payload=(service, horizon)
            )

    def _on_quota_exhaust(self, service: str, epoch: int) -> None:
        server = self.servers[service]
        if epoch != server.epoch:
            return  # stale
        server.advance(self.queue.now)
        if not server.jobs or server.quota_left > _DONE_EPS:
            self._resched(server)
            return
        server.set_throttled()
        # PERIOD_END is always armed while the server is busy; the freeze
        # lasts until the next boundary.

    def _on_period_end(self, service: str) -> None:
        server = self.servers[service]
        server.period_event_armed = False
        server.advance(self.queue.now)
        server.new_period(self.queue.now)
        if server.jobs:
            self._schedule_period_end(server)
            self._resched(server)

    # -- run -----------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> IntervalMetrics:
        """Simulate ``warmup + duration`` seconds; measure the last part."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        horizon = warmup + duration
        self.queue.push(self.arrivals.next_gap(), EventKind.ARRIVAL, payload=horizon)
        if self.config.background:
            for name in self.app.service_names:
                if self.app.service(name).baseline_cores > 0:
                    first = float(
                        self.rng.exponential(self.config.background_interval)
                    )
                    self.queue.push(
                        first, EventKind.BACKGROUND, payload=(name, horizon)
                    )
        warmup_done = warmup == 0.0
        while len(self.queue) and self.queue.peek_time() <= horizon:
            event = self.queue.pop()
            if not warmup_done and event.time >= warmup:
                self._reset_measurement(warmup)
                warmup_done = True
            if event.kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload)
            elif event.kind is EventKind.STAGE_START:
                self._start_stage(event.payload)
            elif event.kind is EventKind.CPU_DONE:
                service, job_id = event.payload
                self._on_cpu_done(service, job_id, event.epoch)
            elif event.kind is EventKind.WAIT_DONE:
                self._finish_visit(event.payload)
            elif event.kind is EventKind.QUOTA_EXHAUST:
                self._on_quota_exhaust(event.payload, event.epoch)
            elif event.kind is EventKind.PERIOD_END:
                self._on_period_end(event.payload)
            elif event.kind is EventKind.BACKGROUND:
                service, bg_horizon = event.payload
                self._on_background(service, bg_horizon)
        for server in self.servers.values():
            server.advance(horizon)
        measured = duration if warmup_done else horizon
        return self.window.build(
            self.servers, measured, self.workload_rps
        )

    def _reset_measurement(self, at: float) -> None:
        for server in self.servers.values():
            server.advance(at)
            server.reset_accumulators()
        self.window = MeasurementWindow()
        if self.traces is not None:
            self.traces.clear()
