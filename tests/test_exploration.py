"""Exploration probability: Eqn. (8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exploration import exploration_probability


class TestExplorationProbability:
    def test_floor_at_target(self):
        # r == R: signal 0 -> p_e == B.
        assert exploration_probability(0.25, 0.25, 0.5, 0.05, 0.005) == (
            pytest.approx(0.005)
        )

    def test_max_with_full_headroom(self):
        # r == 0: signal 1 -> p_e == A + B.
        assert exploration_probability(0.0, 0.25, 0.5, 0.05, 0.005) == (
            pytest.approx(0.055)
        )

    def test_decreases_toward_target(self):
        ps = [
            exploration_probability(r, 0.25, 0.5, 0.1, 0.01)
            for r in (0.05, 0.10, 0.15, 0.20, 0.25)
        ]
        assert all(a >= b for a, b in zip(ps, ps[1:]))

    def test_above_target_stays_at_floor(self):
        assert exploration_probability(0.40, 0.25, 0.5, 0.1, 0.01) == (
            pytest.approx(0.01)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0},
            {"alpha": 0.0},
            {"explore_a": 0.05, "explore_b": 0.1},  # B > A
            {"explore_a": 0.7, "explore_b": 0.5},  # A + B > 1
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            response=0.1, target=0.25, alpha=0.5, explore_a=0.1, explore_b=0.01
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            exploration_probability(**defaults)

    def test_negative_response_rejected(self):
        with pytest.raises(ValueError):
            exploration_probability(-1.0, 0.25, 0.5, 0.1, 0.01)

    @given(
        response=st.floats(min_value=0.0, max_value=1.0),
        alpha=st.floats(min_value=0.05, max_value=1.0),
        a=st.floats(min_value=0.0, max_value=0.5),
        b_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_hold(self, response, alpha, a, b_frac):
        b = a * b_frac  # ensures B <= A and A + B <= 1 for a <= 0.5
        p = exploration_probability(response, 0.5, alpha, a, b)
        assert b - 1e-12 <= p <= a + b + 1e-12
