"""Unified telemetry: decision tracing, metrics, Prometheus rendering.

``repro.obs`` is the zero-dependency (stdlib-only) observability
substrate every other layer reports through:

* :mod:`repro.obs.metrics` — process-wide :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments in a
  :class:`MetricsRegistry`, rendered in Prometheus text exposition
  format (the service's ``GET /metrics`` endpoint and ``repro sweep
  --metrics-out`` both serve :func:`default_registry`'s render);
* :mod:`repro.obs.trace` — a :class:`Tracer` of nested spans and
  events with monotonic-clock timestamps, serialized as JSONL;
* :mod:`repro.obs.decision` — the *deterministic* per-step decision
  records behind the ``decision_trace`` capture channel.  These carry
  no timestamps, so scalar, batched, and streamed-service executions
  of the same (spec, repeat) produce byte-identical traces.

Nothing here imports from the rest of ``repro`` — the dependency
arrow points only inward, so core/sweeps/service modules are free to
instrument themselves without cycles.
"""

from repro.obs.decision import (
    capture_decision_info,
    decision_record,
    pema_decision_info,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "capture_decision_info",
    "decision_record",
    "default_registry",
    "pema_decision_info",
]
