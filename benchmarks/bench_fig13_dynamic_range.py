"""Fig. 13 — dynamic workload ranges on TrainTicket, λ ∈ [200, 300].

Paper: PEMA starts with the wide 200~300 range; it splits around iteration
50 into 300/250, then again (250→250/225, 300→300/275) near iterations
80-85; each child starts from the parent's allocation and needs only a few
iterations, with occasional mitigated SLO violations.

The whole scenario is ``benchmarks/grids/fig13_dynamic_range.json``: one
replay cell (the noisy 250-rps trace as a declarative ``replay`` segment)
whose spec opts into the ``manager_state`` artifact channel, so the range
splits and final leaf ranges this report inspects come out of the
persisted artifact instead of a live manager object.
"""

from __future__ import annotations

import numpy as np

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

ITERS = 120


def run_fig13():
    run = run_figure_grid("fig13_dynamic_range")
    artifact = run.artifacts[0]
    return artifact.manager_state(0), artifact.results[0]


def test_fig13_dynamic_range(benchmark):
    state, result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    rows = [
        [
            it,
            round(float(result.workloads[it]), 0),
            round(float(result.total_cpu[it]), 1),
            round(float(result.responses[it] * 1000), 0),
        ]
        for it in range(0, ITERS, 8)
    ]
    split_rows = [
        [
            s["step"],
            f"{s['parent'][0]:g}~{s['parent'][1]:g}",
            f"{s['lower'][0]:g}~{s['lower'][1]:g} (#{s['lower_pema_id']})",
            f"{s['upper'][0]:g}~{s['upper'][1]:g} (#{s['upper_pema_id']})",
        ]
        for s in state["splits"]
    ]
    range_labels = [
        f"{r['low']:g}~{r['high']:g}" for r in state["ranges"]
    ]
    emit(
        "fig13_dynamic_range",
        format_table(
            ["iter", "workload_rps", "total_cpu", "response_ms"],
            rows,
            title="Fig. 13 — PEMA on TrainTicket with dynamic workload "
            "ranges (SLO 900 ms)",
        )
        + "\n\n"
        + format_table(
            ["at_step", "parent", "lower_child", "upper_child"],
            split_rows,
            title="Range splits (paper: 200~300 splits ~iter 50, children "
            "split again ~80-85)",
        )
        + f"\n\nfinal ranges: {', '.join(range_labels)}",
    )
    # Shape claims: splitting actually happened, down toward 25-rps ranges.
    assert len(state["splits"]) >= 2
    widths = sorted({r["high"] - r["low"] for r in state["ranges"]})
    assert widths[0] <= 50.0
    # Parents keep the upper child: PEMA #1 owns the topmost range.
    top = max(state["ranges"], key=lambda r: r["high"])
    assert top["pema_id"] == 1
    assert result.violation_rate() < 0.25
