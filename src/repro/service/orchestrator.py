"""The Orchestrator: app registration, guardian tasks, tick scheduling.

One :class:`Orchestrator` owns the whole control plane: a
:class:`~repro.service.guardian.Guardian` per registered application
(each consuming its bounded metric queue in its own asyncio task), one
shared :class:`~repro.service.rescaler.Rescaler`, and one
:class:`~repro.service.state.ServiceStateStore`.  Metric samples enter
through :meth:`submit` (or the batteries-included :meth:`drive`, which
streams a load driver's schedule); decisions leave through the state
store's query surface and the HTTP API
(:mod:`repro.service.http`).

Concurrency model: everything mutates on one asyncio event loop.
Guardians are independent tasks, so a slow app never blocks another
app's ticks; backpressure is per-app (a bounded queue blocks the
producer, not the plane).  Graceful shutdown enqueues a sentinel behind
every pending sample, joins the tasks, and flushes the state store —
so every accepted sample is either ticked or accounted for before the
process exits.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any

from repro.experiments.spec import ExperimentSpec
from repro.service.drivers import LOAD_DRIVERS, LoadDriver
from repro.service.guardian import Guardian
from repro.service.rescaler import Rescaler
from repro.service.state import ServiceStateStore
from repro.service.telemetry import GUARDIAN_QUEUE_PEAK, GUARDIAN_TICK_SECONDS
from repro.service.types import MetricSample, ServiceError

__all__ = ["Orchestrator"]

_STOP = object()  # queue sentinel: drain, then exit the guardian task


class Orchestrator:
    """Long-lived control plane over streaming per-interval metrics."""

    def __init__(
        self,
        *,
        store: ServiceStateStore | None = None,
        rescaler: Rescaler | None = None,
        queue_size: int = 64,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.store = store if store is not None else ServiceStateStore()
        self.rescaler = rescaler or Rescaler()
        self.queue_size = queue_size
        self.guardians: dict[str, Guardian] = {}
        self.ticks = 0
        self._tasks: dict[str, asyncio.Task] = {}
        self._started = False
        self._stopping = False
        self._shutdown_requested = asyncio.Event()

    # -- registration ------------------------------------------------------------
    def register(
        self,
        spec: ExperimentSpec,
        *,
        app_id: str | None = None,
        repeat: int = 0,
        queue_size: int | None = None,
    ) -> Guardian:
        """Admit one application (an :class:`ExperimentSpec`) to the plane.

        ``app_id`` defaults to the spec's name; ids are unique.  When
        the service is already running, the guardian's consumer task
        starts immediately.
        """
        app_id = app_id or spec.name
        if not app_id:
            raise ServiceError("app needs an id (or a named spec)")
        if app_id in self.guardians:
            raise ServiceError(f"app {app_id!r} is already registered")
        guardian = Guardian(
            app_id,
            spec,
            repeat,
            rescaler=self.rescaler,
            queue_size=queue_size or self.queue_size,
        )
        self.guardians[app_id] = guardian
        if self._started and not self._stopping:
            self._tasks[app_id] = asyncio.create_task(
                self._guardian_loop(guardian), name=f"guardian:{app_id}"
            )
        return guardian

    def unregister(self, app_id: str) -> None:
        """Remove an app (its task is cancelled, its history dropped)."""
        guardian = self._guardian(app_id)
        task = self._tasks.pop(app_id, None)
        if task is not None:
            task.cancel()
        del self.guardians[app_id]
        self.store.forget(app_id)
        self.rescaler.forget(app_id)
        GUARDIAN_TICK_SECONDS.remove(app=app_id)
        GUARDIAN_QUEUE_PEAK.remove(app=app_id)

    def _guardian(self, app_id: str) -> Guardian:
        try:
            return self.guardians[app_id]
        except KeyError:
            known = ", ".join(sorted(self.guardians)) or "<none>"
            raise ServiceError(
                f"unknown app {app_id!r} (registered: {known})"
            ) from None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Start one consumer task per registered guardian."""
        if self._started:
            return
        self._started = True
        for app_id, guardian in self.guardians.items():
            if app_id not in self._tasks:
                self._tasks[app_id] = asyncio.create_task(
                    self._guardian_loop(guardian), name=f"guardian:{app_id}"
                )

    async def _guardian_loop(self, guardian: Guardian) -> None:
        while True:
            sample = await guardian.queue.get()
            try:
                if sample is _STOP:
                    return
                if guardian.error is not None:
                    continue  # poisoned guardian: drop, never block the driver
                started = perf_counter()
                decision = guardian.tick(sample)
                GUARDIAN_TICK_SECONDS.observe(
                    perf_counter() - started, app=guardian.app_id
                )
                self.ticks += 1
                self.store.record_decision(guardian, decision)
            except ServiceError as exc:
                guardian.error = str(exc)
            except Exception as exc:  # keep the plane alive on app failure
                guardian.error = f"{type(exc).__name__}: {exc}"
            finally:
                guardian.queue.task_done()

    async def submit(self, sample: MetricSample) -> None:
        """Enqueue one metric sample (awaits when the app's queue is full).

        The bounded queue is the backpressure boundary: a driver that
        outruns an app's control loop parks here instead of growing
        memory without limit.
        """
        if self._stopping:
            raise ServiceError("service is shutting down")
        guardian = self._guardian(sample.app)
        await guardian.queue.put(sample)
        GUARDIAN_QUEUE_PEAK.set_max(
            float(guardian.queue.qsize()), app=guardian.app_id
        )

    async def join(self) -> None:
        """Wait until every accepted sample has been ticked."""
        await asyncio.gather(
            *(g.queue.join() for g in self.guardians.values())
        )

    async def drive(
        self,
        n_steps: int | None = None,
        *,
        driver: LoadDriver | str | None = None,
        apps: list[str] | None = None,
        tick: float = 0.0,
    ) -> int:
        """Stream a load driver's schedule through the plane.

        Each selected app gets ``n_steps`` samples (default: whatever
        remains of its spec's horizon), submitted round-robin so all
        apps advance together — the simulated-time tick scheduler.
        ``tick`` seconds of wall-clock sleep between interval rounds
        turns the same schedule into a real-time (or scaled) run; 0
        streams as fast as backpressure allows.  Returns the number of
        samples submitted; a requested shutdown interrupts the stream.
        """
        if driver is None or isinstance(driver, str):
            driver = LOAD_DRIVERS.build(driver or "replay")
        selected = [
            self._guardian(app_id)
            for app_id in (apps if apps is not None else self.guardians)
        ]
        plans: list[tuple[Guardian, int, Any]] = []
        for guardian in selected:
            steps = (
                n_steps
                if n_steps is not None
                else max(0, guardian.spec.n_steps - guardian.steps_done)
            )
            plans.append(
                (guardian, guardian.steps_done, driver.rates(guardian, steps))
            )
        submitted = 0
        rounds = max((len(rates) for _, _, rates in plans), default=0)
        for k in range(rounds):
            if self._shutdown_requested.is_set():
                break
            for guardian, base_step, rates in plans:
                if k < len(rates):
                    await self.submit(
                        MetricSample(
                            app=guardian.app_id,
                            rps=float(rates[k]),
                            step=base_step + k,
                        )
                    )
                    submitted += 1
            if tick > 0:
                await asyncio.sleep(tick)
        await self.join()
        return submitted

    def request_shutdown(self) -> None:
        """Flag the plane for shutdown (drives abort at the next round)."""
        self._shutdown_requested.set()

    async def wait_shutdown_requested(self) -> None:
        await self._shutdown_requested.wait()

    async def shutdown(self) -> dict[str, Any]:
        """Graceful stop: drain queues, join tasks, flush the state store.

        Returns the flush summary (per-app steps/completeness/whether a
        sweep-unit entry was persisted).
        """
        self.request_shutdown()
        self._stopping = True
        for guardian in self.guardians.values():
            await guardian.queue.put(_STOP)
        if self._tasks:
            await asyncio.gather(
                *self._tasks.values(), return_exceptions=True
            )
        self._tasks.clear()
        self._started = False
        return self.store.flush(self.guardians)

    # -- query surface (called on the event-loop thread; see http.py) ------------
    def status(self) -> dict[str, Any]:
        """The ``/apps`` payload: one status row per registered app."""
        return {
            "apps": [
                guardian.status()
                for _, guardian in sorted(self.guardians.items())
            ],
            "ticks": self.ticks,
            "stopping": self._stopping,
        }

    def app_status(self, app_id: str) -> dict[str, Any]:
        return self._guardian(app_id).status()

    def decisions(
        self, app_id: str, *, since: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        """The ``/decisions`` payload for one app."""
        guardian = self._guardian(app_id)
        return {
            "app": app_id,
            "total": self.store.decision_count(app_id),
            "decisions": self.store.decisions(
                app_id, since=since, limit=limit
            ),
            "steps_done": guardian.steps_done,
        }

    def state(self, app_id: str) -> dict[str, Any]:
        """The ``/state`` payload: live allocation + manager snapshot."""
        return self._guardian(app_id).state()
