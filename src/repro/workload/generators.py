"""Deterministic workload generators used across the experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "SinusoidalWorkload",
    "BurstWorkload",
]


@dataclass(frozen=True)
class ConstantWorkload:
    """Fixed offered load (the single-workload experiments, Figs. 11-12)."""

    rps: float

    def __post_init__(self) -> None:
        if self.rps < 0:
            raise ValueError("rps must be >= 0")

    def rate(self, t: float) -> float:
        return self.rps

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.shape(times), float(self.rps), dtype=np.float64)


class StepWorkload:
    """Piecewise-constant load: ``[(t_start, rps), ...]`` sorted by time."""

    def __init__(self, steps: list[tuple[float, float]]):
        if not steps:
            raise ValueError("need at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ValueError("steps must be sorted by time")
        if any(r < 0 for _, r in steps):
            raise ValueError("rates must be >= 0")
        self._times = np.asarray(times, dtype=np.float64)
        self._rates = [r for _, r in steps]

    def rate(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        if idx < 0:
            return self._rates[0]
        return self._rates[idx]

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        idx = np.searchsorted(self._times, times, side="right") - 1
        rates = np.asarray(self._rates, dtype=np.float64)
        return rates[np.maximum(idx, 0)]


@dataclass(frozen=True)
class RampWorkload:
    """Linear ramp from ``start_rps`` to ``end_rps`` over ``duration``."""

    start_rps: float
    end_rps: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.start_rps < 0 or self.end_rps < 0:
            raise ValueError("rates must be >= 0")

    def rate(self, t: float) -> float:
        frac = min(max(t / self.duration, 0.0), 1.0)
        return self.start_rps + (self.end_rps - self.start_rps) * frac

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        frac = np.minimum(np.maximum(times / self.duration, 0.0), 1.0)
        return self.start_rps + (self.end_rps - self.start_rps) * frac


@dataclass(frozen=True)
class SinusoidalWorkload:
    """Sinusoid between ``low`` and ``high`` with the given period."""

    low: float
    high: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")
        if self.period <= 0:
            raise ValueError("period must be > 0")

    def rate(self, t: float) -> float:
        mid = 0.5 * (self.low + self.high)
        amp = 0.5 * (self.high - self.low)
        return mid + amp * float(np.sin(2.0 * np.pi * t / self.period + self.phase))

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        mid = 0.5 * (self.low + self.high)
        amp = 0.5 * (self.high - self.low)
        return mid + amp * np.sin(2.0 * np.pi * times / self.period + self.phase)


class BurstWorkload:
    """Base load with rectangular bursts (the Fig. 18 experiment).

    ``bursts`` is a list of ``(start, duration, rps)`` tuples; overlapping
    bursts take the maximum level.
    """

    def __init__(self, base_rps: float, bursts: list[tuple[float, float, float]]):
        if base_rps < 0:
            raise ValueError("base_rps must be >= 0")
        for start, duration, rps in bursts:
            if duration <= 0 or rps < 0:
                raise ValueError("bursts need positive duration and rps >= 0")
        self.base_rps = base_rps
        self.bursts = list(bursts)

    def rate(self, t: float) -> float:
        level = self.base_rps
        for start, duration, rps in self.bursts:
            if start <= t < start + duration:
                level = max(level, rps)
        return level

    def rate_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        level = np.full(times.shape, float(self.base_rps), dtype=np.float64)
        for start, duration, rps in self.bursts:
            inside = (start <= times) & (times < start + duration)
            level[inside] = np.maximum(level[inside], rps)
        return level
