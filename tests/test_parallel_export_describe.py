"""Parallel runner, CSV export, and app description utilities."""

import csv
from pathlib import Path

import numpy as np
import pytest

from repro.apps import build_app, describe_app, describe_plan
from repro.bench import parallel_pema_totals, run_parallel
from repro.baselines import StaticAllocator
from repro.core import ControlLoop
from repro.metrics import (
    MetricsCollector,
    loop_result_to_csv,
    store_to_csv,
)
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload


def _square(x: float) -> float:
    return x * x


class TestRunParallel:
    def test_inline_mode(self):
        out = run_parallel(_square, [{"x": 2.0}, {"x": 3.0}], max_workers=1)
        assert out == [4.0, 9.0]

    def test_empty(self):
        assert run_parallel(_square, []) == []

    def test_process_mode_matches_inline(self):
        kwargs = [{"x": float(i)} for i in range(6)]
        inline = run_parallel(_square, kwargs, max_workers=1)
        parallel = run_parallel(_square, kwargs, max_workers=2)
        assert inline == parallel

    def test_validation(self):
        with pytest.raises(ValueError):
            run_parallel(_square, [{"x": 1.0}], max_workers=0)

    def test_parallel_pema_totals_deterministic(self):
        a = parallel_pema_totals(
            "sockshop", 700.0, n_steps=15, runs=2, max_workers=1
        )
        b = parallel_pema_totals(
            "sockshop", 700.0, n_steps=15, runs=2, max_workers=2
        )
        np.testing.assert_allclose(a, b)
        assert a.shape == (2,)

    def test_runs_validation(self):
        with pytest.raises(ValueError):
            parallel_pema_totals("sockshop", 700.0, runs=0)


class TestExport:
    def _run(self, tiny_app, collector=None):
        engine = AnalyticalEngine(tiny_app, seed=1)
        static = StaticAllocator(tiny_app.generous_allocation(100.0))
        loop = ControlLoop(
            engine, static, ConstantWorkload(100.0), slo=tiny_app.slo,
            collector=collector,
        )
        return loop.run(5)

    def test_loop_result_csv(self, tiny_app, tmp_path):
        result = self._run(tiny_app)
        path = tmp_path / "run.csv"
        rows = loop_result_to_csv(result, path)
        assert rows == 5
        with path.open() as fh:
            parsed = list(csv.reader(fh))
        assert parsed[0][:3] == ["step", "time", "workload_rps"]
        assert len(parsed) == 6  # header + 5 records
        assert any(col.startswith("cpu[") for col in parsed[0])

    def test_loop_result_csv_empty(self, tmp_path):
        from repro.core.loop import LoopResult

        with pytest.raises(ValueError):
            loop_result_to_csv(LoopResult(), tmp_path / "x.csv")

    def test_store_csv(self, tiny_app, tmp_path):
        collector = MetricsCollector()
        self._run(tiny_app, collector=collector)
        path = tmp_path / "metrics.csv"
        rows = store_to_csv(collector.store, path)
        assert rows > 0
        with path.open() as fh:
            parsed = list(csv.reader(fh))
        assert parsed[0] == ["metric", "labels", "time", "value"]
        metrics = {row[0] for row in parsed[1:]}
        assert "latency_p95" in metrics
        assert "cpu_utilization" in metrics
        labelled = [r for r in parsed[1:] if r[1]]
        assert any("service=" in r[1] for r in labelled)


class TestDescribe:
    def test_describe_app_mentions_everything(self):
        app = build_app("sockshop")
        text = describe_app(app)
        for svc in app.service_names:
            assert svc in text
        assert "SLO 250 ms" in text
        assert "[frontend]" in text and "[db]" in text

    def test_describe_plan(self):
        app = build_app("sockshop")
        text = describe_plan(app, "checkout")
        assert "stage" in text
        assert "orders" in text

    def test_describe_plan_unknown(self):
        app = build_app("sockshop")
        with pytest.raises(KeyError):
            describe_plan(app, "nope")

    def test_cli_describe(self, capsys):
        from repro.cli import main

        assert main(["describe", "--app", "trainticket",
                     "--plan", "search"]) == 0
        out = capsys.readouterr().out
        assert "seat" in out
        assert "trainticket/search" in out
