"""AppSpec / ServiceSpec / Stage / RequestClass validation and helpers."""

import networkx as nx
import pytest

from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage


def svc(name="s", **kw):
    defaults = dict(cpu_demand=0.001, latency_floor=0.01)
    defaults.update(kw)
    return ServiceSpec(name=name, **defaults)


class TestServiceSpec:
    def test_valid(self):
        s = svc(tier="db", language="mysql", burstiness=2.0)
        assert s.tier == "db"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_demand": -1.0},
            {"latency_floor": 0.0},
            {"burstiness": 0.0},
            {"baseline_cores": -0.1},
            {"tier": "weird"},
            {"memory_mb": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            svc(**kwargs)

    def test_empty_name(self):
        with pytest.raises(ValueError):
            ServiceSpec(name="", cpu_demand=0.001, latency_floor=0.01)


class TestStage:
    def test_seq(self):
        st = Stage.seq("a", 2.0)
        assert st.parallel == (("a", 2.0),)

    def test_fanout_mixed(self):
        st = Stage.fanout("a", ("b", 0.5))
        assert st.parallel == (("a", 1.0), ("b", 0.5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Stage(())

    def test_nonpositive_visits(self):
        with pytest.raises(ValueError):
            Stage((("a", 0.0),))


class TestRequestClass:
    def test_visits_aggregation(self):
        rc = RequestClass(
            name="r",
            weight=1.0,
            stages=(Stage.seq("a"), Stage.fanout("a", ("b", 0.5))),
        )
        assert rc.visits() == {"a": 2.0, "b": 0.5}

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            RequestClass(name="r", weight=0.0, stages=(Stage.seq("a"),))

    def test_needs_stages(self):
        with pytest.raises(ValueError):
            RequestClass(name="r", weight=0.5, stages=())


class TestAppSpec:
    def make(self, **kw):
        defaults = dict(
            name="app",
            services=(svc("a"), svc("b")),
            request_classes=(
                RequestClass(
                    name="r", weight=1.0, stages=(Stage.seq("a"), Stage.seq("b"))
                ),
            ),
            slo=0.1,
        )
        defaults.update(kw)
        return AppSpec(**defaults)

    def test_valid(self):
        app = self.make()
        assert app.n_services == 2

    def test_duplicate_services(self):
        with pytest.raises(ValueError):
            self.make(services=(svc("a"), svc("a")))

    def test_unknown_service_in_plan(self):
        with pytest.raises(ValueError):
            self.make(
                request_classes=(
                    RequestClass(name="r", weight=1.0, stages=(Stage.seq("zzz"),)),
                )
            )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            self.make(
                request_classes=(
                    RequestClass(name="r", weight=0.5, stages=(Stage.seq("a"),)),
                )
            )

    def test_visit_rates(self, tiny_app):
        rates = tiny_app.visit_rates
        # front: 1 visit in both classes
        assert rates["front"] == pytest.approx(1.0)
        # db: 1 visit read (0.7) + 2 visits write (0.3)
        assert rates["db"] == pytest.approx(0.7 * 1 + 0.3 * 2)
        # cache: 0.8 visits in read only
        assert rates["cache"] == pytest.approx(0.7 * 0.8)

    def test_graph_covers_services(self, tiny_app):
        g = tiny_app.graph()
        assert isinstance(g, nx.DiGraph)
        assert set(tiny_app.service_names) <= set(g.nodes)

    def test_uniform_allocation(self, tiny_app):
        a = tiny_app.uniform_allocation(0.5)
        assert a.total() == pytest.approx(0.5 * 4)

    def test_generous_allocation_headroom(self, tiny_app):
        small = tiny_app.generous_allocation(100.0, headroom=1.5)
        large = tiny_app.generous_allocation(100.0, headroom=3.0)
        assert large.total() > small.total()
        assert all(large[n] >= 0.2 for n in large)

    def test_service_lookup(self, tiny_app):
        assert tiny_app.service("front").tier == "frontend"
        with pytest.raises(KeyError):
            tiny_app.service("zzz")
