"""Fig. 18 — bursty workload handling on SockShop.

Paper: with all workload ranges already traversed, two 10-minute bursts
(400 → ~750 rps and 400 → ~650 rps) are absorbed by switching to the burst
range's stored allocation within one control interval; response stays
below the SLO.

The whole scenario is ``benchmarks/grids/fig18_burst.json``: one
145-interval cell whose phased workload trains the workload-aware manager
on a noisy sinusoid over the full band (120 intervals) and then replays
the Fig. 18 burst trace (25 intervals, clock restarted) — the same
manager and engine state carried through both phases, exactly as the two
back-to-back control loops ran it before the port.
"""

from __future__ import annotations

from benchmarks._grids import run_figure_grid
from benchmarks._report import emit
from repro.bench import format_table

TRAIN_STEPS = 120
BURST_STEPS = 25  # 50 minutes at 2-minute intervals
_BURST_START = TRAIN_STEPS * 120.0


def run_fig18():
    run = run_figure_grid("fig18_burst")
    result = run.artifacts[0].results[0]
    return result.records[TRAIN_STEPS:]


def test_fig18_burst(benchmark):
    records = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    assert len(records) == BURST_STEPS
    rows = [
        [
            int((record.time - _BURST_START) / 60),
            round(float(record.workload), 0),
            round(float(record.total_cpu), 2),
            round(float(record.response * 1000), 0),
            "*" if record.violated else "",
        ]
        for record in records
    ]
    emit(
        "fig18_burst",
        format_table(
            ["minute", "workload_rps", "total_cpu", "response_ms", "viol"],
            rows,
            title="Fig. 18 — SockShop bursts 400→750 and 400→650 rps "
            "(SLO 250 ms; paper: CPU switches with the burst, QoS held)",
        ),
    )
    total_cpu = [record.total_cpu for record in records]
    base = sum(total_cpu[5:9]) / 4  # steady 400-rps allocation
    burst1 = sum(total_cpu[11:15]) / 4  # inside the 750-rps burst
    assert burst1 > base * 1.05  # CPU rises for the burst
    after = sum(total_cpu[-3:]) / 3
    assert after < burst1  # and comes back down
    violation_rate = sum(r.violated for r in records) / len(records)
    assert violation_rate <= 0.2
