"""Tests for repro.faults — the deterministic fault-injection layer.

The load-bearing property: every disturbance schedule is a pure
function of (spec, step), shared by the scalar hook closures, the
batched sweep runner, and the streamed control plane — so all three
execution modes produce byte-identical unit payloads for any faulted
spec.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.faults import (
    ENGINE_FAULT_KINDS,
    FAULTS,
    STREAM_FAULT_KINDS,
    FaultAction,
    FlashCrowdTrace,
    fault_actions,
    normalize_fault_params,
    reorder_window_for,
    stream_delivery,
    stream_fault_entries,
)
from repro.service import Orchestrator
from repro.sweeps import (
    SweepGrid,
    SweepStore,
    classify_unit,
    grid_summary_json,
    run_grid,
    run_sweep_cached,
    run_units_batched,
)
from repro.workload.generators import ConstantWorkload
from tests.conftest import make_sweep_spec


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def make_spec(hooks=(), **overrides) -> ExperimentSpec:
    data = {
        "name": "faulted",
        "workload": {"kind": "constant", "params": {"rps": 320.0}},
        "n_steps": 6,
        "hooks": list(hooks),
    }
    data.update(overrides)
    return make_sweep_spec(**data)


# -- the shared schedule ---------------------------------------------------------
class TestFaultSchedules:
    def test_service_crash_window(self):
        params = normalize_fault_params(
            "service_crash",
            {"at": 3, "duration": 2, "service": "frontend"},
        )
        assert fault_actions("service_crash", params, 2) == []
        assert fault_actions("service_crash", params, 3) == [
            FaultAction("capacity", "frontend", 0.05)
        ]
        assert fault_actions("service_crash", params, 4) == []
        assert fault_actions("service_crash", params, 5) == [
            FaultAction("capacity", "frontend", 1.0)
        ]
        assert fault_actions("service_crash", params, 6) == []

    def test_calibration_drift_is_pure_function_of_step(self):
        params = normalize_fault_params(
            "calibration_drift",
            {"rate": 0.02, "at": 2, "every": 2, "until": 9},
        )
        # Absolute compound values, reproducible from any step alone.
        for step, expect in ((2, 1.02), (4, 1.02**2), (6, 1.02**3),
                             (8, 1.02**4)):
            actions = fault_actions("calibration_drift", params, step)
            assert actions == [FaultAction("demand", None, expect)]
        for quiet in (0, 1, 3, 5, 7, 9, 10):
            assert fault_actions("calibration_drift", params, quiet) == []

    def test_correlated_surge_hits_every_service(self):
        params = normalize_fault_params(
            "correlated_surge",
            {"services": ["frontend", "carts"], "factor": 1.5,
             "at": 1, "duration": 3},
        )
        assert fault_actions("correlated_surge", params, 1) == [
            FaultAction("demand", "frontend", 1.5),
            FaultAction("demand", "carts", 1.5),
        ]
        assert fault_actions("correlated_surge", params, 2) == []
        assert fault_actions("correlated_surge", params, 4) == [
            FaultAction("demand", "frontend", 1.0),
            FaultAction("demand", "carts", 1.0),
        ]

    def test_normalization_rejects_bad_values(self):
        with pytest.raises(ValueError):
            normalize_fault_params(
                "service_crash",
                {"at": 0, "duration": 0, "service": "frontend"},
            )
        with pytest.raises(ValueError):
            normalize_fault_params("calibration_drift", {"rate": -1.5})
        with pytest.raises(ValueError):
            normalize_fault_params(
                "correlated_surge",
                {"services": [], "factor": 1.5, "at": 0, "duration": 1},
            )
        with pytest.raises(TypeError):  # unknown parameter key
            normalize_fault_params("metric_dropout", {"at": 1, "bogus": 2})
        with pytest.raises(KeyError):
            normalize_fault_params("reboot_the_moon", {"at": 1})

    def test_catalogue_lists_every_kind(self):
        for kind in ENGINE_FAULT_KINDS + STREAM_FAULT_KINDS + ("flash_crowd",):
            assert kind in FAULTS


class TestStreamFaultPlanning:
    def test_entries_and_window(self):
        spec = make_spec(hooks=[
            {"kind": "metric_delay", "params": {"at": 3, "rounds": 2}},
            {"kind": "metric_dropout", "params": {"at": 5}},
            {"kind": "service_crash",
             "params": {"at": 1, "duration": 1, "service": "frontend"}},
        ])
        kinds = [kind for kind, _ in stream_fault_entries(spec)]
        assert kinds == ["metric_delay", "metric_dropout"]
        assert reorder_window_for(spec) == 2
        assert reorder_window_for(make_spec()) == 0

    def test_delivery_composition(self):
        entries = stream_fault_entries(make_spec(hooks=[
            {"kind": "metric_delay", "params": {"at": 4, "rounds": 2}},
            {"kind": "metric_duplicate", "params": {"at": 4}},
            {"kind": "metric_dropout", "params": {"at": 1}},
        ]))
        assert stream_delivery(entries, 0) == (0, 1)
        assert stream_delivery(entries, 1) == (1, 1)
        assert stream_delivery(entries, 4) == (2, 2)


# -- the flash-crowd workload ----------------------------------------------------
class TestFlashCrowd:
    def trace(self, **overrides):
        params = dict(at=100.0, ramp=50.0, factor=3.0, hold=40.0, decay=20.0)
        params.update(overrides)
        return FlashCrowdTrace(ConstantWorkload(rps=100.0), **params)

    def test_envelope_shape(self):
        trace = self.trace()
        assert trace.envelope(0.0) == 1.0
        assert trace.envelope(99.9) == 1.0
        assert trace.envelope(125.0) == pytest.approx(2.0)  # mid-ramp
        assert trace.envelope(150.0) == 3.0  # peak start
        assert trace.envelope(189.9) == 3.0  # still holding
        assert trace.envelope(200.0) == pytest.approx(2.0)  # mid-decay
        assert trace.envelope(210.0) == 1.0  # fully decayed

    def test_rate_batch_bit_identical_to_scalar(self):
        trace = self.trace()
        times = np.linspace(0.0, 260.0, 521)
        batch = trace.rate_batch(times)
        scalar = np.array([trace.rate(float(t)) for t in times])
        assert np.array_equal(batch, scalar)  # bitwise, not approx

    def test_validation(self):
        with pytest.raises(ValueError):
            self.trace(ramp=0.0)
        with pytest.raises(ValueError):
            self.trace(factor=0.0)
        with pytest.raises(ValueError):
            self.trace(at=-1.0)


# -- three-mode byte identity ----------------------------------------------------
FAULT_HOOK_CASES = {
    "service_crash": [{"kind": "service_crash",
                       "params": {"at": 1, "duration": 2,
                                  "service": "frontend"}}],
    "calibration_drift": [{"kind": "calibration_drift",
                           "params": {"rate": 0.03, "at": 1}}],
    "correlated_surge": [{"kind": "correlated_surge",
                          "params": {"services": ["frontend", "carts"],
                                     "factor": 1.7, "at": 1,
                                     "duration": 2}}],
    "stream_mix": [{"kind": "metric_delay", "params": {"at": 2, "rounds": 1}},
                   {"kind": "metric_dropout", "params": {"at": 4}},
                   {"kind": "metric_duplicate", "params": {"at": 0}}],
}


def streamed_payload(spec: ExperimentSpec) -> dict:
    async def run():
        orch = Orchestrator()
        guardian = orch.register(spec)
        await orch.start()
        await orch.drive()
        await orch.shutdown()
        assert guardian.error is None
        assert guardian.complete
        return guardian.result_payload()

    return asyncio.run(run())


class TestThreeModeParity:
    @settings(max_examples=10, deadline=None)
    @given(
        fault=st.sampled_from(sorted(FAULT_HOOK_CASES) + ["flash_crowd"]),
        kind=st.sampled_from(("pema", "rule", "pid", "brownout")),
        seed=st.integers(min_value=0, max_value=25),
    )
    def test_scalar_batched_streamed_bytes_match(self, fault, kind, seed):
        overrides = {"autoscaler": {"kind": kind}, "seed": seed}
        if fault == "flash_crowd":
            overrides["workload"] = {
                "kind": "flash_crowd",
                "params": {"base": {"kind": "constant",
                                    "params": {"rps": 300.0}},
                           "at": 30.0, "ramp": 30.0, "factor": 2.0,
                           "hold": 30.0},
            }
            spec = make_spec(**overrides)
        else:
            spec = make_spec(hooks=FAULT_HOOK_CASES[fault], **overrides)
        key, reason = classify_unit(spec)
        assert key is not None, f"faulted unit fell back: {reason}"
        scalar = dumps(_run_unit_worker(spec.to_dict(), 0))
        batched = dumps(run_units_batched([(spec, 0)])[0])
        streamed = dumps(streamed_payload(spec))
        assert scalar == batched
        assert scalar == streamed

    def test_mixed_clean_and_faulted_sweep(self):
        specs = [
            make_spec(name="clean"),
            make_spec(name="crash",
                      hooks=FAULT_HOOK_CASES["service_crash"]),
            make_spec(name="surge",
                      hooks=FAULT_HOOK_CASES["correlated_surge"]),
        ]
        scalar, _ = run_sweep_cached(specs, batch=False)
        batched, report = run_sweep_cached(specs, batch=True)
        assert report.fallbacks == {}
        assert report.scalar_units == 0
        assert dumps([a.to_dict() for a in scalar]) == dumps(
            [a.to_dict() for a in batched]
        )


# -- kill-and-resume over a faulted grid -----------------------------------------
FAULT_GRID = {
    "name": "faulted-mini",
    "base": {
        "app": "sockshop",
        "workload": {"kind": "constant", "params": {"rps": 320.0}},
        "n_steps": 6,
        "seed": 0,
        "repeats": 2,
        "hooks": [{"kind": "service_crash",
                   "params": {"at": 2, "duration": 2,
                              "service": "frontend"}}],
    },
    "axes": [
        {"name": "autoscaler", "values": [
            {"label": "pema"},
            {"label": "pid", "autoscaler": {"kind": "pid", "params": {}}},
        ]},
    ],
}


class TestFaultedSweepResume:
    def test_interrupted_sweep_resumes_to_identical_bytes(self, tmp_path):
        grid_path = tmp_path / "faulted_mini.json"
        grid_path.write_text(json.dumps(FAULT_GRID))
        grid = SweepGrid.read(grid_path)
        cells = grid.cells()
        units = sum(cell.spec.repeats for cell in cells)

        cold_store = SweepStore(tmp_path / "cold")
        cold = grid_summary_json(run_grid(grid, store=cold_store, batch=True))

        # Simulate a killed sweep: only the first cell's units landed.
        resume_store = SweepStore(tmp_path / "resume")
        run_sweep_cached([cells[0].spec], store=resume_store, batch=True)
        resumed = run_grid(grid, store=resume_store, batch=True)
        assert resumed.report.cache_hits == cells[0].spec.repeats
        assert resumed.report.computed == units - cells[0].spec.repeats
        assert grid_summary_json(resumed) == cold

        # The resumed store holds exactly the cold store's bytes.
        cold_bytes = sorted(p.read_bytes() for p in cold_store.entry_paths())
        resumed_bytes = sorted(
            p.read_bytes() for p in resume_store.entry_paths()
        )
        assert cold_bytes == resumed_bytes


# -- shipped robustness grids ----------------------------------------------------
ROBUSTNESS_GRIDS = (
    "benchmarks/grids/robustness_service_crash.json",
    "benchmarks/grids/robustness_calibration_drift.json",
    "benchmarks/grids/robustness_flash_crowd.json",
    "benchmarks/grids/robustness_correlated_surge.json",
    "benchmarks/grids/robustness_smoke.json",
)


class TestShippedRobustnessGrids:
    @pytest.mark.parametrize("path", ROBUSTNESS_GRIDS)
    def test_every_cell_batches(self, path):
        grid = SweepGrid.read(path)
        cells = grid.cells()
        assert cells
        for cell in cells:
            key, reason = classify_unit(cell.spec)
            assert key is not None, f"{cell.spec.name}: {reason}"
