"""Fig. 15 — PEMA vs OPTM vs RULE across apps and workloads (headline).

Paper: normalized to OPTM, PEMA stays close to 1 (drifting slightly up
with workload) while the commercial rule-based autoscaler costs up to 33%
more than PEMA (SockShop at high workload).  PEMA is averaged over
repeated runs because its navigation is randomized.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.bench import (
    average_pema_total,
    format_table,
    optimum_total,
    rule_total,
)

POINTS = {
    "trainticket": (125.0, 225.0, 325.0),
    "sockshop": (300.0, 700.0, 1100.0),
    "hotelreservation": (400.0, 600.0, 800.0),
}


def run_fig15():
    rows = []
    stats = []
    for app_name, workloads in POINTS.items():
        for wl in workloads:
            opt = optimum_total(app_name, wl)
            pema = average_pema_total(
                app_name, wl, n_steps=60, runs=3, base_seed=int(wl)
            )
            rule = rule_total(app_name, wl)
            savings = (1.0 - pema / rule) * 100.0
            rows.append(
                [
                    app_name,
                    wl,
                    1.0,
                    round(pema / opt, 2),
                    round(rule / opt, 2),
                    f"{savings:.0f}%",
                ]
            )
            stats.append((app_name, wl, pema / opt, rule / opt, savings))
    return rows, stats


def test_fig15_comparison(benchmark):
    rows, stats = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    emit(
        "fig15_comparison",
        format_table(
            ["app", "workload_rps", "OPTM", "PEMA/OPTM", "RULE/OPTM",
             "PEMA_savings_vs_RULE"],
            rows,
            title="Fig. 15 — normalized CPU allocation (paper: PEMA close "
            "to optimum, saves up to 33% vs RULE)",
        ),
    )
    for app_name, wl, pema_ratio, rule_ratio, savings in stats:
        # Ordering: OPTM <= PEMA < RULE at every point.
        assert pema_ratio >= 0.97, (app_name, wl, pema_ratio)
        assert pema_ratio < rule_ratio, (app_name, wl)
        # PEMA near-optimal (the paper's bars sit just above 1).
        assert pema_ratio < 1.45, (app_name, wl, pema_ratio)
    max_savings = max(s for *_rest, s in stats)
    # The headline: savings reach deep double digits (paper: 33%).
    assert 20.0 <= max_savings <= 50.0
