"""Measurement noise for interval-level latency observations.

Real p95 latencies fluctuate between monitoring intervals even at a fixed
allocation and workload; the paper attributes its handful of anti-monotone
observations (Fig. 7a: 10.2% TrainTicket, 6.1% SockShop) to such transient
anomalies, and devotes §3.5 to defending against transient *dips* that bait
the controller into over-reduction.

The model: multiplicative lognormal jitter plus a rare anomaly that scales
the observation by a uniform factor drawn from a dip/spike band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative noise applied to each interval's p95 latency."""

    sigma: float = 0.028
    """Lognormal sigma of the per-interval jitter."""

    anomaly_prob: float = 0.05
    """Probability of a transient anomaly in any interval."""

    anomaly_low: float = 0.84
    """Lower bound of the anomaly scale factor (dips)."""

    anomaly_high: float = 1.14
    """Upper bound of the anomaly scale factor (spikes)."""

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 <= self.anomaly_prob <= 1.0:
            raise ValueError("anomaly_prob must be a probability")
        if not 0 < self.anomaly_low <= self.anomaly_high:
            raise ValueError("anomaly band must satisfy 0 < low <= high")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative noise factor."""
        factor = float(np.exp(rng.normal(0.0, self.sigma))) if self.sigma else 1.0
        if self.anomaly_prob and rng.random() < self.anomaly_prob:
            factor *= float(rng.uniform(self.anomaly_low, self.anomaly_high))
        return factor

    @classmethod
    def none(cls) -> "NoiseModel":
        """A noise-free model (for OPTM search and deterministic tests)."""
        return cls(sigma=0.0, anomaly_prob=0.0)
