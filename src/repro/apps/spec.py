"""Application specifications: services, request classes, topologies.

An :class:`AppSpec` captures everything the performance engines need about a
microservice application:

* the set of :class:`ServiceSpec` (CPU demand per visit, latency floor,
  burstiness, tier, language — mirroring the heterogeneity the paper
  stresses in §2.1);
* the :class:`RequestClass` execution plans (sequential stages of parallel
  service calls) that define both the call topology and the latency
  critical path;
* the SLO (p95 end-to-end response latency) and per-hop network latency.

The three prototype apps from the paper are built in
:mod:`repro.apps.sockshop`, :mod:`repro.apps.trainticket`, and
:mod:`repro.apps.hotelreservation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx
import numpy as np

from repro.sim.types import Allocation

__all__ = ["ServiceSpec", "Stage", "RequestClass", "AppSpec"]

VALID_TIERS = ("frontend", "logic", "db", "cache", "queue")


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one microservice."""

    name: str
    cpu_demand: float
    """CPU-seconds consumed per visit."""

    latency_floor: float
    """Per-visit response time (seconds) with ample resources."""

    burstiness: float = 3.0
    """Variance inflation of instantaneous CPU concurrency (> 0).

    1.0 is Poisson-like; bursty fan-out services sit well above 1, while a
    smooth steadily-loaded query service can sit below it."""

    baseline_cores: float = 0.0
    """Workload-independent CPU demand (runtime/GC/heartbeat overhead).

    Java services carry substantial fixed demand; this is what makes the
    paper's optimum totals nearly flat in workload (Fig. 5: TrainTicket
    needs 40.5 CPU at 100 rps but only 47 at 300 rps)."""

    tier: str = "logic"
    """One of frontend / logic / db / cache / queue."""

    language: str = "go"
    memory_mb: float = 256.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.cpu_demand < 0:
            raise ValueError(f"{self.name}: cpu_demand must be >= 0")
        if self.latency_floor <= 0:
            raise ValueError(f"{self.name}: latency_floor must be > 0")
        if self.burstiness <= 0.0:
            raise ValueError(f"{self.name}: burstiness must be > 0")
        if self.baseline_cores < 0:
            raise ValueError(f"{self.name}: baseline_cores must be >= 0")
        if self.tier not in VALID_TIERS:
            raise ValueError(f"{self.name}: unknown tier {self.tier!r}")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.name}: memory_mb must be > 0")


@dataclass(frozen=True)
class Stage:
    """One sequential step of an execution plan.

    Entries in ``parallel`` are (service, visit-count) pairs issued
    concurrently (fan-out); the stage completes when the slowest entry
    does.  Visit counts may be fractional to encode probabilistic calls
    (e.g. 0.3 = the call happens for 30% of requests).
    """

    parallel: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.parallel:
            raise ValueError("a stage needs at least one service call")
        for svc, visits in self.parallel:
            if visits <= 0:
                raise ValueError(f"visit count for {svc!r} must be > 0")

    @classmethod
    def seq(cls, service: str, visits: float = 1.0) -> "Stage":
        """A single sequential call."""
        return cls(((service, visits),))

    @classmethod
    def fanout(cls, *calls: tuple[str, float] | str) -> "Stage":
        """A parallel fan-out; bare strings mean one visit."""
        norm = tuple(
            (c, 1.0) if isinstance(c, str) else (c[0], float(c[1])) for c in calls
        )
        return cls(norm)


@dataclass(frozen=True)
class RequestClass:
    """A traffic class: a weighted execution plan through the services."""

    name: str
    weight: float
    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise ValueError(f"{self.name}: weight must be in (0, 1]")
        if not self.stages:
            raise ValueError(f"{self.name}: needs at least one stage")

    def visits(self) -> dict[str, float]:
        """Total visits per service for one request of this class."""
        out: dict[str, float] = {}
        for stage in self.stages:
            for svc, v in stage.parallel:
                out[svc] = out.get(svc, 0.0) + v
        return out


@dataclass(frozen=True)
class AppSpec:
    """Complete application model."""

    name: str
    services: tuple[ServiceSpec, ...]
    request_classes: tuple[RequestClass, ...]
    slo: float
    """p95 end-to-end response-latency SLO in seconds."""

    hop_latency: float = 0.001
    """Per-stage network/RPC overhead in seconds."""

    reference_workload: float = 100.0
    """A representative requests-per-second level (used for defaults)."""

    description: str = ""
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.slo <= 0:
            raise ValueError("slo must be positive")
        if self.hop_latency < 0:
            raise ValueError("hop_latency must be >= 0")
        names = [s.name for s in self.services]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate service names")
        known = set(names)
        for rc in self.request_classes:
            for stage in rc.stages:
                for svc, _ in stage.parallel:
                    if svc not in known:
                        raise ValueError(
                            f"{self.name}: class {rc.name!r} references "
                            f"unknown service {svc!r}"
                        )
        total_weight = sum(rc.weight for rc in self.request_classes)
        if abs(total_weight - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: request class weights sum to {total_weight}, not 1"
            )

    # -- lookups -------------------------------------------------------------
    @cached_property
    def service_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.services)

    @cached_property
    def _by_name(self) -> dict[str, ServiceSpec]:
        return {s.name: s for s in self.services}

    def service(self, name: str) -> ServiceSpec:
        return self._by_name[name]

    @property
    def n_services(self) -> int:
        return len(self.services)

    # -- derived performance inputs -------------------------------------------
    @cached_property
    def visit_rates(self) -> dict[str, float]:
        """Expected visits per end-to-end request, per service.

        Weighted over request classes; services never visited get 0.
        """
        rates = {name: 0.0 for name in self.service_names}
        for rc in self.request_classes:
            for svc, v in rc.visits().items():
                rates[svc] += rc.weight * v
        return rates

    def visit_array(self) -> np.ndarray:
        return np.asarray(
            [self.visit_rates[n] for n in self.service_names], dtype=np.float64
        )

    def demand_array(self) -> np.ndarray:
        return np.asarray([s.cpu_demand for s in self.services], dtype=np.float64)

    def burstiness_array(self) -> np.ndarray:
        return np.asarray([s.burstiness for s in self.services], dtype=np.float64)

    def baseline_array(self) -> np.ndarray:
        return np.asarray(
            [s.baseline_cores for s in self.services], dtype=np.float64
        )

    def floor_array(self) -> np.ndarray:
        return np.asarray([s.latency_floor for s in self.services], dtype=np.float64)

    # -- topology --------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """Call graph implied by the execution plans.

        Edges go from the service that initiated the previous stage to every
        service in the next stage (the first stage is rooted at a synthetic
        ``__ingress__`` node, matching the gateway in Figs. 2-4).
        """
        g = nx.DiGraph()
        g.add_nodes_from(self.service_names)
        for rc in self.request_classes:
            prev: tuple[str, ...] = ("__ingress__",)
            for stage in rc.stages:
                current = tuple(svc for svc, _ in stage.parallel)
                for p in prev:
                    for c in current:
                        if p != "__ingress__":
                            g.add_edge(p, c)
                prev = (current[0],)  # the coordinating caller of the stage
        return g

    # -- allocations -------------------------------------------------------------
    def uniform_allocation(self, cpu_per_service: float) -> Allocation:
        return Allocation({name: cpu_per_service for name in self.service_names})

    def generous_allocation(
        self, workload_rps: float, headroom: float = 2.0, minimum: float = 0.2
    ) -> Allocation:
        """A comfortably over-provisioned starting allocation.

        The paper's premise: the initial allocation comes from a rule-based
        manager and has abundant slack.  We give every service ``headroom``
        times a high quantile of its concurrency demand.
        """
        from repro.sim.concurrency import ConcurrencyModel

        if workload_rps < 0:
            raise ValueError("workload must be >= 0")
        model = ConcurrencyModel(
            mean=workload_rps * self.visit_array() * self.demand_array()
            + self.baseline_array(),
            burstiness=self.burstiness_array(),
        )
        base = model.bottleneck(p_crit=0.97)
        values = np.maximum(base * headroom, minimum)
        return Allocation.from_array(self.service_names, values)
