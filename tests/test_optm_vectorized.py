"""Vectorized OPTM: frontier search, batch driver, allocator, sweep units.

The contract under test everywhere: the frontier-vectorized optimum
search — single-cell ``find``, lockstep ``OptimumBatch``, and the
``"optimum"`` sweep units — is *bit-identical* to the scalar reference
search (allocations, total CPU, evaluation counts, latencies, store
entries), at every configuration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_app
from repro.baselines import (
    OptimumAllocator,
    OptimumBatch,
    OptimumRequest,
    OptimumSearch,
)
from repro.experiments import (
    ExperimentSpec,
    clear_optimum_cache,
    optimum_cache_info,
    optimum_result,
    optimum_results,
    optimum_store,
    optimum_total,
    run_unit,
)
from repro.sim import AnalyticalEngine, Allocation, NoiseModel
from repro.sim.latency import NoiselessLatencyKernel, end_to_end_latency_batch
from repro.sweeps import SweepStore, run_sweep_cached
from repro.sweeps.batched import batch_key, run_units_batched
from tests.conftest import build_tiny_app


def result_tuple(result):
    return (
        tuple(result.allocation.items()),
        result.total_cpu,
        result.evaluations,
        result.latency,
    )


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_optimum_cache()
    yield
    clear_optimum_cache()


class TestKernelEquivalence:
    def test_cell_kernel_matches_dense_kernel_and_engine(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        kernel = engine.noiseless_kernel
        rng = np.random.default_rng(3)
        rows = rng.uniform(0.05, 4.0, size=(17, tiny_app.n_services))
        for workload in (60.0, 140.0):
            cell = kernel.cell(workload)
            dense = kernel.latency(rows, np.full(len(rows), workload))
            memoized = cell.latency(rows)
            assert np.array_equal(dense, memoized)
            # warm memo: identical again
            assert np.array_equal(cell.latency(rows), dense)
            for row, value in zip(rows, dense):
                alloc = Allocation.from_array(tiny_app.service_names, row)
                assert engine.noiseless_latency(alloc, workload) == value

    def test_cell_kernel_respects_cpu_speed(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        engine.set_cpu_speed(0.8)
        cell = engine.noiseless_kernel.cell(100.0, engine.cpu_speed)
        alloc = tiny_app.generous_allocation(100.0)
        row = alloc.as_array(tiny_app.service_names)[None, :]
        assert cell.latency(row)[0] == engine.noiseless_latency(alloc, 100.0)

    def test_aggregation_plan_matches_walk(self):
        rng = np.random.default_rng(0)
        for name in ("sockshop", "trainticket", "hotelreservation"):
            app = build_app(name)
            kernel = NoiselessLatencyKernel(app)
            per_visit = rng.uniform(
                1e-4, 5.0, size=(23, len(app.service_names))
            )
            assert np.array_equal(
                kernel._plan.aggregate(per_visit),
                end_to_end_latency_batch(app, per_visit),
            )


class TestFindEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        workload=st.floats(min_value=40.0, max_value=320.0),
        restarts=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
        deep=st.booleans(),
    )
    def test_find_matches_reference(self, workload, restarts, seed, deep):
        app = build_tiny_app()
        engine = AnalyticalEngine(app, noise=NoiseModel.none())
        search = OptimumSearch(
            engine, restarts=restarts, seed=seed, deep=deep
        )
        assert result_tuple(search.find(workload)) == result_tuple(
            search.find_reference(workload)
        )

    @pytest.mark.parametrize(
        "app_name,workload",
        [("sockshop", 700.0), ("hotelreservation", 600.0),
         ("trainticket", 125.0)],
    )
    def test_find_matches_reference_real_apps(self, app_name, workload):
        engine = AnalyticalEngine(build_app(app_name))
        search = OptimumSearch(engine, restarts=2)
        assert result_tuple(search.find(workload)) == result_tuple(
            search.find_reference(workload)
        )

    def test_explicit_start_and_custom_step(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        start = tiny_app.generous_allocation(150.0, headroom=3.0)
        search = OptimumSearch(engine, step=0.05, min_cpu=0.1, restarts=2)
        assert result_tuple(search.find(150.0, start=start)) == result_tuple(
            search.find_reference(150.0, start=start)
        )

    def test_infeasible_start_raises_like_reference(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        starved = tiny_app.uniform_allocation(0.05)
        search = OptimumSearch(engine, restarts=1)
        with pytest.raises(ValueError):
            search.find(300.0, start=starved)
        with pytest.raises(ValueError):
            search.find_reference(300.0, start=starved)


class TestOptimumBatch:
    def test_matches_per_cell_loop(self, tiny_app):
        engine = AnalyticalEngine(tiny_app)
        batch = OptimumBatch(engine)
        requests = [
            OptimumRequest(80.0, restarts=2),
            OptimumRequest(140.0, restarts=1, seed=3),
            OptimumRequest(220.0, restarts=3, deep=True),
            OptimumRequest(80.0, restarts=2),  # duplicate -> alias path
        ]
        results = batch.find_many(requests)
        for request, result in zip(requests, results):
            search = OptimumSearch(
                engine,
                restarts=request.restarts,
                seed=request.seed,
                deep=request.deep,
            )
            assert result_tuple(result) == result_tuple(
                search.find(request.workload)
            )
        assert result_tuple(results[0]) == result_tuple(results[3])

    def test_empty(self, tiny_app):
        assert OptimumBatch(AnalyticalEngine(tiny_app)).find_many([]) == []


class TestOptimumRouting:
    def test_optimum_result_payload(self):
        payload = optimum_result("sockshop", 700.0)
        engine = AnalyticalEngine(build_app("sockshop"))
        ref = OptimumSearch(engine, restarts=2).find(700.0)
        assert payload["total_cpu"] == ref.total_cpu
        assert payload["evaluations"] == ref.evaluations
        assert payload["latency"] == ref.latency
        assert dict(payload["allocation"]) == dict(ref.allocation)
        # keys in app service order (what the batched records expect)
        assert [n for n, _ in payload["allocation"]] == list(
            build_app("sockshop").service_names
        )
        assert optimum_total("sockshop", 700.0) == ref.total_cpu
        info = optimum_cache_info()
        assert info["solved"] == 1 and info["hits"] == 1

    def test_optimum_results_batches_misses(self):
        payloads = optimum_results(
            "sockshop", [(700.0, 2), (300.0, 2), (700.0, 2)]
        )
        assert payloads[0]["total_cpu"] == payloads[2]["total_cpu"]
        info = optimum_cache_info()
        # the duplicate is a cache hit, not a third solve
        assert info["solved"] == 2 and info["hits"] == 1

    def test_legacy_store_entry_serves_total_then_upgrades(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put_raw(
            store.optimum_key("sockshop", 700.0, 2), {"total_cpu": 9.25}
        )
        with optimum_store(store):
            assert optimum_total("sockshop", 700.0) == 9.25
            assert optimum_cache_info()["store_hits"] == 1
            clear_optimum_cache()
            # the full payload is not in the legacy entry: re-solve and
            # upgrade the store entry in place
            payload = optimum_result("sockshop", 700.0)
            assert "allocation" in payload
        upgraded = store.get_raw(store.optimum_key("sockshop", 700.0, 2))
        assert "allocation" in upgraded


class TestOptimumAllocator:
    def test_pins_and_resolves_on_workload_change(self, monkeypatch):
        app = build_app("sockshop")
        start = app.generous_allocation(700.0)
        allocator = OptimumAllocator(app, start, restarts=2)
        assert allocator.allocation == start

        calls = []

        def fake_result(app_name, workload, *, restarts):
            calls.append((app_name, workload, restarts))
            return {
                "total_cpu": 2.0,
                "allocation": [[n, 2.0 / app.n_services]
                               for n in app.service_names],
            }

        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "optimum_result", fake_result)
        from tests.conftest import make_metrics

        metrics = make_metrics(0.1, workload=700.0)
        first = allocator.decide(metrics)
        assert allocator.decide(metrics) is first  # same workload: pinned
        allocator.decide(make_metrics(0.1, workload=900.0))
        assert calls == [("sockshop", 700.0, 2), ("sockshop", 900.0, 2)]

    def test_validation(self):
        app = build_app("sockshop")
        with pytest.raises(ValueError):
            OptimumAllocator(app, app.generous_allocation(100.0), restarts=0)

    def test_registry_unit_settles_at_optimum(self):
        spec = ExperimentSpec(
            app="sockshop",
            workload=700.0,
            n_steps=3,
            autoscaler={"kind": "optimum", "params": {"restarts": 2}},
        )
        unit = run_unit(spec)
        optimum = optimum_total("sockshop", 700.0)
        assert unit.result.records[-1].total_cpu == optimum
        # first interval still observes the generous start
        assert unit.result.records[0].total_cpu > optimum


class TestOptimumSweepUnits:
    def specs(self, points=None):
        if points is None:
            points = [("sockshop", 700.0), ("sockshop", 300.0),
                      ("trainticket", 125.0)]
        return [
            ExperimentSpec(
                app=app,
                workload=rps,
                n_steps=2,
                autoscaler={"kind": "optimum", "params": {"restarts": 2}},
                name=f"optm-{app}-{rps:g}",
            )
            for app, rps in points
        ]

    @staticmethod
    def fig15_points():
        from repro.sweeps import SweepGrid

        grid = SweepGrid.read("benchmarks/grids/fig15_comparison.json")
        points = []
        for cell in grid.cells():
            point = (cell.spec.app, float(cell.spec.workload.params["rps"]))
            if point not in points:
                points.append(point)
        return points

    def test_batch_key_groups_optimum(self):
        specs = self.specs()
        key = batch_key(specs[0])
        assert key == ("sockshop", "optimum", 2, None)
        assert batch_key(specs[1]) == key
        assert batch_key(specs[2]) == ("trainticket", "optimum", 2, None)
        bad = specs[0].with_(
            autoscaler={"kind": "optimum", "params": {"bogus": 1}}
        )
        assert batch_key(bad) is None

    def test_group_runner_matches_scalar_worker(self):
        from repro.experiments.runner import _run_unit_worker

        specs = [s for s in self.specs() if s.app == "sockshop"]
        clear_optimum_cache()
        batched = run_units_batched([(spec, 0) for spec in specs])
        clear_optimum_cache()
        scalar = [
            _run_unit_worker(spec.to_dict(), 0) for spec in specs
        ]
        assert batched == scalar

    def test_cross_mode_store_and_artifacts_identical_fig15(self, tmp_path):
        # The acceptance-criterion check: OPTM units over every fig. 15
        # (app, workload) point, scalar vs batched — byte-identical unit
        # payloads AND optimum_store entries.
        points = self.fig15_points()
        specs = self.specs(points)
        stores = {}
        payload_bytes = {}
        reports = {}
        for mode, batch in (("scalar", False), ("batched", True)):
            store = stores[mode] = SweepStore(tmp_path / mode)
            clear_optimum_cache()
            with optimum_store(store):
                _, report = run_sweep_cached(specs, store=store, batch=batch)
            reports[mode] = report
            payload_bytes[mode] = sorted(
                path.read_bytes() for path in store.entry_paths()
            )
        # unit entries AND optimum entries, byte for byte
        assert payload_bytes["scalar"] == payload_bytes["batched"]
        # one unit entry plus one optimum entry per (app, workload) point
        assert len(stores["scalar"].entry_paths()) == 2 * len(points)
        assert reports["batched"].batched_units == len(points)
        assert reports["batched"].optimum["solved"] == len(points)
        assert reports["scalar"].optimum["solved"] == len(points)

    def test_optimum_units_reuse_sweep_cache(self, tmp_path):
        specs = self.specs()
        store = SweepStore(tmp_path)
        with optimum_store(store):
            _, cold = run_sweep_cached(specs, store=store, batch=True)
            clear_optimum_cache()
            _, warm = run_sweep_cached(specs, store=store, batch=True)
        assert cold.computed == 3 and warm.cache_hits == 3
        assert warm.computed == 0 and warm.optimum["solved"] == 0
