"""PEMA controller — Algorithm 1 of the paper.

One :class:`PEMAController` manages one application (or one workload range
of it).  Each control step consumes the previous interval's metrics and
produces the next allocation:

1. log the previous allocation and response into the RHDb;
2. on SLO violation, roll back to the minimum-CPU non-violating recorded
   allocation (instantaneous response, per §3.5);
3. otherwise ratchet the bottleneck thresholds (Eqns. 6-7);
4. with probability ``p_e`` (Eqn. 8), explore: jump to a random
   non-violating recorded allocation;
5. otherwise size the reduction with the K-sample moving average
   (Eqns. 10-11), filter throttled services, select targets by Eqn. (5),
   and shrink them by Δt.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np

from repro.core.config import PEMAConfig
from repro.core.cost import CostModel, cost_weighted_probabilities
from repro.core.exploration import exploration_probability
from repro.core.reduction import num_targets, reduction_fraction, reduction_signal
from repro.core.rhdb import ResourceHistoryDB, RHDbRecord
from repro.core.selection import (
    eligible_services,
    inclusion_probabilities,
    select_targets,
)
from repro.core.thresholds import ThresholdTracker
from repro.obs.decision import pema_decision_info
from repro.sim.types import Allocation, IntervalMetrics

__all__ = ["PEMAController", "StepAction", "StepResult"]


class StepAction(Enum):
    """What the controller did in a step."""

    REDUCE = "reduce"
    HOLD = "hold"
    ROLLBACK = "rollback"
    EXPLORE = "explore"


@dataclass(frozen=True)
class StepResult:
    """Outcome of one control step."""

    action: StepAction
    allocation: Allocation
    targets: tuple[str, ...] = ()
    n_targets: int = 0
    delta: float = 0.0
    signal: float = 0.0
    p_explore: float = 0.0
    violated: bool = False
    #: Eqn-5 inclusion probabilities that fed target selection, as
    #: (service, p) pairs in controller build order; empty on steps that
    #: never reached selection (rollback/explore/early hold).
    probabilities: tuple[tuple[str, float], ...] = ()


class PEMAController:
    """Feedback-driven monotonic-reduction resource manager (Algorithm 1).

    Parameters
    ----------
    services:
        Service names (order defines the allocation vector).
    slo:
        The response-latency SLO ``R`` in seconds.  Mutable at runtime —
        the paper's dynamic-SLO experiment (Fig. 20) simply assigns a new
        value.
    initial_allocation:
        Ample starting allocation (from a rule-based manager, per §3.1).
    config:
        :class:`PEMAConfig` knobs.
    seed / rng:
        Randomness for the probabilistic selection and exploration.
    """

    def __init__(
        self,
        services: Iterable[str],
        slo: float,
        initial_allocation: Allocation,
        config: PEMAConfig | None = None,
        *,
        seed: int | None = 0,
        rng: np.random.Generator | None = None,
        cost_model: "CostModel | None" = None,
    ) -> None:
        self.services = tuple(services)
        if not self.services:
            raise ValueError("need at least one service")
        if set(self.services) != set(initial_allocation.names):
            raise ValueError("initial allocation must cover exactly the services")
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        self.slo = float(slo)
        self.config = config or PEMAConfig()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.cost_model = cost_model
        if cost_model is not None:
            missing = set(self.services) - set(cost_model.prices)
            if missing:
                raise ValueError(f"cost model misses services: {sorted(missing)}")
        self.allocation = initial_allocation
        self.thresholds = ThresholdTracker(
            self.services,
            init_util=self.config.init_util_threshold,
            init_throttle=self.config.init_throttle_threshold,
        )
        self.rhdb = ResourceHistoryDB()
        self._responses: deque[float] = deque(
            maxlen=self.config.moving_average_window
        )
        self._step = 0
        self.last_result: StepResult | None = None

    # -- Algorithm 1 ------------------------------------------------------------
    def step(
        self, metrics: IntervalMetrics, reduction_target: float | None = None
    ) -> StepResult:
        """One control step; returns the action and the next allocation.

        ``reduction_target`` overrides ``R`` in Eqns. (3), (4) and (8) for
        the workload-aware dynamic response target (Eqn. 9).  SLO-violation
        handling always uses the true SLO.
        """
        target = self.slo if reduction_target is None else float(reduction_target)
        if target <= 0:
            raise ValueError(f"reduction target must be positive: {target}")
        response = metrics.latency_p95

        # Line 3: log the allocation that produced this interval.
        self._step += 1
        util_snap, thr_snap = self.thresholds.snapshot()
        self.rhdb.insert(
            RHDbRecord(
                step=self._step,
                allocation=self.allocation,
                response=response,
                workload=metrics.workload_rps,
                slo=self.slo,
                util_thresholds=util_snap,
                throttle_thresholds=thr_snap,
            )
        )
        self._responses.append(response)

        # Line 4: SLO violation -> immediate rollback on the *instantaneous*
        # response (the moving average is never used for violation handling,
        # §3.5).  The violating allocation is tainted so rollback cannot
        # return to a lucky record of the same configuration.
        if response > self.slo:
            self.rhdb.taint(self.allocation)
            rollback = self.rhdb.best_rollback(self._rollback_target(response))
            if rollback is None:
                # Severity margin too strict or no safe record at all: fall
                # back to the paper's plain nearest-safe query.
                rollback = self.rhdb.best_rollback(self.slo)
            if rollback is not None:
                self.allocation = rollback.allocation
            else:
                # No safe record (e.g. the very first interval violated):
                # inflate the current allocation as an emergency fallback.
                self.allocation = self.allocation.scale(1.25)
            self._responses.clear()
            return self._finish(StepResult(
                action=StepAction.ROLLBACK,
                allocation=self.allocation,
                violated=True,
            ))

        # Line 6: exploration.
        p_explore = exploration_probability(
            response,
            target,
            self.config.alpha,
            self.config.explore_a,
            self.config.explore_b,
        )
        if self.rng.random() < p_explore:
            record = self.rhdb.random_non_violating(self.slo, self.rng)
            if record is not None:
                self.allocation = record.allocation
                self._responses.clear()
                if self.config.use_dynamic_thresholds:
                    self.thresholds.update(metrics)
                return self._finish(StepResult(
                    action=StepAction.EXPLORE,
                    allocation=self.allocation,
                    p_explore=p_explore,
                ))

        # Line 7: size the reduction from the moving-average response.
        signal = reduction_signal(
            tuple(self._responses),
            target,
            self.config.alpha,
            self.config.response_buffer,
        )
        n_t = num_targets(len(self.services), signal)
        delta = reduction_fraction(self.config.beta, signal)
        if n_t == 0 or delta <= 0.0:
            if self.config.use_dynamic_thresholds:
                self.thresholds.update(metrics)
            return self._finish(StepResult(
                action=StepAction.HOLD,
                allocation=self.allocation,
                signal=signal,
                p_explore=p_explore,
            ))

        # Lines 8-9: bottleneck filter and probabilistic candidates.
        #
        # Note on ordering vs. Algorithm 1: the paper lists the threshold
        # ratchet (line 5) before the filter (line 8), but ratcheting first
        # makes the filter vacuous — after H_th := max(H_th, h), the test
        # h <= H_th can never fail.  For the filter to detect *imminent*
        # bottlenecks (growing throttling), selection must use the
        # thresholds learned from earlier safe intervals; we therefore
        # ratchet at the end of the step.
        if self.config.use_bottleneck_filter:
            eligible = eligible_services(metrics, self.thresholds)
            probs = inclusion_probabilities(metrics, self.thresholds, eligible)
        else:
            # Ablation: uniform selection over all services, no filtering.
            probs = {name: 1.0 for name in self.services}
        if self.cost_model is not None:
            probs = cost_weighted_probabilities(probs, self.cost_model)

        # Line 10: cut to n_t and shrink.
        targets = select_targets(probs, n_t, self.rng)
        prob_pairs = tuple((name, float(p)) for name, p in probs.items())
        if self.config.use_dynamic_thresholds:
            self.thresholds.update(metrics)
        if not targets:
            return self._finish(StepResult(
                action=StepAction.HOLD,
                allocation=self.allocation,
                n_targets=n_t,
                delta=delta,
                signal=signal,
                p_explore=p_explore,
                probabilities=prob_pairs,
            ))
        self.allocation = self.allocation.reduce(
            targets, delta, floor=self.config.min_cpu
        )
        return self._finish(StepResult(
            action=StepAction.REDUCE,
            allocation=self.allocation,
            targets=targets,
            n_targets=n_t,
            delta=delta,
            signal=signal,
            p_explore=p_explore,
            probabilities=prob_pairs,
        ))

    def _finish(self, result: StepResult) -> StepResult:
        """Remember the step outcome for the decision-trace channel."""
        self.last_result = result
        return result

    def last_decision(self) -> dict | None:
        """The previous step's causal record (``decision_trace`` hook)."""
        result = self.last_result
        if result is None:
            return None
        return pema_decision_info(
            action=result.action.value,
            violated=result.violated,
            targets=result.targets,
            n_targets=result.n_targets,
            delta=result.delta,
            signal=result.signal,
            p_explore=result.p_explore,
            probabilities=result.probabilities,
        )

    def _rollback_target(self, response: float) -> float:
        """Response ceiling for rollback candidates (§6 extension).

        With the default gain of 0 this is simply the SLO (the paper's
        most-recent-safe-allocation behaviour).
        """
        gain = self.config.rollback_severity_gain
        if gain <= 0:
            return self.slo
        overshoot = max(response / self.slo - 1.0, 0.0)
        margin = min(0.5, gain * overshoot)
        return self.slo * (1.0 - margin)

    # -- Autoscaler protocol -------------------------------------------------------
    def decide(self, metrics: IntervalMetrics) -> Allocation:
        """Protocol adapter: step and return only the allocation."""
        return self.step(metrics).allocation

    # -- state management -------------------------------------------------------------
    def set_slo(self, slo: float) -> None:
        """Change the SLO at runtime (Fig. 20's dynamic-SLO experiment)."""
        if slo <= 0:
            raise ValueError(f"slo must be positive: {slo}")
        self.slo = float(slo)
        # Historical responses were produced under another objective;
        # reduction sizing restarts from fresh measurements.
        self._responses.clear()

    def fork(
        self,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> "PEMAController":
        """Clone state for a child workload range (§3.4 range split).

        The child inherits the current allocation, learned thresholds, and
        the full RHDb; it gets an independent random stream.
        """
        child = PEMAController(
            self.services,
            self.slo,
            self.allocation,
            self.config,
            seed=seed,
            rng=rng,
            cost_model=self.cost_model,
        )
        util_snap, thr_snap = self.thresholds.snapshot()
        child.thresholds.restore(util_snap, thr_snap)
        child.rhdb = self.rhdb.clone()
        child._step = self._step
        return child

    @property
    def steps_taken(self) -> int:
        return self._step
