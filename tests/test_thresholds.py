"""Dynamic bottleneck thresholds: Eqns. (6)-(7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.thresholds import ThresholdTracker
from tests.conftest import make_metrics

SERVICES = ("front", "logic", "db", "cache")


class TestInit:
    def test_paper_defaults(self):
        t = ThresholdTracker(SERVICES)
        assert all(t.util_threshold(s) == 0.15 for s in SERVICES)
        assert all(t.throttle_threshold(s) == 0.0 for s in SERVICES)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdTracker([])
        with pytest.raises(ValueError):
            ThresholdTracker(SERVICES, init_util=1.5)
        with pytest.raises(ValueError):
            ThresholdTracker(SERVICES, init_throttle=-1.0)


class TestRatchet:
    def test_updates_upward(self):
        t = ThresholdTracker(SERVICES)
        t.update(make_metrics(0.1, utils={"front": 0.40}, throttles={"db": 2.0}))
        assert t.util_threshold("front") == pytest.approx(0.40)
        assert t.throttle_threshold("db") == pytest.approx(2.0)

    def test_never_decreases(self):
        t = ThresholdTracker(SERVICES)
        t.update(make_metrics(0.1, utils={"front": 0.40}))
        t.update(make_metrics(0.1, utils={"front": 0.20}))
        assert t.util_threshold("front") == pytest.approx(0.40)

    def test_unknown_service_rejected(self):
        t = ThresholdTracker(("a",))
        with pytest.raises(KeyError):
            t.update(make_metrics(0.1, services=("b",)))

    @given(
        seq=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_nondecreasing_property(self, seq):
        t = ThresholdTracker(("svc",), init_util=0.15)
        prev_u, prev_h = 0.15, 0.0
        for util, thr in seq:
            t.update(
                make_metrics(
                    0.1, utils={"svc": util}, throttles={"svc": thr},
                    services=("svc",),
                )
            )
            assert t.util_threshold("svc") >= prev_u
            assert t.throttle_threshold("svc") >= prev_h
            prev_u = t.util_threshold("svc")
            prev_h = t.throttle_threshold("svc")
        assert t.util_threshold("svc") == pytest.approx(
            max(0.15, max(u for u, _ in seq))
        )


class TestSnapshotRestore:
    def test_roundtrip(self):
        t = ThresholdTracker(SERVICES)
        t.update(make_metrics(0.1, utils={"front": 0.5}, throttles={"db": 1.0}))
        util, thr = t.snapshot()
        t2 = ThresholdTracker(SERVICES)
        t2.restore(util, thr)
        assert t2.util_threshold("front") == pytest.approx(0.5)
        assert t2.throttle_threshold("db") == pytest.approx(1.0)

    def test_snapshot_is_a_copy(self):
        t = ThresholdTracker(SERVICES)
        util, _ = t.snapshot()
        util["front"] = 99.0  # must not affect the tracker
        assert t.util_threshold("front") == 0.15

    def test_restore_mismatched_services(self):
        t = ThresholdTracker(SERVICES)
        with pytest.raises(ValueError):
            t.restore({"x": 0.1}, {"x": 0.0})
