"""Tests for the control plane's resilience machinery.

Crash quarantine + restart (replaying the recorded decision feed to a
bit-exact resume), tick timeouts, graceful degradation under
metric-delivery faults, poisoning surfacing, and the bounded HTTP
bridge (504/503).
"""

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import _run_unit_worker
from repro.experiments.spec import ExperimentSpec
from repro.service import (
    Guardian,
    MetricSample,
    Orchestrator,
    ServiceError,
    service_session,
)
from repro.service.http import ServiceServer


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def make_spec(hooks=(), **overrides) -> ExperimentSpec:
    data = {
        "name": "robust",
        "app": "sockshop",
        "workload": {
            "kind": "sinusoid",
            "params": {"low": 150.0, "high": 650.0, "period": 5000.0},
        },
        "n_steps": 8,
        "seed": 3,
        "hooks": list(hooks),
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


def run_service(spec, *, fail_step=None, fail_kind="crash", seconds=0.0,
                **orch_kwargs):
    """Drive one app to completion, returning (guardian, orchestrator)."""

    async def run():
        orch = Orchestrator(**orch_kwargs)
        guardian = orch.register(spec)
        if fail_step is not None:
            guardian.inject_failure(fail_step, fail_kind, seconds=seconds)
        await orch.start()
        await orch.drive()
        await orch.shutdown()
        return orch.guardians[spec.name], orch

    return asyncio.run(run())


class TestCrashRecovery:
    def test_restart_resumes_to_offline_bytes(self):
        spec = make_spec(
            hooks=[{"kind": "service_crash",
                    "params": {"at": 2, "duration": 3,
                               "service": "frontend"}}],
            capture=["manager_state"],
        )
        offline = dumps(_run_unit_worker(spec.to_dict(), 0))
        guardian, orch = run_service(spec, fail_step=4, backoff_base=0.001)
        assert guardian.restarts == 1
        assert guardian.error is None
        assert guardian.complete
        assert dumps(guardian.result_payload()) == offline
        # The decision feed holds every step exactly once, in order.
        steps = [row["step"] for row in orch.store.decisions(spec.name)]
        assert steps == list(range(spec.n_steps))
        assert guardian.status()["status"] == "complete"
        assert guardian.status()["restarts"] == 1

    def test_crash_at_step_zero_restarts_with_empty_feed(self):
        spec = make_spec()
        offline = dumps(_run_unit_worker(spec.to_dict(), 0))
        guardian, _ = run_service(spec, fail_step=0, backoff_base=0.001)
        assert guardian.restarts == 1
        assert dumps(guardian.result_payload()) == offline

    def test_exhausted_restarts_poison(self, monkeypatch):
        spec = make_spec()

        def always_broken(self, sample):
            raise RuntimeError("controller wedged")

        monkeypatch.setattr(Guardian, "offer", always_broken)
        guardian, orch = run_service(
            spec, max_restarts=1, backoff_base=0.001
        )
        status = guardian.status()
        assert status["status"] == "poisoned"
        assert "controller wedged" in status["error"]
        # The poisoning surfaces in the fleet status rows too.
        row = next(
            r for r in orch.status()["apps"] if r["app"] == spec.name
        )
        assert row["status"] == "poisoned"
        assert "RuntimeError" in row["error"]

    def test_protocol_violation_poisons_without_retry(self):
        spec = make_spec()

        async def run():
            orch = Orchestrator(backoff_base=0.001)
            guardian = orch.register(spec)
            await orch.start()
            await orch.submit(
                MetricSample(app=spec.name, rps=300.0, step=5)
            )
            await orch.guardians[spec.name].queue.join()
            await orch.shutdown()
            return guardian

        guardian = asyncio.run(run())
        assert guardian.restarts == 0  # ServiceError is never retried
        assert guardian.status()["status"] == "poisoned"
        assert "out-of-order or duplicated tick" in guardian.error


class TestTickTimeout:
    def test_hung_tick_is_abandoned_and_recovered(self):
        spec = make_spec()
        offline = dumps(_run_unit_worker(spec.to_dict(), 0))
        guardian, _ = run_service(
            spec, fail_step=3, fail_kind="hang", seconds=1.0,
            tick_timeout=0.15, backoff_base=0.001,
        )
        assert guardian.restarts == 1
        assert guardian.error is None
        assert dumps(guardian.result_payload()) == offline

    def test_fast_ticks_pass_under_timeout(self):
        spec = make_spec()
        offline = dumps(_run_unit_worker(spec.to_dict(), 0))
        guardian, _ = run_service(spec, tick_timeout=30.0)
        assert guardian.restarts == 0
        assert dumps(guardian.result_payload()) == offline

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            Orchestrator(tick_timeout=0.0)
        with pytest.raises(ValueError):
            Orchestrator(max_restarts=-1)
        with pytest.raises(ValueError):
            Orchestrator(backoff_base=0.0)


class TestStreamFaultDegradation:
    def test_perturbed_delivery_matches_offline_bytes(self):
        spec = make_spec(hooks=[
            {"kind": "metric_delay", "params": {"at": 2, "rounds": 2}},
            {"kind": "metric_dropout", "params": {"at": 5}},
            {"kind": "metric_duplicate", "params": {"at": 1}},
        ])
        offline = dumps(_run_unit_worker(spec.to_dict(), 0))
        guardian, _ = run_service(spec)
        assert guardian.error is None
        assert guardian.complete
        assert dumps(guardian.result_payload()) == offline
        status = guardian.status()
        assert status["duplicates_dropped"] >= 1
        assert status["reordered"] >= 1
        assert status["buffered"] == 0  # the buffer fully drained

    def test_duplicate_sample_dropped_not_poisoned(self):
        spec = make_spec(
            hooks=[{"kind": "metric_duplicate", "params": {"at": 0}}]
        )
        guardian = Guardian("dup", spec)
        assert len(guardian.offer(
            MetricSample(app="dup", rps=200.0, step=0))) == 1
        assert guardian.offer(
            MetricSample(app="dup", rps=200.0, step=0)) == []
        assert guardian.duplicates_dropped == 1
        assert guardian.error is None

    def test_reorder_buffer_holds_last_allocation_then_drains(self):
        spec = make_spec(
            hooks=[{"kind": "metric_delay",
                    "params": {"at": 0, "rounds": 2}}]
        )
        guardian = Guardian("late", spec)
        # Steps 1 and 2 arrive before step 0: buffered, no decisions yet.
        assert guardian.offer(
            MetricSample(app="late", rps=210.0, step=1)) == []
        assert guardian.offer(
            MetricSample(app="late", rps=220.0, step=2)) == []
        assert guardian.steps_done == 0
        assert guardian.reordered == 2
        # The late step 0 releases all three, in step order.
        decisions = guardian.offer(
            MetricSample(app="late", rps=200.0, step=0))
        assert [d.step for d in decisions] == [0, 1, 2]

    def test_gap_beyond_window_still_poisons(self):
        spec = make_spec(
            hooks=[{"kind": "metric_delay",
                    "params": {"at": 0, "rounds": 1}}]
        )
        guardian = Guardian("gap", spec)
        with pytest.raises(ServiceError):
            guardian.offer(MetricSample(app="gap", rps=200.0, step=3))

    def test_clean_spec_keeps_strict_protocol(self):
        guardian = Guardian("strict", make_spec())
        guardian.offer(MetricSample(app="strict", rps=200.0, step=0))
        with pytest.raises(ServiceError):
            guardian.offer(MetricSample(app="strict", rps=200.0, step=0))

    def test_inject_failure_rejects_unknown_kind(self):
        guardian = Guardian("probe", make_spec())
        with pytest.raises(ValueError):
            guardian.inject_failure(1, "melt")


class TestHTTPBridgeBounds:
    def test_blocked_loop_times_out_with_504(self):
        spec = make_spec()
        with service_session([spec]) as runtime:
            server = ServiceServer(
                runtime.orchestrator, runtime._loop, bridge_timeout=0.2
            )
            server.start()
            try:
                # A healthy loop answers fine through the short bridge.
                with urllib.request.urlopen(
                    server.url + "/apps", timeout=10
                ) as response:
                    assert response.status == 200
                # Wedge the event loop past the bridge timeout.
                runtime._loop.call_soon_threadsafe(time.sleep, 0.8)
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(server.url + "/apps", timeout=10)
                assert err.value.code == 504
                body = json.loads(err.value.read())
                assert "did not answer" in body["error"]
            finally:
                server.stop()

    def test_closed_loop_returns_503(self):
        spec = make_spec()
        runtime_ref = {}
        with service_session([spec]) as runtime:
            runtime_ref["loop"] = runtime._loop
            runtime_ref["orch"] = runtime.orchestrator
        # The session is shut down; a fresh server over the dead loop
        # must refuse rather than hang its handler thread.
        server = ServiceServer(
            runtime_ref["orch"], runtime_ref["loop"], bridge_timeout=0.5
        )
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/apps", timeout=10)
            assert err.value.code == 503
            body = json.loads(err.value.read())
            assert "shutting down" in body["error"]
        finally:
            server.stop()

    def test_bridge_timeout_validation(self):
        spec = make_spec()
        with service_session([spec]) as runtime:
            with pytest.raises(ValueError):
                ServiceServer(
                    runtime.orchestrator, runtime._loop, bridge_timeout=0.0
                )
