"""Bin-packing pod scheduler (first-fit decreasing).

A small stand-in for kube-scheduler: place pods by decreasing CPU request
onto the node with the most free CPU that fits.  FFD is the standard
approximation for this bin-packing problem and matches the spreading
behaviour of the default scheduler closely enough for capacity modelling.
"""

from __future__ import annotations

from repro.cluster.errors import SchedulingError
from repro.cluster.node import Node
from repro.cluster.pod import Pod

__all__ = ["Scheduler"]


class Scheduler:
    """Places pods onto nodes, respecting CPU and memory capacity."""

    def schedule(self, pods: list[Pod], nodes: list[Node]) -> None:
        """Assign every unscheduled pod to a node (mutates pods/nodes).

        Raises :class:`SchedulingError` if any pod cannot be placed; already
        placed pods are left untouched.
        """
        pending = [p for p in pods if not p.scheduled]
        for pod in sorted(pending, key=lambda p: -p.cpu_request):
            target = self._pick_node(pod, nodes)
            if target is None:
                raise SchedulingError(
                    f"no node fits pod {pod.service!r} "
                    f"(cpu={pod.cpu_request:.2f}, mem={pod.memory_mb:.0f} MB)"
                )
            self._bind(pod, target)

    def reschedule_if_needed(self, pods: list[Pod], nodes: list[Node]) -> int:
        """Evict pods from over-committed nodes and re-place them.

        Returns the number of pods moved.  Called after vertical resize
        (CPU requests grew in place, possibly past node capacity).
        """
        moved = 0
        for node in nodes:
            while node.cpu_free < -1e-9 or node.memory_free < -1e-9:
                # Evict the smallest pod first: cheapest to move.
                victim = min(node.pods, key=lambda p: p.cpu_request)
                self._unbind(victim)
                moved += 1
        to_place = [p for p in pods if not p.scheduled]
        if to_place:
            self.schedule(to_place, nodes)
        return moved

    @staticmethod
    def _pick_node(pod: Pod, nodes: list[Node]) -> Node | None:
        candidates = [n for n in nodes if n.fits(pod.cpu_request, pod.memory_mb)]
        if not candidates:
            return None
        return max(candidates, key=lambda n: n.cpu_free)

    @staticmethod
    def _bind(pod: Pod, node: Node) -> None:
        pod.node = node
        node.pods.append(pod)

    @staticmethod
    def _unbind(pod: Pod) -> None:
        assert pod.node is not None
        pod.node.pods.remove(pod)
        pod.node = None
