"""CI performance gate: vectorized OPTM search vs the scalar reference.

Runs the fig. 15 grid's (app, workload) points through both OPTM
implementations and enforces the regression gates the CI benchmark job
depends on:

* **equivalence** — the frontier-vectorized ``OptimumSearch.find`` and
  the lockstep ``OptimumBatch.find_many`` must produce results identical
  to ``OptimumSearch.find_reference`` (allocations, total CPU,
  evaluation counts, latencies) at every point, in the default
  configuration (``restarts=2``, what ``optimum_total`` runs) and the
  deep-polish configuration (``restarts=3, deep=True``);
* **throughput** — combined vectorized evaluations/sec must be at least
  ``--min-speedup`` times the scalar reference (best-of ``--repeats``
  runs per mode, so a scheduler hiccup cannot fail CI).

Writes a ``BENCH_optm.json`` artifact with the measured numbers either
way, and exits non-zero when a gate fails.

Usage::

    PYTHONPATH=src python benchmarks/optm_gate.py --out BENCH_optm.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

from repro.apps import build_app
from repro.baselines import OptimumBatch, OptimumRequest, OptimumSearch
from repro.experiments import optimum_cache_info, reset_optimum_cache_info
from repro.sim import AnalyticalEngine
from repro.sweeps import SweepGrid


def fig15_points(grid_path: str) -> list[tuple[str, float]]:
    """The unique (app, workload) cells of the fig. 15 comparison grid."""
    grid = SweepGrid.read(grid_path)
    points: list[tuple[str, float]] = []
    for cell in grid.cells():
        point = (cell.spec.app, float(cell.spec.workload.params["rps"]))
        if point not in points:
            points.append(point)
    return points


def _result_tuple(result) -> tuple:
    return (
        tuple(result.allocation.items()),
        result.total_cpu,
        result.evaluations,
        result.latency,
    )


def run_mode(
    label: str,
    cells: list[tuple[str, float]],
    *,
    restarts: int,
    deep: bool,
    repeats: int,
) -> tuple[dict, list[str]]:
    """Equivalence + best-of-``repeats`` timing of one configuration."""
    failures: list[str] = []
    engines = {app: AnalyticalEngine(build_app(app)) for app, _ in cells}
    searches = {
        (app, workload): OptimumSearch(
            engines[app], restarts=restarts, deep=deep
        )
        for app, workload in cells
    }

    evaluations = 0
    for (app, workload), search in searches.items():
        vec = search.find(workload)
        ref = search.find_reference(workload)
        if _result_tuple(vec) != _result_tuple(ref):
            failures.append(
                f"{label}: vectorized result diverges from scalar at "
                f"{app}@{workload:g}"
            )
        evaluations += ref.evaluations

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = perf_counter()
            for (app, workload), search in searches.items():
                fn(search, workload)
            best = min(best, perf_counter() - start)
        return best

    vec_seconds = timed(lambda search, workload: search.find(workload))
    ref_seconds = timed(
        lambda search, workload: search.find_reference(workload)
    )
    speedup = ref_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    return {
        "cells": len(cells),
        "restarts": restarts,
        "deep": deep,
        "evaluations": evaluations,
        "vectorized": {
            "seconds": vec_seconds,
            "evals_per_sec": evaluations / vec_seconds,
        },
        "scalar": {
            "seconds": ref_seconds,
            "evals_per_sec": evaluations / ref_seconds,
        },
        "speedup": speedup,
    }, failures


def run_batch_check(cells: list[tuple[str, float]]) -> tuple[dict, list[str]]:
    """OptimumBatch lockstep drive vs per-cell find, per app."""
    failures: list[str] = []
    seconds = 0.0
    n_cells = 0
    for app in dict.fromkeys(app for app, _ in cells):
        workloads = [w for a, w in cells if a == app]
        engine = AnalyticalEngine(build_app(app))
        batch = OptimumBatch(engine)
        requests = [OptimumRequest(w, restarts=2) for w in workloads]
        start = perf_counter()
        results = batch.find_many(requests)
        seconds += perf_counter() - start
        n_cells += len(results)
        search = OptimumSearch(engine, restarts=2)
        for workload, result in zip(workloads, results):
            if _result_tuple(result) != _result_tuple(
                search.find(workload)
            ):
                failures.append(
                    f"batch: OptimumBatch diverges from per-cell find at "
                    f"{app}@{workload:g}"
                )
    return {"cells": n_cells, "seconds": seconds}, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid", default="benchmarks/grids/fig15_comparison.json"
    )
    parser.add_argument("--out", default="BENCH_optm.json")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per mode (best one counts)")
    args = parser.parse_args(argv)

    # Counters-only reset (cached solutions survive): the cache-activity
    # section of BENCH_optm.json reflects this run alone even when the
    # gate shares a process with earlier benchmark steps.
    reset_optimum_cache_info()
    points = fig15_points(args.grid)
    # Deep polish is expensive on the scalar side; one representative
    # (middle) workload per app keeps the gate fast while still covering
    # redistribution and multi-restart memoization.
    by_app: dict[str, list[float]] = {}
    for app, workload in points:
        by_app.setdefault(app, []).append(workload)
    deep_points = [
        (app, sorted(workloads)[len(workloads) // 2])
        for app, workloads in by_app.items()
    ]

    failures: list[str] = []
    repeats = max(args.repeats, 1)
    modes: dict[str, dict] = {}
    modes["default"], mode_failures = run_mode(
        "default", points, restarts=2, deep=False, repeats=repeats
    )
    failures += mode_failures
    modes["deep"], mode_failures = run_mode(
        "deep", deep_points, restarts=3, deep=True, repeats=repeats
    )
    failures += mode_failures
    batch_info, batch_failures = run_batch_check(points)
    failures += batch_failures

    total_evals = sum(m["evaluations"] for m in modes.values())
    vec_seconds = sum(m["vectorized"]["seconds"] for m in modes.values())
    ref_seconds = sum(m["scalar"]["seconds"] for m in modes.values())
    speedup = ref_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    if speedup < args.min_speedup:
        failures.append(
            f"vectorized OPTM speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x ({total_evals / vec_seconds:.0f} vs "
            f"{total_evals / ref_seconds:.0f} evals/sec)"
        )

    bench = {
        "grid": args.grid,
        "points": len(points),
        "modes": modes,
        "batch": batch_info,
        "evaluations": total_evals,
        "evals_per_sec_vectorized": total_evals / vec_seconds,
        "evals_per_sec_scalar": total_evals / ref_seconds,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "timing_repeats": repeats,
        "optimum_cache": optimum_cache_info(),
        "passed": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(json.dumps(bench, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"optm gate passed: vectorized {speedup:.2f}x scalar "
        f"({total_evals / vec_seconds:.0f} vs "
        f"{total_evals / ref_seconds:.0f} evals/sec; "
        f"default {modes['default']['speedup']:.2f}x, "
        f"deep {modes['deep']['speedup']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
