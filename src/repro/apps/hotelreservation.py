"""HotelReservation — 18-microservice DeathStarBench app (paper Fig. 4).

All business logic in Go communicating over gRPC; Memcached for hot paths,
MongoDB for persistence, Consul for service discovery.  Pre-populated with
80 hotels and 500 users in the original benchmark.  SLO: p95 end-to-end
response of **50 ms** (paper §2.1) — the tightest of the three prototypes,
which is why throttling-induced tail latency dominates here.
"""

from __future__ import annotations

from repro.apps.spec import AppSpec, RequestClass, ServiceSpec, Stage

__all__ = ["hotelreservation"]

SLO_SECONDS = 0.050

_SERVICES: tuple[tuple[str, float, float, float, str, str], ...] = (
    ("frontend", 1.4, 3.2, 6.0, "frontend", "go"),
    ("search", 1.1, 2.6, 5.0, "logic", "go"),
    ("geo", 0.7, 1.8, 3.0, "logic", "go"),
    ("rate", 0.8, 2.0, 3.5, "logic", "go"),
    ("reserve", 0.9, 2.2, 3.5, "logic", "go"),
    ("profile", 0.8, 2.0, 3.0, "logic", "go"),
    ("recommend", 0.7, 1.8, 3.0, "logic", "go"),
    ("user", 0.5, 1.5, 2.5, "logic", "go"),
    ("consul", 0.2, 1.0, 2.0, "logic", "go"),
    ("rate-memc", 0.3, 1.0, 2.0, "cache", "memcached"),
    ("reserve-memc", 0.3, 1.0, 2.0, "cache", "memcached"),
    ("profile-memc", 0.3, 1.0, 2.0, "cache", "memcached"),
    ("geo-mongo", 0.5, 1.6, 3.0, "db", "mongodb"),
    ("rate-mongo", 0.5, 1.6, 3.0, "db", "mongodb"),
    ("profile-mongo", 0.5, 1.6, 3.0, "db", "mongodb"),
    ("recommend-mongo", 0.5, 1.6, 3.0, "db", "mongodb"),
    ("reserve-mongo", 0.5, 1.6, 3.0, "db", "mongodb"),
    ("user-mongo", 0.4, 1.4, 3.0, "db", "mongodb"),
)


def _classes() -> tuple[RequestClass, ...]:
    search = RequestClass(
        name="search",
        weight=0.60,
        stages=(
            Stage.seq("frontend"),
            Stage.fanout("search", ("consul", 0.2)),
            Stage.fanout("geo", "rate"),
            Stage.fanout(("geo-mongo", 0.5), "rate-memc", ("rate-mongo", 0.3)),
            Stage.seq("profile"),
            Stage.fanout("profile-memc", ("profile-mongo", 0.3)),
        ),
    )
    recommend = RequestClass(
        name="recommend",
        weight=0.25,
        stages=(
            Stage.seq("frontend"),
            Stage.seq("recommend"),
            Stage.seq("recommend-mongo"),
            Stage.seq("profile"),
            Stage.fanout("profile-memc", ("profile-mongo", 0.3)),
        ),
    )
    reserve = RequestClass(
        name="reserve",
        weight=0.10,
        stages=(
            Stage.seq("frontend"),
            Stage.fanout("user", "reserve"),
            Stage.fanout("user-mongo", "reserve-memc", ("reserve-mongo", 0.8)),
        ),
    )
    login = RequestClass(
        name="login",
        weight=0.05,
        stages=(
            Stage.seq("frontend"),
            Stage.seq("user"),
            Stage.seq("user-mongo"),
        ),
    )
    return (search, recommend, reserve, login)


# Go binaries and caches idle cheaply; Mongo instances carry a bit more.
_BASELINE_BY_LANGUAGE = {
    "go": 0.030,
    "memcached": 0.012,
    "mongodb": 0.042,
}


def hotelreservation(demand_scale: float = 1.0, floor_scale: float = 1.0) -> AppSpec:
    """Build the HotelReservation application spec."""
    services = tuple(
        ServiceSpec(
            name=name,
            cpu_demand=demand_ms * 1e-3 * demand_scale,
            latency_floor=floor_ms * 1e-3 * floor_scale,
            burstiness=burst,
            baseline_cores=_BASELINE_BY_LANGUAGE[lang],
            tier=tier,
            language=lang,
        )
        for name, demand_ms, floor_ms, burst, tier, lang in _SERVICES
    )
    return AppSpec(
        name="hotelreservation",
        services=services,
        request_classes=_classes(),
        slo=SLO_SECONDS,
        hop_latency=0.0004,
        reference_workload=500.0,
        description="DeathStarBench hotel search/recommend/reserve over gRPC.",
    )
