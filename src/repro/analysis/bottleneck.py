"""Table 1 driver: classification accuracy per (app, bottleneck set).

Reproduces the paper's Table 1 rows and the feature-subset comparison that
justified choosing CPU utilization + CPU throttling time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dataset import generate_dataset
from repro.analysis.features import FEATURE_SUBSETS
from repro.analysis.tree import DecisionTreeClassifier
from repro.apps import build_app

__all__ = ["TABLE1_SCENARIOS", "ScenarioResult", "run_scenario", "table1"]

TABLE1_SCENARIOS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("trainticket", ("seat",)),
    ("trainticket", ("seat", "ticketinfo")),
    ("sockshop", ("carts",)),
    ("sockshop", ("carts", "orders")),
    ("hotelreservation", ("frontend",)),
    ("hotelreservation", ("frontend", "search")),
)
"""The six rows of the paper's Table 1."""


@dataclass(frozen=True)
class ScenarioResult:
    app_name: str
    bottleneck_services: tuple[str, ...]
    accuracy: float
    subset_accuracies: dict[str, float]


def run_scenario(
    app_name: str,
    bottleneck_services: tuple[str, ...],
    *,
    n_intervals: int = 120,
    seed: int = 0,
    feature_subset: str = "util+throttle",
    compare_subsets: bool = False,
) -> ScenarioResult:
    """Train/test a tree on one Table 1 scenario."""
    if feature_subset not in FEATURE_SUBSETS:
        raise KeyError(f"unknown feature subset {feature_subset!r}")
    app = build_app(app_name)
    data = generate_dataset(
        app, bottleneck_services, n_intervals=n_intervals, seed=seed
    )
    X_train, y_train, X_test, y_test = data.split(seed=seed + 1)

    def accuracy_for(cols: tuple[int, ...]) -> float:
        tree = DecisionTreeClassifier(max_depth=4)
        tree.fit(X_train[:, cols], y_train)
        return tree.score(X_test[:, cols], y_test)

    main = accuracy_for(FEATURE_SUBSETS[feature_subset])
    subsets: dict[str, float] = {}
    if compare_subsets:
        subsets = {
            name: accuracy_for(cols) for name, cols in FEATURE_SUBSETS.items()
        }
    return ScenarioResult(
        app_name=app_name,
        bottleneck_services=bottleneck_services,
        accuracy=main,
        subset_accuracies=subsets,
    )


def table1(
    *, n_intervals: int = 120, seed: int = 0
) -> list[ScenarioResult]:
    """All six Table 1 rows with util+throttle features."""
    return [
        run_scenario(app, services, n_intervals=n_intervals, seed=seed + i)
        for i, (app, services) in enumerate(TABLE1_SCENARIOS)
    ]
