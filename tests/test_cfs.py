"""CFS throttling closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cfs import CFSModel, DEFAULT_PERIOD


class TestCFSModel:
    def test_default_period_is_linux_default(self):
        assert DEFAULT_PERIOD == pytest.approx(0.1)

    def test_no_exceed_no_throttle(self):
        cfs = CFSModel()
        frac = cfs.throttled_fraction(
            np.array([0.0]), np.array([0.0]), np.array([1.0])
        )
        assert frac[0] == 0.0

    def test_fraction_bounded(self):
        cfs = CFSModel()
        frac = cfs.throttled_fraction(
            np.array([1.0]), np.array([100.0]), np.array([0.1])
        )
        assert 0.0 <= frac[0] <= 1.0

    def test_zero_floor_clips_tiny_readings(self):
        cfs = CFSModel(zero_floor=1e-3)
        seconds = cfs.throttle_seconds(
            np.array([1e-6]), np.array([1e-7]), np.array([1.0]), interval=120.0
        )
        assert seconds[0] == 0.0

    def test_seconds_scale_with_interval(self):
        cfs = CFSModel(zero_floor=0.0)
        args = (np.array([0.5]), np.array([1.0]), np.array([1.0]))
        short = cfs.throttle_seconds(*args, interval=60.0)
        long = cfs.throttle_seconds(*args, interval=120.0)
        assert long[0] == pytest.approx(2 * short[0])

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CFSModel().throttle_seconds(
                np.array([0.5]), np.array([1.0]), np.array([1.0]), interval=0.0
            )

    @given(
        exceed=st.floats(min_value=0.0, max_value=1.0),
        excess=st.floats(min_value=0.0, max_value=50.0),
        alloc=st.floats(min_value=0.05, max_value=20.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_fraction_always_a_probability(self, exceed, excess, alloc):
        cfs = CFSModel()
        frac = cfs.throttled_fraction(
            np.array([exceed]), np.array([excess]), np.array([alloc])
        )[0]
        assert 0.0 <= frac <= 1.0

    def test_severity_increases_with_excess(self):
        cfs = CFSModel()
        alloc = np.array([1.0])
        exceed = np.array([0.5])
        small = cfs.throttled_fraction(exceed, np.array([0.1]), alloc)[0]
        big = cfs.throttled_fraction(exceed, np.array([5.0]), alloc)[0]
        assert big > small
