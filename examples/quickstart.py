#!/usr/bin/env python
"""Quickstart: run PEMA against a simulated SockShop deployment.

This is the paper's Fig. 11 scenario in ~30 lines: start the 13-service
SockShop with generous CPU at 700 requests/s, let PEMA iteratively carve
out the slack, and compare where it settles against the exhaustive-search
optimum and the rule-based autoscaler.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalEngine,
    ControlLoop,
    PEMAConfig,
    PEMAController,
    build_app,
)
from repro.baselines import OptimumSearch, RuleBasedAutoscaler
from repro.workload import ConstantWorkload

WORKLOAD_RPS = 700.0
ITERATIONS = 70


def main() -> None:
    app = build_app("sockshop")
    print(f"app: {app.name} ({app.n_services} services, "
          f"SLO {app.slo * 1000:.0f} ms), workload {WORKLOAD_RPS:.0f} rps\n")

    # The environment: an analytical performance model of the deployment.
    engine = AnalyticalEngine(app, seed=1)

    # PEMA starts from an over-provisioned allocation (as a rule-based
    # manager would leave it) and only ever reduces monotonically.
    start = app.generous_allocation(WORKLOAD_RPS)
    pema = PEMAController(
        app.service_names, app.slo, start, PEMAConfig.low_exploration(), seed=2
    )
    result = ControlLoop(engine, pema, ConstantWorkload(WORKLOAD_RPS)).run(
        ITERATIONS
    )

    print("iter  total_cpu  p95_ms  note")
    for record in result.records[::5]:
        note = "SLO VIOLATION" if record.violated else ""
        print(f"{record.step:4d}  {record.total_cpu:9.2f}  "
              f"{record.response * 1000:6.0f}  {note}")

    optimum = OptimumSearch(AnalyticalEngine(app), restarts=2).find(WORKLOAD_RPS)
    rule = RuleBasedAutoscaler(start)
    rule_result = ControlLoop(
        AnalyticalEngine(app, seed=3), rule, ConstantWorkload(WORKLOAD_RPS),
        slo=app.slo,
    ).run(25)

    settled = result.settled_total()
    print(f"\nstart allocation : {start.total():6.2f} CPU")
    print(f"PEMA settled     : {settled:6.2f} CPU "
          f"({result.violation_count()} violations in {ITERATIONS} intervals)")
    print(f"optimum (OPTM)   : {optimum.total_cpu:6.2f} CPU")
    print(f"rule-based (RULE): {rule_result.settled_total():6.2f} CPU")
    print(f"\nPEMA is {settled / optimum.total_cpu:.2f}x the optimum and saves "
          f"{(1 - settled / rule_result.settled_total()) * 100:.0f}% vs RULE.")


if __name__ == "__main__":
    main()
