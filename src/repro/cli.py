"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the registered prototype applications.
``run``
    Run PEMA against a simulated deployment and print the trajectory.
``optimum``
    Find the OPTM allocation for an app/workload (paper §4.2 definition).
``compare``
    PEMA vs OPTM vs RULE at one operating point (a Fig. 15 cell).
``experiment``
    Run a declarative :class:`~repro.experiments.ExperimentSpec` from a
    JSON file — the spec-driven entry point to every scenario.

``run``, ``compare`` and ``experiment`` all execute through the shared
experiment runner, so the same spec reproduces the same numbers from any
entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.apps import app_names, build_app
from repro.baselines import OptimumSearch
from repro.core import FastReactionLoop
from repro.experiments import (
    AutoscalerSpec,
    ExperimentSpec,
    WorkloadSpec,
    build_unit,
    run_comparison,
    run_experiment,
    run_unit,
)
from repro.sim import AnalyticalEngine

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PEMA (HPDC '22) reproduction: practical efficient "
        "microservice autoscaling with QoS assurance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the prototype applications")

    desc = sub.add_parser("describe", help="show one application's topology")
    desc.add_argument("--app", default="sockshop", choices=app_names())
    desc.add_argument("--plan", default=None,
                      help="also show one request class's execution plan")

    run = sub.add_parser("run", help="run PEMA on a simulated deployment")
    _common_args(run)
    run.add_argument("--iterations", type=int, default=70)
    run.add_argument("--alpha", type=float, default=0.5)
    run.add_argument("--beta", type=float, default=0.3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--every", type=int, default=5,
                     help="print every Nth interval")
    run.add_argument("--fast", action="store_true",
                     help="enable sub-interval violation mitigation (§6)")

    opt = sub.add_parser("optimum", help="search the OPTM allocation")
    _common_args(opt)
    opt.add_argument("--restarts", type=int, default=2)
    opt.add_argument("--deep", action="store_true",
                     help="enable pairwise redistribution beyond the "
                     "paper's single-coordinate definition")

    cmp_ = sub.add_parser("compare", help="PEMA vs OPTM vs RULE")
    _common_args(cmp_)
    cmp_.add_argument("--iterations", type=int, default=60)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument("--repeats", type=int, default=1,
                      help="PEMA seeds to average (Fig. 15 uses 3)")

    exp = sub.add_parser(
        "experiment", help="run a declarative experiment spec (JSON file)"
    )
    exp.add_argument("--spec", required=True,
                     help="path to an ExperimentSpec JSON file")
    exp.add_argument("--parallel", type=int, default=1,
                     help="worker processes for multi-seed specs")
    exp.add_argument("--out", default=None,
                     help="write the full artifact (spec + histories + "
                     "summary) to this JSON file")
    exp.add_argument("--compare", action="store_true",
                     help="also report the OPTM and RULE baselines "
                     "(a Fig. 15 cell)")
    return parser


def _common_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--app", default="sockshop", choices=app_names())
    sub.add_argument("--workload", type=float, default=None,
                     help="requests per second (default: the app's "
                     "reference workload)")


def _cmd_apps() -> int:
    print(f"{'app':20s} {'services':>8s} {'SLO_ms':>7s} {'ref_rps':>8s}")
    for name in app_names():
        app = build_app(name)
        print(f"{name:20s} {app.n_services:8d} {app.slo * 1000:7.0f} "
              f"{app.reference_workload:8.0f}")
    return 0


def _run_spec(args: argparse.Namespace) -> ExperimentSpec:
    """The PEMA spec described by ``run``/``compare`` arguments."""
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    return ExperimentSpec(
        app=args.app,
        workload=WorkloadSpec.constant(workload),
        n_steps=args.iterations,
        autoscaler=AutoscalerSpec(
            "pema",
            {"alpha": getattr(args, "alpha", 0.5),
             "beta": getattr(args, "beta", 0.3)},
        ),
        seed=args.seed,
        repeats=getattr(args, "repeats", 1),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _run_spec(args)
    app = build_app(args.app)
    if args.fast:
        unit = build_unit(spec)
        loop = FastReactionLoop(unit.engine, unit.autoscaler, unit.trace,
                                interval=spec.interval)
        result = loop.run(spec.n_steps)
    else:
        unit = run_unit(spec)
        result = unit.result
    workload = spec.workload.params["rps"]
    print(f"# {args.app} @ {workload:.0f} rps, SLO {app.slo * 1000:.0f} ms, "
          f"alpha={args.alpha} beta={args.beta}"
          + (" (fast monitor)" if args.fast else ""))
    print("iter  total_cpu  p95_ms  violated")
    for record in result.records[:: max(args.every, 1)]:
        print(f"{record.step:4d}  {record.total_cpu:9.2f}  "
              f"{record.response * 1000:6.0f}  "
              f"{'x' if record.violated else ''}")
    print(f"\nsettled total CPU : {result.settled_total():.2f}")
    print(f"violations        : {result.violation_count()}"
          f"/{len(result)} intervals")
    if args.fast:
        print(f"violation exposure: {result.violation_exposure() * 100:.1f}% "
              f"of wall-clock time ({result.mitigations} fast mitigations)")
    return 0


def _cmd_optimum(args: argparse.Namespace) -> int:
    app = build_app(args.app)
    workload = args.workload or app.reference_workload
    engine = AnalyticalEngine(app)
    search = OptimumSearch(engine, restarts=args.restarts, deep=args.deep)
    result = search.find(workload)
    print(f"# OPTM for {args.app} @ {workload:.0f} rps "
          f"({result.evaluations} evaluations)")
    for name in app.service_names:
        print(f"  {name:20s} {result.allocation[name]:6.2f}")
    print(f"total CPU : {result.total_cpu:.2f}")
    print(f"latency   : {result.latency * 1000:.1f} ms "
          f"(SLO {app.slo * 1000:.0f} ms)")
    return 0


def _print_comparison(cell: dict[str, float], app_name: str) -> None:
    print(f"# {app_name} @ {cell['workload_rps']:.0f} rps")
    print(f"OPTM : {cell['optm_total']:7.2f} CPU")
    print(f"PEMA : {cell['pema_total']:7.2f} CPU  "
          f"({cell['pema_over_optm']:.2f}x optimum)")
    print(f"RULE : {cell['rule_total']:7.2f} CPU  "
          f"(PEMA saves {cell['pema_savings_vs_rule'] * 100:.0f}%)")


def _cmd_compare(args: argparse.Namespace) -> int:
    _print_comparison(run_comparison(_run_spec(args)), args.app)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec.from_json(Path(args.spec).read_text())
        spec.validate()
    except (OSError, TypeError, ValueError, KeyError) as exc:
        # KeyError's str() wraps its message in quotes; unwrap for humans.
        reason = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {reason}", file=sys.stderr)
        return 2
    if args.compare and spec.autoscaler.kind != "pema":
        print("error: --compare needs a pema spec", file=sys.stderr)
        return 2
    try:
        artifact = run_experiment(spec, parallel=max(args.parallel, 1))
        summary = artifact.summary()
        print(f"# experiment {spec.name or '<unnamed>'}: {spec.app} x "
              f"{spec.workload.kind} x {spec.autoscaler.kind} "
              f"({spec.engine.kind} engine, {spec.repeats} seed(s))")
        print(json.dumps(summary, indent=2, sort_keys=True))
        if args.compare:
            _print_comparison(
                run_comparison(spec, pema_artifact=artifact), spec.app
            )
    except LookupError as exc:
        # E.g. a run with no SLO-satisfying interval has no settled total.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        path = artifact.write(args.out)
        print(f"artifact written to {path}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.apps.describe import describe_app, describe_plan

    app = build_app(args.app)
    print(describe_app(app))
    if args.plan is not None:
        print()
        print(describe_plan(app, args.plan))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "optimum":
        return _cmd_optimum(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
