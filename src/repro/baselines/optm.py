"""OPTM — the paper's optimum-allocation benchmark (§4.2).

The paper finds the optimum by exhaustive trial and error on the live
system and defines it operationally: *an allocation is optimum when
reducing any single microservice by 0.1 CPU violates the SLO*.  We
automate exactly that definition against the (noise-free) performance
model: greedy coordinate descent from a generous allocation, with random
service orderings and multiple restarts to avoid order artifacts.

As the paper notes, OPTM is not a practical manager — it causes many
violations while probing — it is the upper bound on achievable resource
efficiency that PEMA is measured against (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import AnalyticalEngine
from repro.sim.types import Allocation

__all__ = ["OptimumResult", "OptimumSearch"]


@dataclass(frozen=True)
class OptimumResult:
    """Outcome of one optimum search."""

    allocation: Allocation
    latency: float
    workload: float
    evaluations: int

    @property
    def total_cpu(self) -> float:
        return self.allocation.total()


class OptimumSearch:
    """Coordinate-descent minimum-resource search on the noiseless model."""

    def __init__(
        self,
        engine: AnalyticalEngine,
        *,
        step: float = 0.1,
        min_cpu: float = 0.05,
        restarts: int = 3,
        seed: int = 0,
        deep: bool = False,
    ) -> None:
        """``deep=True`` adds a pairwise-redistribution polish (+1 step on
        one service, -2 on another) beyond the paper's single-coordinate
        definition.  The default matches the paper: its optimum was found
        by manual trial and error and declared optimal when *any single*
        -0.1 CPU step violated the SLO — coordinated multi-service moves
        were not part of the search."""
        if step <= 0:
            raise ValueError("step must be positive")
        if min_cpu <= 0:
            raise ValueError("min_cpu must be positive")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.engine = engine
        self.step = step
        self.min_cpu = min_cpu
        self.restarts = restarts
        self.seed = seed
        self.deep = deep

    def find(
        self, workload_rps: float, start: Allocation | None = None
    ) -> OptimumResult:
        """Best local optimum across restarts (lowest total CPU).

        Each restart: (1) uniformly scale the start down to the SLO
        boundary — the balanced entry point a careful human searcher would
        use; (2) greedy per-service coordinate descent in 0.1-CPU steps.
        With ``deep=True``, a pairwise-redistribution stage (3) escapes
        boundary points plain descent gets stuck on; either way the result
        satisfies the paper's local-optimality definition.
        """
        app = self.engine.app
        base = start if start is not None else app.generous_allocation(workload_rps)
        if self.engine.noiseless_latency(base, workload_rps) > app.slo:
            raise ValueError(
                "starting allocation already violates the SLO; "
                "increase headroom or lower the workload"
            )
        best: OptimumResult | None = None
        evaluations = 0
        for restart in range(self.restarts):
            rng = np.random.default_rng((self.seed, restart))
            # The balanced scale-to-boundary entry dominates raw descent;
            # keep one raw-descent restart for diversity when available.
            alloc = (
                self._scale_to_boundary(base, workload_rps)
                if restart != 1
                else base
            )
            alloc, evals = self._descend(alloc, workload_rps, rng)
            evaluations += evals
            if self.deep:
                alloc, evals = self._redistribute(alloc, workload_rps, rng)
                evaluations += evals
                # Redistribution may open new descent directions.
                alloc, evals = self._descend(alloc, workload_rps, rng)
                evaluations += evals
            latency = self.engine.noiseless_latency(alloc, workload_rps)
            candidate = OptimumResult(
                allocation=alloc,
                latency=latency,
                workload=workload_rps,
                evaluations=evaluations,
            )
            if best is None or candidate.total_cpu < best.total_cpu:
                best = candidate
        assert best is not None
        return best

    def _scale_to_boundary(self, start: Allocation, workload: float) -> Allocation:
        """Largest uniform shrink of ``start`` that still satisfies the SLO."""
        slo = self.engine.app.slo
        lo, hi = 0.05, 1.0
        for _ in range(30):
            mid = 0.5 * (lo + hi)
            trial = start.scale(mid).clamp(lower=self.min_cpu)
            if self.engine.noiseless_latency(trial, workload) <= slo:
                hi = mid
            else:
                lo = mid
        return start.scale(hi).clamp(lower=self.min_cpu)

    def _redistribute(
        self, alloc: Allocation, workload: float, rng: np.random.Generator
    ) -> tuple[Allocation, int]:
        """Net-negative pair moves: grow one service a step, shrink another two."""
        slo = self.engine.app.slo
        names = list(self.engine.app.service_names)
        evals = 0
        improved = True
        while improved:
            improved = False
            rng.shuffle(names)
            for grow in names:
                for shrink in names:
                    if grow == shrink:
                        continue
                    reduced = alloc[shrink] - 2.0 * self.step
                    if reduced < self.min_cpu - 1e-12:
                        continue
                    trial = alloc.with_value(grow, alloc[grow] + self.step)
                    trial = trial.with_value(shrink, reduced)
                    evals += 1
                    if self.engine.noiseless_latency(trial, workload) <= slo:
                        alloc = trial
                        improved = True
        return alloc, evals

    def _descend(
        self, start: Allocation, workload: float, rng: np.random.Generator
    ) -> tuple[Allocation, int]:
        app = self.engine.app
        slo = app.slo
        alloc = start
        evals = 0
        names = list(app.service_names)
        improved = True
        while improved:
            improved = False
            rng.shuffle(names)
            for name in names:
                # Shrink this service as far as it goes before violating.
                while alloc[name] - self.step >= self.min_cpu - 1e-12:
                    trial = alloc.with_value(name, alloc[name] - self.step)
                    evals += 1
                    if self.engine.noiseless_latency(trial, workload) > slo:
                        break
                    alloc = trial
                    improved = True
        return alloc, evals

    def is_local_optimum(self, allocation: Allocation, workload: float) -> bool:
        """The paper's optimality check: any single -0.1 step violates."""
        app = self.engine.app
        if self.engine.noiseless_latency(allocation, workload) > app.slo:
            return False
        for name in app.service_names:
            reduced = allocation[name] - self.step
            if reduced < self.min_cpu - 1e-12:
                continue
            trial = allocation.with_value(name, reduced)
            if self.engine.noiseless_latency(trial, workload) <= app.slo:
                return False
        return True
