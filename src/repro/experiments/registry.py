"""String-keyed factory registries for the declarative experiment layer.

Every pluggable piece of an experiment — the performance-model backend,
the autoscaler under test, the workload trace, the mid-run hooks — is
resolved from a registry by a short string key, so an
:class:`~repro.experiments.spec.ExperimentSpec` is fully described by
plain JSON data.  Extensions register new factories with
:meth:`Registry.register`; unknown keys fail with the list of known ones
so a typo in a spec file is a one-line diagnosis.

Factory call conventions (``params`` is the spec's params dict):

``ENGINES``
    ``factory(app, seed=..., **params) -> Environment``
``AUTOSCALERS``
    ``factory(app, start, slo, seed=..., **params) -> Autoscaler``
``WORKLOADS``
    ``factory(**params) -> WorkloadTrace``
``HOOKS``
    ``factory(**params) -> Callable[[int, ControlLoop], None]``
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = ["Registry", "ENGINES", "AUTOSCALERS", "WORKLOADS", "HOOKS"]


class Registry:
    """A named mapping from string keys to factory callables."""

    def __init__(self, label: str) -> None:
        self.label = label
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(
        self, name: str, factory: Callable[..., Any] | None = None
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator."""
        if factory is None:
            return lambda fn: self.register(name, fn)
        if not name:
            raise ValueError(f"{self.label} key must be a non-empty string")
        if name in self._factories:
            raise ValueError(f"{self.label} {name!r} is already registered")
        self._factories[name] = factory
        return factory

    def get(self, name: str) -> Callable[..., Any]:
        """The factory for ``name``; KeyError names the alternatives."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise KeyError(
                f"unknown {self.label} {name!r} (known: {known})"
            ) from None

    def build(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


ENGINES = Registry("engine backend")
AUTOSCALERS = Registry("autoscaler")
WORKLOADS = Registry("workload trace")
HOOKS = Registry("hook")


# -- engine backends -----------------------------------------------------------
@ENGINES.register("analytical")
def _analytical_engine(app, *, seed: int = 0, **params):
    from repro.sim import AnalyticalEngine, NoiseModel

    noise = params.pop("noise", None)
    if noise is not None:
        # Declarative noise override, e.g. {"sigma": 0, "anomaly_prob": 0}
        # for the noise-free scans of Fig. 10.
        noise = NoiseModel(**noise)
    return AnalyticalEngine(app, seed=seed, noise=noise, **params)


@ENGINES.register("des")
def _des_engine(app, *, seed: int = 0, **params):
    from repro.sim.des.engine import DESEngine

    return DESEngine(app, seed=seed, **params)


# -- autoscalers / baselines ---------------------------------------------------
@AUTOSCALERS.register("pema")
def _pema(app, start, slo, *, seed: int = 0, **params):
    from repro.core import PEMAConfig, PEMAController

    config = PEMAConfig(**params) if params else None
    return PEMAController(app.service_names, slo, start, config, seed=seed)


@AUTOSCALERS.register("rule")
def _rule(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    from repro.baselines import RuleBasedAutoscaler

    return RuleBasedAutoscaler(start, **params)


@AUTOSCALERS.register("static")
def _static(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    from repro.baselines import StaticAllocator

    bottleneck_rps = params.pop("bottleneck_rps", None)
    scale = params.pop("scale", 1.0)
    if params:
        raise TypeError(f"unknown static autoscaler params: {sorted(params)}")
    if bottleneck_rps is not None:
        # Pin the engine-model bottleneck allocation at a declared
        # workload (scaled), e.g. the fixed-allocation scans of Fig. 10 —
        # instead of the headroom-scaled generous start.
        from repro.sim import AnalyticalEngine

        start = AnalyticalEngine(app).bottleneck_allocation(
            float(bottleneck_rps)
        )
        if scale != 1.0:
            start = start.scale(scale)
    elif scale != 1.0:
        raise TypeError("static 'scale' needs 'bottleneck_rps'")
    return StaticAllocator(start)


@AUTOSCALERS.register("optimum")
def _optimum(app, start, slo, *, seed: int = 0, **params):  # noqa: ARG001
    from repro.baselines import OptimumAllocator

    return OptimumAllocator(app, start, **params)


@AUTOSCALERS.register("workload_aware_pema")
def _workload_aware_pema(app, start, slo, *, seed: int = 0, **params):
    from repro.core import PEMAConfig, WorkloadAwarePEMA

    start_rps = params.pop("start_rps", None)
    if start_rps is not None:
        # The dynamic-range figures start from the generous allocation of
        # a declared band-high workload, not of the trace's first rate.
        start = app.generous_allocation(float(start_rps))
    config = params.pop("config", None)
    if config is not None:
        config = PEMAConfig(**config)
    return WorkloadAwarePEMA(
        app.service_names, slo, start, config=config, seed=seed, **params
    )


# -- workload traces -----------------------------------------------------------
@WORKLOADS.register("constant")
def _constant(**params):
    from repro.workload import ConstantWorkload

    return ConstantWorkload(**params)


@WORKLOADS.register("step")
def _step(**params):
    from repro.workload import StepWorkload

    steps = [tuple(s) for s in params.pop("steps")]
    return StepWorkload(steps, **params)


@WORKLOADS.register("ramp")
def _ramp(**params):
    from repro.workload import RampWorkload

    return RampWorkload(**params)


@WORKLOADS.register("sinusoid")
def _sinusoid(**params):
    from repro.workload import SinusoidalWorkload

    return SinusoidalWorkload(**params)


@WORKLOADS.register("burst")
def _burst(**params):
    from repro.workload import BurstWorkload

    bursts = [tuple(b) for b in params.pop("bursts")]
    return BurstWorkload(params.pop("base_rps"), bursts, **params)


@WORKLOADS.register("wikipedia")
def _wikipedia(**params):
    from repro.workload import WikipediaTrace

    return WikipediaTrace(**params)


@WORKLOADS.register("noisy")
def _noisy(**params):
    from repro.workload import NoisyTrace

    base = params.pop("base")
    trace = WORKLOADS.build(base["kind"], **base.get("params", {}))
    return NoisyTrace(trace, **params)


@WORKLOADS.register("phased")
def _phased(**params):
    from repro.workload import PhasedTrace

    phases = []
    for ph in params.pop("phases"):
        extra = set(ph) - {"base", "duration"}
        if extra:
            raise TypeError(f"unknown phase fields: {sorted(extra)}")
        phases.append(
            (
                WORKLOADS.build(
                    ph["base"]["kind"], **ph["base"].get("params", {})
                ),
                ph.get("duration"),
            )
        )
    if params:
        raise TypeError(f"unknown phased params: {sorted(params)}")
    return PhasedTrace(phases)


# -- mid-run hooks -------------------------------------------------------------
@HOOKS.register("set_slo")
def _set_slo_hook(*, at: int, slo: float):
    """Change the autoscaler's SLO at step ``at`` (the Fig. 20 experiment)."""

    def hook(step, loop):
        if step == at:
            loop.autoscaler.set_slo(slo)

    return hook


@HOOKS.register("set_cpu_speed")
def _set_cpu_speed_hook(*, at: int, speed: float):
    """Change the environment's CPU clock at step ``at`` (Fig. 19).

    ``speed`` is relative to nominal (e.g. 1.6 GHz / 1.8 GHz = 0.889).
    """

    def hook(step, loop):
        if step == at:
            loop.environment.set_cpu_speed(speed)

    return hook
