"""Bottleneck-avoiding selection: Eqn. (5) and Alg. 1 lines 8-10."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.selection import (
    eligible_services,
    inclusion_probabilities,
    select_targets,
)
from repro.core.thresholds import ThresholdTracker
from tests.conftest import make_metrics

SERVICES = ("front", "logic", "db", "cache")


def tracker(**updates) -> ThresholdTracker:
    t = ThresholdTracker(SERVICES)
    if updates:
        t.update(make_metrics(0.1, **updates))
    return t


class TestEligibility:
    def test_all_eligible_when_no_throttle(self):
        m = make_metrics(0.1)
        assert set(eligible_services(m, tracker())) == set(SERVICES)

    def test_throttled_service_filtered(self):
        m = make_metrics(0.1, throttles={"db": 5.0})
        eligible = eligible_services(m, tracker())
        assert "db" not in eligible
        assert "front" in eligible

    def test_threshold_learning_restores_eligibility(self):
        t = tracker(throttles={"db": 5.0})  # threshold learned at 5.0
        m = make_metrics(0.1, throttles={"db": 4.0})
        assert "db" in eligible_services(m, t)


class TestInclusionProbabilities:
    def test_empty_eligible(self):
        assert inclusion_probabilities(make_metrics(0.1), tracker(), ()) == {}

    def test_eqn5_extremes(self):
        # front at its threshold (u* = 1) -> p = 0; cache coolest -> p = 1.
        t = tracker(utils={"front": 0.50, "logic": 0.30, "db": 0.30,
                           "cache": 0.20})
        m = make_metrics(
            0.1, utils={"front": 0.50, "logic": 0.15, "db": 0.15, "cache": 0.05}
        )
        probs = inclusion_probabilities(m, t, SERVICES)
        assert probs["front"] == pytest.approx(0.0)
        assert probs["cache"] == pytest.approx(1.0)
        assert 0.0 < probs["logic"] < 1.0

    def test_all_at_threshold_ties_as_coolest(self):
        # Degenerate 0/0 in Eqn. (5): everyone at threshold means everyone
        # ties as the coolest service, so each keeps probability 1.
        t = tracker(utils={s: 0.30 for s in SERVICES})
        m = make_metrics(0.1, utils={s: 0.30 for s in SERVICES})
        probs = inclusion_probabilities(m, t, SERVICES)
        assert all(p == pytest.approx(1.0) for p in probs.values())

    def test_uniform_utilization_gives_probability_one(self):
        # Everyone equally cool: all are the minimum -> all p = 1.
        m = make_metrics(0.1, utils={s: 0.05 for s in SERVICES})
        probs = inclusion_probabilities(m, tracker(), SERVICES)
        assert all(p == pytest.approx(1.0) for p in probs.values())

    @given(
        utils=st.lists(
            st.floats(min_value=0.0, max_value=0.15), min_size=4, max_size=4
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_probabilities_bounded(self, utils):
        m = make_metrics(0.1, utils=dict(zip(SERVICES, utils)))
        probs = inclusion_probabilities(m, ThresholdTracker(SERVICES), SERVICES)
        assert all(0.0 <= p <= 1.0 for p in probs.values())
        # The coolest service always has probability exactly 1.
        assert max(probs.values()) == pytest.approx(1.0)


class TestSelectTargets:
    def test_zero_targets(self, rng):
        assert select_targets({"a": 1.0}, 0, rng) == ()

    def test_cuts_to_n(self, rng):
        probs = {s: 1.0 for s in SERVICES}
        targets = select_targets(probs, 2, rng)
        assert len(targets) == 2
        assert set(targets) <= set(SERVICES)

    def test_takes_all_when_fewer_included(self, rng):
        probs = {"front": 1.0, "logic": 0.0, "db": 0.0, "cache": 0.0}
        targets = select_targets(probs, 3, rng)
        assert targets == ("front",)

    def test_zero_probabilities_select_nothing(self, rng):
        probs = {s: 0.0 for s in SERVICES}
        assert select_targets(probs, 4, rng) == ()

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            select_targets({"a": 1.0}, -1, rng)

    def test_statistical_bias_toward_cool_services(self):
        rng = np.random.default_rng(0)
        probs = {"hot": 0.1, "cool": 0.9}
        picks = {"hot": 0, "cool": 0}
        for _ in range(2000):
            for name in select_targets(probs, 2, rng):
                picks[name] += 1
        assert picks["cool"] > picks["hot"] * 3
