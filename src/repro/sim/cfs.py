"""Analytical model of Linux CFS bandwidth-control throttling.

Kubernetes CPU limits are enforced by CFS bandwidth control: each container
gets a quota of ``x_i * period`` CPU-seconds per period (period = 100 ms by
default).  When the container's runnable threads exhaust the quota before
the period ends, *all* of them are frozen until the next period — that
frozen time is exported by cAdvisor as ``cpu_cfs_throttled_seconds_total``,
one of only two per-service signals PEMA consumes.

The discrete-event simulator (``repro.sim.des``) enforces quotas explicitly.
This module provides the matching closed forms for the analytical engine:

* a period throttles iff instantaneous concurrency ``N > x`` (demand above
  allocation exhausts the quota before the period ends);
* within a throttled period the container runs for ``x/N`` of the period and
  is frozen for the remaining ``1 - x/N``.

Expected throttled seconds per monitoring interval therefore combine the
exceed probability with the conditional severity ``E[1 - x/N | N > x]``,
which we approximate with the tail-expectation ratio (exact in the fluid
limit)::

    throttled_frac ≈ E[(N - x)+] / E[N | N > x] ≈ E[(N - x)+] / (E[(N-x)+] + x·P(N>x))
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CFSModel", "DEFAULT_PERIOD"]

DEFAULT_PERIOD = 0.1
"""Default CFS bandwidth period in seconds (Linux default 100 ms)."""

_EPS = 1e-12


@dataclass(frozen=True)
class CFSModel:
    """Closed-form CFS throttling signals.

    ``period`` only matters for the DES; the analytical forms work on
    per-second fractions.  ``zero_floor`` clips negligible throttle readings
    to exactly 0.0, matching Prometheus counters that simply do not advance
    when no throttling happens (and matching the paper's assumption that an
    amply-provisioned service shows *zero* throttling).
    """

    period: float = DEFAULT_PERIOD
    zero_floor: float = 1e-3

    def throttled_fraction(
        self, exceed_prob: np.ndarray, excess: np.ndarray, alloc: np.ndarray
    ) -> np.ndarray:
        """Fraction of wall-clock time the container spends frozen.

        Parameters
        ----------
        exceed_prob:
            ``P(N > x)`` per service (from :class:`ConcurrencyModel`).
        excess:
            ``E[(N - x)+]`` per service.
        alloc:
            CPU allocation per service.
        """
        exceed_prob = np.asarray(exceed_prob, dtype=np.float64)
        excess = np.asarray(excess, dtype=np.float64)
        alloc = np.asarray(alloc, dtype=np.float64)
        denom = excess + np.maximum(alloc, _EPS) * exceed_prob
        frac = np.where(denom > _EPS, excess / np.maximum(denom, _EPS), 0.0)
        # The container can at most be frozen for the whole exceed time.
        return np.clip(frac, 0.0, 1.0) * np.clip(exceed_prob, 0.0, 1.0)

    def throttle_seconds(
        self,
        exceed_prob: np.ndarray,
        excess: np.ndarray,
        alloc: np.ndarray,
        interval: float,
    ) -> np.ndarray:
        """Throttled seconds accumulated over a monitoring interval."""
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        frac = self.throttled_fraction(exceed_prob, excess, alloc)
        seconds = frac * interval
        seconds[seconds < self.zero_floor] = 0.0
        return seconds
