"""Fig. 17 — sensitivity to β (α = 0.5).

Paper: large β (big per-step reductions) overshoots — many violations and
sub-optimal settled resource; small β is gentle and safe.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.bench import format_table, optimum_total, pema_run
from repro.core import PEMAConfig

BETAS = (0.1, 0.3, 0.5, 0.7, 0.9)
SCENARIOS = {"trainticket": 225.0, "sockshop": 700.0}
ITERS = 50
RUNS = 3


def run_fig17():
    rows = []
    curves: dict[str, dict[str, list[float]]] = {}
    for app_name, wl in SCENARIOS.items():
        opt = optimum_total(app_name, wl)
        res_norm, viols = [], []
        for beta in BETAS:
            config = PEMAConfig(alpha=0.5, beta=beta)
            totals, violations = [], []
            for r in range(RUNS):
                run = pema_run(
                    app_name, wl, ITERS, config=config, seed=800 + r
                )
                totals.append(run.result.settled_total())
                violations.append(run.result.violation_rate() * 100)
            res_norm.append(float(np.mean(totals)) / opt)
            viols.append(float(np.mean(violations)))
            rows.append(
                [app_name, beta, round(res_norm[-1], 2), round(viols[-1], 1)]
            )
        curves[app_name] = {"resource": res_norm, "violations": viols}
    return rows, curves


def test_fig17_beta_sensitivity(benchmark):
    rows, curves = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    emit(
        "fig17_beta_sensitivity",
        format_table(
            ["app", "beta", "resource/optimum", "slo_violations_%"],
            rows,
            title="Fig. 17 — β sweep at α=0.5 (paper: aggressive β causes "
            "violations and sub-optimal allocations)",
        ),
    )
    for app_name, c in curves.items():
        vio = c["violations"]
        # Violations grow with β (compare the gentle and aggressive ends).
        assert np.mean(vio[3:]) >= np.mean(vio[:2]) - 1.0, app_name
