#!/usr/bin/env python
"""Compare PEMA, OPTM and RULE across all three prototype applications.

A compact version of the paper's Fig. 15 evaluation: for each application
at its reference workload, report the settled total CPU of each strategy
and PEMA's savings vs. the rule-based commercial autoscaler.

Run:  python examples/compare_autoscalers.py
"""

from repro import AnalyticalEngine, ControlLoop, PEMAController, build_app
from repro.baselines import OptimumSearch, RuleBasedAutoscaler
from repro.workload import ConstantWorkload

SCENARIOS = {
    "sockshop": 700.0,
    "trainticket": 225.0,
    "hotelreservation": 600.0,
}


def main() -> None:
    print(f"{'app':18s} {'rps':>5s} {'OPTM':>7s} {'PEMA':>7s} {'RULE':>7s} "
          f"{'PEMA/OPTM':>10s} {'savings':>8s}")
    for app_name, workload in SCENARIOS.items():
        app = build_app(app_name)
        start = app.generous_allocation(workload)

        optimum = OptimumSearch(AnalyticalEngine(app), restarts=2).find(workload)

        pema = PEMAController(app.service_names, app.slo, start, seed=1)
        pema_total = (
            ControlLoop(
                AnalyticalEngine(app, seed=2), pema, ConstantWorkload(workload)
            )
            .run(60)
            .settled_total()
        )

        rule = RuleBasedAutoscaler(start)
        rule_total = (
            ControlLoop(
                AnalyticalEngine(app, seed=3), rule, ConstantWorkload(workload),
                slo=app.slo,
            )
            .run(25)
            .settled_total()
        )

        savings = (1.0 - pema_total / rule_total) * 100.0
        print(f"{app_name:18s} {workload:5.0f} {optimum.total_cpu:7.2f} "
              f"{pema_total:7.2f} {rule_total:7.2f} "
              f"{pema_total / optimum.total_cpu:10.2f} {savings:7.0f}%")

    print("\n(paper Fig. 15: PEMA sits close to the optimum and saves up to "
          "33% vs the rule-based autoscaler)")


if __name__ == "__main__":
    main()
