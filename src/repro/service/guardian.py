"""Per-app Guardian: one autoscaler fed by a bounded metrics queue.

A :class:`Guardian` owns everything one application needs inside the
control plane: the materialized experiment unit (app, engine,
autoscaler, trace — built by the same
:func:`repro.experiments.build_unit` the offline runner uses), a bounded
:class:`asyncio.Queue` of incoming :class:`~repro.service.types.MetricSample`
ticks (the backpressure boundary — a driver outrunning the control loop
blocks instead of growing memory), and the decision history so far.

The tick path replicates :meth:`repro.core.loop.ControlLoop.run` step
for step — hook dispatch, observation, SLO read, record, decide — so a
guardian driven with the same rate floats as an offline run produces a
byte-identical history.  That is the service's core determinism
contract, enforced by ``tests/test_service.py`` and the CI service
gate.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.core.loop import LoopRecord, LoopResult
from repro.experiments.runner import (
    build_unit,
    capture_manager_state,
    hooks_on_step,
)
from repro.experiments.spec import ExperimentSpec
from repro.faults import reorder_window_for, stream_fault_entries
from repro.metrics.export import loop_result_to_dict
from repro.obs.decision import capture_decision_info, decision_record
from repro.service.rescaler import Rescaler
from repro.service.telemetry import (
    GUARDIAN_QUEUE_PEAK,
    GUARDIAN_TICK_SECONDS,
    STREAM_DUPLICATES_DROPPED,
    STREAM_REORDERED,
)
from repro.service.types import Decision, MetricSample, ServiceError

__all__ = ["Guardian"]


class Guardian:
    """Wraps one app's autoscaler behind the streaming tick protocol."""

    def __init__(
        self,
        app_id: str,
        spec: ExperimentSpec,
        repeat: int = 0,
        *,
        rescaler: Rescaler | None = None,
        queue_size: int = 64,
    ) -> None:
        if not app_id:
            raise ValueError("app_id must be a non-empty string")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.app_id = app_id
        self.spec = spec
        self.repeat = repeat
        self.unit = build_unit(spec, repeat)
        self.rescaler = rescaler or Rescaler()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.records: list[LoopRecord] = []
        self.decisions: list[Decision] = []
        self.trace_records: list[dict[str, Any]] = []
        """Deterministic per-step decision records, filled when the
        spec's ``capture`` requested the ``decision_trace`` channel."""
        self.error: str | None = None
        self.restarts = 0
        """How many times the orchestrator rebuilt this app's guardian."""
        self.duplicates_dropped = 0
        self.reordered = 0
        self._on_step = hooks_on_step(spec)
        self._allocation = self.unit.autoscaler.allocation
        self._capture_trace = "decision_trace" in spec.capture
        # Stream-fault tolerance: specs that declare delivery faults get
        # dedup and a bounded reorder buffer sized for the worst declared
        # delay; clean specs keep the strict legacy protocol (any step
        # mismatch poisons), so existing behavior is untouched.
        self._stream_faulted = bool(stream_fault_entries(spec))
        self._reorder_window = reorder_window_for(spec)
        self._buffered: dict[int, MetricSample] = {}
        self._replaying = False
        self._fail_at: dict[int, tuple[str, float]] = {}

    # -- the tick protocol -------------------------------------------------------
    @property
    def steps_done(self) -> int:
        """How many control intervals this guardian has completed."""
        return len(self.records)

    @property
    def complete(self) -> bool:
        """True once the guardian has run its spec's full horizon.

        Only a complete run equals the offline experiment, so only a
        complete guardian's history may be flushed as a sweep-store
        unit entry.
        """
        return self.steps_done >= self.spec.n_steps

    def tick(self, sample: MetricSample) -> Decision:
        """Execute one control interval from a streamed metric sample.

        Mirrors one iteration of the offline loop exactly: the current
        allocation serves the interval, the environment is observed
        under the sample's rate, the record lands, and the autoscaler
        decides the next allocation.
        """
        step = self.steps_done
        if sample.step is not None and sample.step != step:
            raise ServiceError(
                f"app {self.app_id!r}: got step {sample.step}, "
                f"expected {step} (out-of-order or duplicated tick)"
            )
        failure = self._fail_at.pop(step, None)
        if failure is not None:
            fail_kind, seconds = failure
            if fail_kind == "hang":
                time.sleep(seconds)
            else:
                raise RuntimeError(
                    f"injected {fail_kind} at step {step} of "
                    f"app {self.app_id!r}"
                )
        loop = self.unit.loop
        if self._on_step is not None:
            self._on_step(step, loop)
        t = step * self.spec.interval
        rps = float(sample.rps)
        allocation = self._allocation
        if not self._replaying:
            # Replayed steps were already actuated (and counted) by the
            # guardian this one replaces; re-applying would double the
            # rescale accounting without changing any observation.
            self.rescaler.apply(self, allocation)
        metrics = self.rescaler.observe(self, allocation, rps)
        slo_now = loop.current_slo()
        record = LoopRecord(
            step=step,
            time=t,
            workload=rps,
            response=metrics.latency_p95,
            total_cpu=allocation.total(),
            violated=metrics.latency_p95 > slo_now,
            slo=slo_now,
            allocation=allocation,
        )
        self.records.append(record)
        self._allocation = self.unit.autoscaler.decide(metrics)
        if self._capture_trace:
            self.trace_records.append(
                decision_record(
                    step=step,
                    workload=rps,
                    response=metrics.latency_p95,
                    slo=slo_now,
                    violated=record.violated,
                    total_cpu=record.total_cpu,
                    next_total_cpu=self._allocation.total(),
                    decision=capture_decision_info(self.unit.autoscaler),
                )
            )
        decision = Decision(
            app=self.app_id,
            step=step,
            record=record,
            next_allocation=self._allocation,
        )
        self.decisions.append(decision)
        return decision

    def offer(self, sample: MetricSample) -> list[Decision]:
        """Accept a possibly duplicated/reordered sample; tick what's due.

        Clean specs keep the strict legacy protocol — the sample ticks
        directly and any step mismatch raises.  Specs declaring stream
        faults get graceful degradation instead: past-step samples are
        dropped as duplicates, future steps within the reorder window
        wait in a bounded buffer — the guardian *holds its last
        allocation* until the gap fills — and only a gap beyond the
        window poisons.  Returns the decisions taken, in step order,
        which is exactly the uninterrupted sequence: the reorder buffer
        restores the processed order, so the decision bytes match a
        fault-free delivery.
        """
        if not self._stream_faulted or sample.step is None:
            return [self.tick(sample)]
        step = sample.step
        expected = self.steps_done
        if step < expected:
            self.duplicates_dropped += 1
            STREAM_DUPLICATES_DROPPED.inc(app=self.app_id)
            return []
        if step > expected:
            if step - expected > self._reorder_window:
                raise ServiceError(
                    f"app {self.app_id!r}: got step {step}, "
                    f"expected {expected} (out-of-order or duplicated tick)"
                )
            if step in self._buffered:
                self.duplicates_dropped += 1
                STREAM_DUPLICATES_DROPPED.inc(app=self.app_id)
            else:
                self._buffered[step] = sample
                self.reordered += 1
                STREAM_REORDERED.inc(app=self.app_id)
            return []
        decisions = [self.tick(sample)]
        while self.steps_done in self._buffered:
            decisions.append(self.tick(self._buffered.pop(self.steps_done)))
        return decisions

    def inject_failure(
        self, step: int, kind: str = "crash", *, seconds: float = 0.0
    ) -> None:
        """Test seam: make the tick at ``step`` crash or hang.

        ``crash`` raises before the step runs; ``hang`` sleeps
        ``seconds`` of wall clock first, then proceeds normally — long
        enough to trip an orchestrator tick timeout.  Injected failures
        are one-shot and deliberately *not* carried over to a restarted
        guardian, so recovery replays run clean.
        """
        if kind not in ("crash", "hang"):
            raise ValueError(f"unknown failure kind: {kind!r}")
        self._fail_at[int(step)] = (kind, float(seconds))

    # -- introspection -----------------------------------------------------------
    def result_payload(self) -> dict[str, Any]:
        """The decision history in the offline unit-worker encoding.

        Byte-identical (under canonical JSON dumping) to what
        ``repro.experiments.runner._run_unit_worker`` returns for the
        same (spec, repeat) once the run is complete — including the
        ``manager_state`` channel key exactly when the spec requested
        it.
        """
        payload = loop_result_to_dict(LoopResult(records=list(self.records)))
        if "manager_state" in self.spec.capture:
            payload["manager_state"] = capture_manager_state(
                self.unit.autoscaler
            )
        if self._capture_trace:
            payload["decision_trace"] = list(self.trace_records)
        return payload

    def state(self) -> dict[str, Any]:
        """The ``/state`` endpoint's payload for this app."""
        allocation = self._allocation
        return {
            "app": self.app_id,
            "spec_name": self.spec.name,
            "step": self.steps_done,
            "complete": self.complete,
            "slo": self.unit.loop.current_slo(),
            "allocation": [
                [name, allocation[name]] for name in allocation.names
            ],
            "total_cpu": allocation.total(),
            "manager_state": capture_manager_state(self.unit.autoscaler),
        }

    def status(self) -> dict[str, Any]:
        """The ``/apps`` endpoint's row for this app."""
        tick_p50 = GUARDIAN_TICK_SECONDS.quantile(0.5, app=self.app_id)
        tick_p95 = GUARDIAN_TICK_SECONDS.quantile(0.95, app=self.app_id)
        queue_peak = GUARDIAN_QUEUE_PEAK.value(app=self.app_id)
        return {
            "app": self.app_id,
            "spec_name": self.spec.name,
            "app_kind": self.spec.app,
            "autoscaler": self.spec.autoscaler.kind,
            "workload": self.spec.workload.kind,
            "repeat": self.repeat,
            "seed": self.unit.seed,
            "interval": self.spec.interval,
            "n_steps": self.spec.n_steps,
            "steps_done": self.steps_done,
            "complete": self.complete,
            "status": (
                "poisoned"
                if self.error is not None
                else ("complete" if self.complete else "ok")
            ),
            "restarts": self.restarts,
            "duplicates_dropped": self.duplicates_dropped,
            "reordered": self.reordered,
            "buffered": len(self._buffered),
            "queue_depth": self.queue.qsize(),
            "queue_size": self.queue.maxsize,
            "queue_peak": int(queue_peak) if queue_peak is not None else 0,
            "tick_p50_ms": None if tick_p50 is None else tick_p50 * 1000.0,
            "tick_p95_ms": None if tick_p95 is None else tick_p95 * 1000.0,
            "violations": sum(r.violated for r in self.records),
            "error": self.error,
            "rescale": self.rescaler.stats(self.app_id).to_dict(),
        }
