"""Pre-drawn variate streams: the DES determinism contract.

The simulator draws randomness from *per-purpose* streams, each backed by
an independent child of one ``numpy.random.SeedSequence``:

======================  ========================================  ==========
stream                  draws                                     base law
======================  ========================================  ==========
``arrivals``            inter-arrival gaps + MMPP chain dwells    exponential
``plan``                request-class choice                      uniform
``entry``               fractional stage-entry visit counts       uniform
``demand``              per-visit CPU demand                      Gamma(k)
``wait``                non-CPU wait jitter                       normal
``background[s]``       service *s*'s baseline bursts (work+gap)  exponential
======================  ========================================  ==========

The contract that makes the vectorized simulator bit-identical to the
scalar reference is: **within each stream, both execution modes consume
the same base variates in the same order**.  The reference draws one
scalar per call site; the vectorized simulator pre-draws the same stream
in fixed-size blocks (``Generator.standard_gamma(k, size=n)[i]`` is
bit-identical to the *i*-th of ``n`` sequential scalar draws — the same
underlying bit stream feeds the same transformation) and serves them by
index.  Because every purpose owns a private stream, reordering *across*
purposes (e.g. pre-computing the whole arrival schedule before the first
event fires) cannot perturb any other stream.

Scale/shift transformations (``scale * e``, ``sigma * z``) are applied at
the use site as plain float64 arithmetic in both modes, so they cannot
diverge either.  Anything transcendental goes through the same scalar
call (``float(numpy.exp(...))``) in both modes — ``math.exp`` and
``numpy.exp`` differ in the last ulp, so mixing them would break the
contract.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STREAMS",
    "spawn_streams",
    "ScalarExp",
    "ScalarUniform",
    "ScalarNormal",
    "ScalarGamma",
    "BlockExp",
    "BlockUniform",
    "BlockNormal",
    "BlockGamma",
]

#: Purpose -> index of the spawned child seed.  Background streams follow
#: at ``N_CORE_STREAMS + service_index`` in ``AppSpec.service_names``
#: order.
STREAMS = {"arrivals": 0, "plan": 1, "entry": 2, "demand": 3, "wait": 4}
N_CORE_STREAMS = len(STREAMS)

#: Variates pre-drawn per refill of a block stream.  Any value yields the
#: same sequence (block boundaries don't change the bit stream); 4096
#: amortizes the per-call Generator overhead without hoarding memory.
BLOCK = 4096


def spawn_streams(
    seed: int, n_services: int
) -> tuple[list[np.random.Generator], list[np.random.Generator]]:
    """The per-purpose generators for one simulation run.

    Returns ``(core, background)``: the five core-purpose generators in
    ``STREAMS`` order plus one background generator per service.  Both
    simulator modes call this with the same seed, so stream *k* starts
    from the same PCG64 state in both.
    """
    children = np.random.SeedSequence(seed).spawn(N_CORE_STREAMS + n_services)
    gens = [np.random.default_rng(child) for child in children]
    return gens[:N_CORE_STREAMS], gens[N_CORE_STREAMS:]


# -- scalar streams (the reference: one Generator call per variate) ------------
class ScalarExp:
    """Standard-exponential variates, one scalar draw per call."""

    __slots__ = ("_gen",)

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen

    def next(self) -> float:
        return float(self._gen.standard_exponential())


class ScalarUniform:
    """Uniform [0, 1) variates, one scalar draw per call."""

    __slots__ = ("_gen",)

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen

    def next(self) -> float:
        return float(self._gen.random())


class ScalarNormal:
    """Standard-normal variates, one scalar draw per call."""

    __slots__ = ("_gen",)

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen

    def next(self) -> float:
        return float(self._gen.standard_normal())


class ScalarGamma:
    """Gamma(shape, 1) variates, one scalar draw per call."""

    __slots__ = ("_gen", "_shape")

    def __init__(self, gen: np.random.Generator, shape: float) -> None:
        if shape <= 0:
            raise ValueError("shape must be positive")
        self._gen = gen
        self._shape = shape

    def next(self) -> float:
        return float(self._gen.standard_gamma(self._shape))


# -- block streams (vectorized: pre-draw BLOCK variates, serve in order) -------
class _BlockStream:
    """Serve pre-drawn variates in draw order, refilling in BLOCK chunks.

    The buffer is stored reversed so ``next`` is a single C-level
    ``list.pop()`` — reversing only reorders the already-materialized
    float64 values, so the served sequence stays bit-identical to the
    block draw (and therefore to sequential scalar draws).
    """

    __slots__ = ("_gen", "_buf")

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen
        self._buf: list[float] = []

    def _draw(self) -> np.ndarray:
        raise NotImplementedError

    def next(self) -> float:
        buf = self._buf
        if not buf:
            buf = self._buf = self._draw().tolist()
            buf.reverse()
        return buf.pop()


class BlockExp(_BlockStream):
    """Block-buffered standard-exponential stream."""

    def _draw(self) -> np.ndarray:
        return self._gen.standard_exponential(BLOCK)


class BlockUniform(_BlockStream):
    """Block-buffered uniform [0, 1) stream."""

    def _draw(self) -> np.ndarray:
        return self._gen.random(BLOCK)


class BlockNormal(_BlockStream):
    """Block-buffered standard-normal stream."""

    def _draw(self) -> np.ndarray:
        return self._gen.standard_normal(BLOCK)


class BlockGamma(_BlockStream):
    """Block-buffered Gamma(shape, 1) stream."""

    __slots__ = ("_shape",)

    def __init__(self, gen: np.random.Generator, shape: float) -> None:
        if shape <= 0:
            raise ValueError("shape must be positive")
        super().__init__(gen)
        self._shape = shape

    def _draw(self) -> np.ndarray:
        return self._gen.standard_gamma(self._shape, BLOCK)
