"""Discrete-event microservice simulator with explicit CFS throttling."""

from repro.sim.des.arrivals import MMPPArrivals, PoissonArrivals
from repro.sim.des.engine import DESEngine
from repro.sim.des.events import Event, EventKind, EventQueue
from repro.sim.des.metrics import MeasurementWindow
from repro.sim.des.request import CompiledPlan, RequestState, compile_plans
from repro.sim.des.server import CpuJob, ServiceServer
from repro.sim.des.simulator import MicroserviceSimulator, SimConfig
from repro.sim.des.tracing import Span, TraceLog

__all__ = [
    "DESEngine",
    "MicroserviceSimulator",
    "SimConfig",
    "ServiceServer",
    "CpuJob",
    "EventQueue",
    "Event",
    "EventKind",
    "PoissonArrivals",
    "MMPPArrivals",
    "MeasurementWindow",
    "RequestState",
    "CompiledPlan",
    "compile_plans",
    "Span",
    "TraceLog",
]
