"""Extension — §6's proposed fast violation mitigation, quantified.

The paper: "PEMA can be improved by implementing higher resolution
performance monitoring (e.g., within 10 seconds), catching the SLO
violations early, and rolling back configuration to mitigate it."

We run an intentionally aggressive PEMA (α=0.15, β=0.7 — the regime where
violations happen) with and without the 10-second fast monitor and compare
*violation exposure*: the fraction of wall-clock time the application
spends above the SLO.  Also: does the severity-aware rollback (second §6
item) reduce repeat violations?
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.apps import build_app
from repro.bench import format_table
from repro.core import (
    ControlLoop,
    FastReactionLoop,
    PEMAConfig,
    PEMAController,
)
from repro.sim import AnalyticalEngine
from repro.workload import ConstantWorkload

WORKLOAD = 700.0
ITERS = 50
RUNS = 4
AGGRESSIVE = dict(alpha=0.15, beta=0.7, explore_a=0.0, explore_b=0.0)


def _make(app, seed, **config_kw):
    config = PEMAConfig(**{**AGGRESSIVE, **config_kw})
    engine = AnalyticalEngine(app, seed=seed)
    controller = PEMAController(
        app.service_names, app.slo, app.generous_allocation(WORKLOAD),
        config, seed=seed + 1,
    )
    return engine, controller


def run_ext_fast_rollback():
    app = build_app("sockshop")
    out = {}
    # Plain loop: a violating interval is exposed for the whole interval.
    exposures, intervals = [], []
    for r in range(RUNS):
        engine, controller = _make(app, 100 + r)
        result = ControlLoop(
            engine, controller, ConstantWorkload(WORKLOAD)
        ).run(ITERS)
        exposures.append(result.violation_rate())
        intervals.append(result.violation_count())
    out["plain"] = (float(np.mean(exposures)), float(np.mean(intervals)))

    # Fast monitor: 10-second sub-intervals, mid-interval rollback.
    exposures, intervals = [], []
    for r in range(RUNS):
        engine, controller = _make(app, 100 + r)
        loop = FastReactionLoop(
            engine, controller, ConstantWorkload(WORKLOAD), monitor_splits=12
        )
        result = loop.run(ITERS)
        exposures.append(result.violation_exposure())
        intervals.append(result.violation_count())
    out["fast-10s"] = (float(np.mean(exposures)), float(np.mean(intervals)))

    # Fast monitor + severity-aware rollback.
    exposures, intervals = [], []
    for r in range(RUNS):
        engine, controller = _make(
            app, 100 + r, rollback_severity_gain=2.0
        )
        loop = FastReactionLoop(
            engine, controller, ConstantWorkload(WORKLOAD), monitor_splits=12
        )
        result = loop.run(ITERS)
        exposures.append(result.violation_exposure())
        intervals.append(result.violation_count())
    out["fast+severity"] = (
        float(np.mean(exposures)),
        float(np.mean(intervals)),
    )
    return out


def test_ext_fast_rollback(benchmark):
    out = benchmark.pedantic(run_ext_fast_rollback, rounds=1, iterations=1)
    rows = [
        [label, f"{exposure * 100:.1f}%", round(intervals, 1)]
        for label, (exposure, intervals) in out.items()
    ]
    emit(
        "ext_fast_rollback",
        format_table(
            ["variant", "violation_exposure", "violating_intervals"],
            rows,
            title="Extension (§6) — fast mitigation on an aggressive PEMA "
            f"(α=0.15, β=0.7), SockShop @ {WORKLOAD:.0f} rps, "
            f"{RUNS} seeds x {ITERS} intervals",
        ),
    )
    plain_exposure = out["plain"][0]
    fast_exposure = out["fast-10s"][0]
    # Catching violations within ~10s cuts wall-clock exposure sharply.
    assert fast_exposure < plain_exposure * 0.6
    assert out["fast+severity"][0] <= plain_exposure
