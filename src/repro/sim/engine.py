"""Analytical performance engine.

Evaluates an allocation + workload into interval metrics using closed forms
(Gamma concurrency → throttling and overload → visit latency → end-to-end
aggregation).  Fast enough for tens of thousands of controller iterations,
which is what the parameter sweeps and 36-hour replays need.

The discrete-event engine (:mod:`repro.sim.des`) produces the same metric
signatures from first principles and is used for cross-validation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.cfs import CFSModel
from repro.sim.concurrency import ConcurrencyModel
from repro.sim.latency import (
    LatencyParams,
    NoiselessLatencyKernel,
    end_to_end_latency,
    visit_latency,
)
from repro.sim.noise import NoiseModel
from repro.sim.types import Allocation, IntervalMetrics, ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.apps.spec import AppSpec

__all__ = ["AnalyticalEngine"]


class AnalyticalEngine:
    """Closed-form implementation of the :class:`Environment` protocol.

    Parameters
    ----------
    app:
        The application specification.
    latency_params, cfs, noise:
        Model tunables; defaults reproduce the paper's phenomenology.
    p_crit:
        Concurrency quantile that defines each service's bottleneck
        allocation (DESIGN.md §4).
    seed:
        Seed for the measurement-noise stream.  Two engines with the same
        seed observe identical noise — sweeps reuse seeds for paired
        comparisons.
    """

    def __init__(
        self,
        app: AppSpec,
        *,
        latency_params: LatencyParams | None = None,
        cfs: CFSModel | None = None,
        noise: NoiseModel | None = None,
        p_crit: float = 0.97,
        seed: int = 0,
    ) -> None:
        if not 0 < p_crit < 1:
            raise ValueError(f"p_crit must be in (0, 1): {p_crit}")
        self._app = app
        self.latency_params = latency_params or LatencyParams()
        self.cfs = cfs or CFSModel()
        self.noise = noise if noise is not None else NoiseModel()
        self.p_crit = p_crit
        self._rng = np.random.default_rng(seed)
        self._cpu_speed = 1.0
        self._visits = app.visit_array()
        self._demands = app.demand_array()
        self._burst = app.burstiness_array()
        self._floors = app.floor_array()
        self._baselines = app.baseline_array()
        self._cache: dict[tuple[float, float], ConcurrencyModel] = {}
        self._kernel = NoiselessLatencyKernel(app, params=self.latency_params)
        # Fault-injection channels (repro.faults).  All-ones / 1.0 means
        # "no disturbance"; ``_faulted`` keeps clean runs on the exact
        # pre-fault code path so their bytes are provably unchanged.
        n_services = len(app.service_names)
        self._capacity_scale = np.ones(n_services)
        self._demand_scale = np.ones(n_services)
        self._service_level = 1.0
        self._faulted = False

    # -- Environment protocol --------------------------------------------------
    @property
    def app(self) -> AppSpec:
        return self._app

    def observe(
        self,
        allocation: Allocation,
        workload_rps: float,
        interval: float = 120.0,
    ) -> IntervalMetrics:
        """One monitoring interval's metrics, with measurement noise."""
        alloc = allocation.as_array(self._app.service_names)
        if self._faulted:
            # A crashed service *behaves* as a fraction of its nominal
            # capacity; the controller still accounts the CPU it asked for
            # (the recorded allocation is the controller's, not the
            # effective one).
            alloc = alloc * self._capacity_scale
        model = self._concurrency(workload_rps)
        exceed = model.exceed_probability(alloc)
        excess_arr = model.overload(alloc) * np.maximum(alloc, 1e-12)
        overload = model.overload(alloc)
        thr_seconds = self.cfs.throttle_seconds(exceed, excess_arr, alloc, interval)

        # p95 latency is driven by how often a request's CFS period freezes
        # (the exceed probability), not by the average frozen time.
        latency = self._latency_from(model, alloc, overload, exceed)
        latency *= self.noise.sample(self._rng)

        usage = np.minimum(model.mean, alloc)
        svc_noise = np.exp(self._rng.normal(0.0, 0.03, size=usage.shape))
        usage_noisy = usage * svc_noise
        util = np.clip(usage_noisy / np.maximum(alloc, 1e-12), 0.0, 1.0)
        p90 = model.usage_p90(alloc)

        services = {
            name: ServiceMetrics(
                utilization=float(util[i]),
                throttle_seconds=float(thr_seconds[i]),
                usage_cores=float(usage_noisy[i]),
                usage_p90_cores=float(p90[i]),
            )
            for i, name in enumerate(self._app.service_names)
        }
        return IntervalMetrics(
            latency_p95=float(latency),
            workload_rps=float(workload_rps),
            services=services,
            latency_mean=float(latency / 1.6),
        )

    # -- noise-free evaluation (search / tests) ---------------------------------
    @property
    def noiseless_kernel(self) -> NoiselessLatencyKernel:
        """The shared deterministic latency kernel (OPTM evaluates on it)."""
        return self._kernel

    def noiseless_latency(self, allocation: Allocation, workload_rps: float) -> float:
        """Deterministic p95 latency — what OPTM's trial-and-error measures."""
        alloc = allocation.as_array(self._app.service_names)
        return float(self.noiseless_latency_batch(alloc[None, :], workload_rps)[0])

    def noiseless_latency_batch(
        self, allocs: np.ndarray, workload_rps: float | np.ndarray
    ) -> np.ndarray:
        """Noise-free p95 of ``(B, S)`` allocation rows in one kernel call.

        ``workload_rps`` is a scalar shared by the batch or a per-row
        ``(B,)`` array.  Row ``i`` is bit-identical to
        ``noiseless_latency`` of that row — both run the shared
        :class:`~repro.sim.latency.NoiselessLatencyKernel`.
        """
        allocs = np.asarray(allocs, dtype=np.float64)
        workload = np.asarray(workload_rps, dtype=np.float64)
        if workload.ndim == 0:
            workload = np.full(allocs.shape[0], float(workload))
        return self._kernel.latency(allocs, workload, self._cpu_speed)

    def bottleneck_allocation(self, workload_rps: float) -> Allocation:
        """Per-service bottleneck resources at this workload (Fig. 8 knee)."""
        model = self._concurrency(workload_rps)
        return Allocation.from_array(
            self._app.service_names, np.maximum(model.bottleneck(self.p_crit), 0.05)
        )

    # -- operating conditions ----------------------------------------------------
    @property
    def cpu_speed(self) -> float:
        """Relative CPU clock speed (1.0 = nominal, e.g. 1.8 GHz)."""
        return self._cpu_speed

    def set_cpu_speed(self, speed: float) -> None:
        """Change the hardware speed (Fig. 19's 1.8→1.6/2.0 GHz experiment)."""
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed}")
        self._cpu_speed = float(speed)
        self._cache.clear()

    # -- fault-injection channels (repro.faults) ---------------------------------
    def _service_index(self, service: str) -> int:
        try:
            return self._app.service_names.index(service)
        except ValueError:
            raise ValueError(
                f"unknown service {service!r} for app {self._app.name!r}"
            ) from None

    def set_capacity_scale(self, scale: float, service: str | None = None) -> None:
        """Scale a service's *effective* capacity (``service_crash``).

        The allocation the controller chose is recorded unchanged; the
        engine behaves as if only ``scale`` of it were usable.  Capacity
        does not enter the concurrency model, so the model cache stays
        valid.
        """
        if scale < 0:
            raise ValueError(f"capacity scale must be >= 0: {scale}")
        if service is None:
            self._capacity_scale[:] = float(scale)
        else:
            self._capacity_scale[self._service_index(service)] = float(scale)
        self._faulted = True

    def set_demand_scale(self, scale: float, service: str | None = None) -> None:
        """Scale a service's calibrated CPU demand (``calibration_drift``).

        Demands enter the concurrency model, so the model cache is
        cleared — the same invalidation :meth:`set_cpu_speed` performs.
        """
        if scale <= 0:
            raise ValueError(f"demand scale must be positive: {scale}")
        if service is None:
            self._demand_scale[:] = float(scale)
        else:
            self._demand_scale[self._service_index(service)] = float(scale)
        self._faulted = True
        self._cache.clear()

    def set_service_level(self, level: float) -> None:
        """Set the app-wide service-level dimmer (brownout actuation).

        ``level`` multiplies every service's CPU demand — serving a
        degraded (cheaper) response.  Clears the model cache like
        :meth:`set_demand_scale`.
        """
        if not 0 < level <= 1.0:
            raise ValueError(f"service level must be in (0, 1]: {level}")
        self._service_level = float(level)
        self._faulted = True
        self._cache.clear()

    # -- internals ------------------------------------------------------------------
    def _concurrency(self, workload_rps: float) -> ConcurrencyModel:
        if workload_rps < 0:
            raise ValueError(f"workload must be >= 0: {workload_rps}")
        key = (round(float(workload_rps), 9), self._cpu_speed)
        model = self._cache.get(key)
        if model is None:
            if self._faulted:
                demands = self._demands * (
                    self._demand_scale * self._service_level
                )
            else:
                demands = self._demands
            mean = (
                workload_rps * self._visits * demands + self._baselines
            ) / self._cpu_speed
            model = ConcurrencyModel(mean=mean, burstiness=self._burst)
            if len(self._cache) > 4096:
                self._cache.clear()
            self._cache[key] = model
        return model

    def _latency_from(
        self,
        model: ConcurrencyModel,
        alloc: np.ndarray,
        overload: np.ndarray,
        exceed_frac: np.ndarray,
    ) -> float:
        floors = self._floors / self._cpu_speed
        per_visit = visit_latency(floors, overload, exceed_frac, self.latency_params)
        return end_to_end_latency(self._app, per_visit)
