"""Benchmark resource-allocation strategies: OPTM, RULE, static."""

from repro.baselines.optm import OptimumResult, OptimumSearch
from repro.baselines.optm_batch import (
    OptimumAllocator,
    OptimumBatch,
    OptimumRequest,
)
from repro.baselines.rule import RuleBasedAutoscaler, RuleBatch
from repro.baselines.static import StaticAllocator

__all__ = [
    "OptimumSearch",
    "OptimumResult",
    "OptimumAllocator",
    "OptimumBatch",
    "OptimumRequest",
    "RuleBasedAutoscaler",
    "RuleBatch",
    "StaticAllocator",
]
